"""The ``python -m repro`` CLI over the shared simulation service."""

import json

import pytest

import repro.experiments.runner as runner_module
from repro.cli import main


def test_list_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "table2", "figure7", "figure8", "figure9",
                 "trace-runtime", "cassandra-lite", "interrupts"):
        assert name in out


def test_list_experiments_json(capsys):
    """--list honors --format json: a machine-readable registry dump."""
    assert main(["--list", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_name = {row["name"]: row for row in payload}
    assert "figure7" in by_name
    assert by_name["figure7"]["title"].startswith("Figure 7")
    assert by_name["figure7"]["matrix"]["designs"] == [
        "unsafe-baseline", "cassandra", "cassandra+stl", "spt"
    ]
    assert by_name["table2"]["needs_artifacts"] is False
    # The interrupt study's flush override shows up as an extend block.
    assert by_name["interrupts"]["matrix"]["extend"][0]["flush_intervals"] == [2000]
    # Figure 8 pins its own (synthetic) workload axis.
    assert by_name["figure8"]["matrix"]["workloads"] != "pipeline-default"


def test_unknown_experiment_errors(capsys):
    assert main(["figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_experiment_suggests_close_match(capsys):
    """A typo exits 2 with a did-you-mean drawn from the registry."""
    assert main(["figur7"]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'figure7'?" in err
    assert main(["tabel1"]) == 2
    assert "did you mean 'table1'?" in capsys.readouterr().err


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_remote_backend_requires_connect(capsys):
    assert main(["table2", "--backend", "remote"]) == 2
    assert "--connect" in capsys.readouterr().err


def test_unknown_experiment_errors_even_with_all(capsys):
    """A typo must not vanish silently into the 'all' selection."""
    assert main(["all", "figure99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_backend_errors():
    with pytest.raises(SystemExit):
        main(["table2", "--backend", "teleport"])


def test_direct_module_invocation_still_works():
    """python -m repro.experiments.table2 re-registers its spec (idempotent)."""
    import os
    import subprocess
    import sys

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.experiments.table2"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert "BR1 -> R1" in completed.stdout


def test_unknown_workload_errors(capsys):
    assert main(["table1", "--workloads", "NoSuchKernel"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_table2_json_output(capsys):
    assert main(["table2", "--format", "json", "--no-cache"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["experiments"]["table2"]) == 8
    assert all("leaks_cassandra" in row for row in payload["experiments"]["table2"])
    assert payload["stats"]["points_simulated"] == 0


@pytest.fixture()
def trace_counter(monkeypatch):
    """Counts how many times trace generation actually runs."""
    calls = []
    original = runner_module.generate_trace_bundle

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(runner_module, "generate_trace_bundle", counting)
    return calls


def test_multi_experiment_run_prepares_each_workload_once(capsys, trace_counter):
    """Three artifact-consuming experiments share one preparation pass."""
    code = main([
        "table1", "trace-runtime", "figure9",
        "--workloads", "ChaCha20_ct",
        "--no-cache", "--jobs", "1", "--format", "json",
    ])
    assert code == 0
    assert len(trace_counter) == 1  # sequential execution + tracing ran once
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["experiments"]) == {"table1", "trace-runtime", "figure9"}
    assert payload["stats"]["prepared"] == 1
    # figure9 needed unsafe-baseline + cassandra on the single workload.
    assert payload["stats"]["points_simulated"] == 2


def test_overlapping_experiments_simulate_shared_points_once(capsys, trace_counter):
    """figure7 ⊇ figure9 ∪ cassandra-lite designs: the union dedups them.

    figure7 (4 designs), figure9 (2 of them), and cassandra-lite (the same
    2 plus cassandra-lite) overlap heavily; the prefetch union must
    simulate each distinct (workload × design) point exactly once — 5
    points, not 4 + 2 + 3.
    """
    code = main([
        "figure7", "figure9", "cassandra-lite",
        "--workloads", "ChaCha20_ct",
        "--no-cache", "--jobs", "1", "--format", "json",
    ])
    assert code == 0
    assert len(trace_counter) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["points_simulated"] == 5


def test_backend_flag_smoke(capsys):
    """Every backend answers the same experiment with the same table."""
    outputs = {}
    for backend in ("serial", "fork", "shard"):
        code = main([
            "figure9",
            "--workloads", "ChaCha20_ct",
            "--no-cache", "--jobs", "2", "--backend", backend,
        ])
        assert code == 0
        outputs[backend] = capsys.readouterr().out
    assert outputs["serial"] == outputs["fork"] == outputs["shard"]


def test_warm_cache_run_skips_all_heavy_work(capsys, tmp_path, trace_counter):
    cache_dir = str(tmp_path / "cli-cache")
    argv = [
        "trace-runtime", "figure9",
        "--workloads", "ChaCha20_ct",
        "--cache-dir", cache_dir, "--jobs", "1",
    ]
    assert main(argv) == 0
    cold_out = capsys.readouterr().out
    assert len(trace_counter) == 1

    assert main(argv) == 0
    warm_out = capsys.readouterr().out
    assert len(trace_counter) == 1  # nothing re-traced on the warm run
    assert warm_out == cold_out  # identical reproduced tables
