"""The content-addressed on-disk artifact cache."""

import pickle

import pytest

from repro.analysis.tracegen import TraceParameters
from repro.crypto.workloads import get_workload
from repro.experiments.runner import prepare_workload
from repro.pipeline import ArtifactCache, inputs_fingerprint, program_fingerprint, stable_digest
from repro.pipeline.parallel import workload_artifact_digest

WORKLOAD = "SHA-256"


def _bundles_equivalent(first, second) -> bool:
    if set(first.branches) != set(second.branches):
        return False
    if first.counts() != second.counts():
        return False
    if set(first.hardware_traces()) != set(second.hardware_traces()):
        return False
    return first.params == second.params


def test_cold_vs_warm_round_trip(artifact_cache, tmp_path):
    cold = prepare_workload(WORKLOAD, cache=artifact_cache)
    assert artifact_cache.stats.misses == 1
    assert artifact_cache.stats.stores == 1
    assert artifact_cache.entry_count() == 1

    # A fresh cache object over the same directory models a new process.
    warm_cache = ArtifactCache(root=artifact_cache.root)
    warm = prepare_workload(WORKLOAD, cache=warm_cache)
    assert warm_cache.stats.hits == 1
    assert warm_cache.stats.misses == 0

    assert _bundles_equivalent(cold.bundle, warm.bundle)
    assert cold.result.instruction_count == warm.result.instruction_count
    # The timing simulation over the reloaded artifacts is bit-identical.
    assert warm.simulate("cassandra").cycles == cold.simulate("cassandra").cycles


def test_simulation_results_persist_across_processes(artifact_cache):
    first = prepare_workload(WORKLOAD, cache=artifact_cache)
    cycles = first.simulate("cassandra").cycles
    # workload payload + lowered trace + simulation
    assert artifact_cache.entry_count() == 3

    warm_cache = ArtifactCache(root=artifact_cache.root)
    warm = prepare_workload(WORKLOAD, cache=warm_cache)
    result = warm.simulate("cassandra")
    assert result.cycles == cycles
    # artifact payload + simulation payload (the lowered trace is not even
    # loaded: the memoized simulation short-circuits before lowering).
    assert warm_cache.stats.hits == 2

    # A simulation point outside the persisted set reuses the lowered trace
    # from disk instead of re-lowering.
    warm.simulate("unsafe-baseline")
    assert warm_cache.stats.hits == 3


def test_trace_parameter_change_misses(artifact_cache):
    prepare_workload(WORKLOAD, cache=artifact_cache)
    assert artifact_cache.stats.stores == 1
    prepare_workload(WORKLOAD, cache=artifact_cache, trace_params=TraceParameters(max_k=8))
    # Different parameters are a different artifact, not a stale hit.
    assert artifact_cache.stats.stores == 2
    assert artifact_cache.entry_count() == 2


def test_corrupt_entry_is_a_miss_and_heals(artifact_cache):
    prepare_workload(WORKLOAD, cache=artifact_cache)
    kernel = get_workload(WORKLOAD).kernel()
    digest = workload_artifact_digest(kernel, TraceParameters())
    path = artifact_cache.path_for("workload-artifacts", WORKLOAD, digest)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")

    healing = ArtifactCache(root=artifact_cache.root)
    artifact = prepare_workload(WORKLOAD, cache=healing)
    assert healing.stats.misses >= 1
    assert artifact.analysis.branch_count > 0
    with open(path, "rb") as handle:
        payload = pickle.load(handle)  # healed entry is valid again
    assert payload[0].instruction_count == artifact.result.instruction_count


def test_corrupt_entry_is_quarantined_not_rereread(tmp_path):
    """A truncated pickle is renamed aside on first read — it must not be
    re-read and re-missed on every subsequent run — and the recompute
    re-stores a valid entry at the original path."""
    import os

    cache = ArtifactCache(root=str(tmp_path))
    cache.put("kind", "entry", "d" * 24, {"payload": 42})
    path = cache.path_for("kind", "entry", "d" * 24)
    with open(path, "rb") as handle:
        whole = handle.read()
    with open(path, "wb") as handle:
        handle.write(whole[: len(whole) // 2])  # a torn disk write

    reader = ArtifactCache(root=str(tmp_path))
    assert reader.get("kind", "entry", "d" * 24) is None
    assert reader.stats.quarantined == 1
    assert not os.path.exists(path)  # moved aside, not left to re-miss
    assert os.path.exists(path + ".corrupt")
    assert reader.entry_count() == 0  # .corrupt files are not entries

    # A second read is a plain miss, not another quarantine.
    assert reader.get("kind", "entry", "d" * 24) is None
    assert reader.stats.quarantined == 1

    # The heal path: recompute re-puts at the original path and hits again.
    reader.put("kind", "entry", "d" * 24, {"payload": 42})
    fresh = ArtifactCache(root=str(tmp_path))
    assert fresh.get("kind", "entry", "d" * 24) == {"payload": 42}
    assert fresh.stats.hits == 1


def test_memory_only_cache_memoizes(tmp_path):
    cache = ArtifactCache(root=None)
    assert cache.get("kind", "name", "digest") is None
    cache.put("kind", "name", "digest", {"payload": 1})
    assert cache.get("kind", "name", "digest") == {"payload": 1}
    assert cache.entry_count() == 0  # nothing on disk
    assert cache.path_for("kind", "name", "digest") is None


def test_fingerprints_are_stable_and_content_sensitive():
    first = get_workload("ChaCha20_ct").kernel()
    second = get_workload("ChaCha20_ct").kernel()
    assert program_fingerprint(first.program) == program_fingerprint(second.program)
    assert inputs_fingerprint(first.inputs) == inputs_fingerprint(second.inputs)
    other = get_workload("SHA-256").kernel()
    assert program_fingerprint(first.program) != program_fingerprint(other.program)
    assert stable_digest("a", (1, 2)) != stable_digest("a", (1, 3))
    assert stable_digest("a", (1, 2)) == stable_digest("a", (1, 2))


def test_prepare_reverifies_on_cache_hit(artifact_cache, monkeypatch):
    """A cache hit still runs the kernel's correctness check."""
    prepare_workload(WORKLOAD, cache=artifact_cache)
    workload = get_workload(WORKLOAD)
    kernel = workload.kernel()
    monkeypatch.setattr(kernel, "verify", lambda result: False)
    with pytest.raises(RuntimeError, match="correctness check"):
        prepare_workload(WORKLOAD, cache=artifact_cache)
