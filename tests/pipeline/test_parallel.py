"""Parallel preparation and simulation must match the serial path exactly."""

import pytest

from repro.experiments.runner import prepare_workload, simulation_key
from repro.pipeline import ExperimentPipeline, SimulationPoint, prepare_workloads_parallel, simulate_points
from repro.pipeline.parallel import KernelSpec, prepare_kernels_parallel
from repro.uarch.config import CoreConfig

NAMES = ["ChaCha20_ct", "SHA-256"]
SMALL_CORE = CoreConfig(rob_size=64, fetch_width=4)


def test_parallel_prepare_matches_serial():
    parallel = prepare_workloads_parallel(NAMES, jobs=2)
    serial = [prepare_workload(name) for name in NAMES]
    for par, ser in zip(parallel, serial):
        assert par.name == ser.name
        assert par.result.instruction_count == ser.result.instruction_count
        assert set(par.bundle.branches) == set(ser.bundle.branches)
        assert par.analysis.branch_count == ser.analysis.branch_count
        assert par.simulate("cassandra").cycles == ser.simulate("cassandra").cycles


def test_parallel_prepare_warms_shared_disk_cache(artifact_cache):
    prepare_workloads_parallel(NAMES, cache=artifact_cache, jobs=2)
    # Workers persisted the payloads; a cold in-memory cache over the same
    # root must hit for every workload.
    from repro.pipeline import ArtifactCache

    warm = ArtifactCache(root=artifact_cache.root)
    for name in NAMES:
        prepare_workload(name, cache=warm)
    assert warm.stats.hits == len(NAMES)
    assert warm.stats.misses == 0


def test_simulate_points_parallel_matches_serial():
    points = [
        SimulationPoint(workload=name, design=design)
        for name in NAMES
        for design in ("unsafe-baseline", "cassandra")
    ] + [
        SimulationPoint(workload=NAMES[0], design="unsafe-baseline", config=SMALL_CORE),
        SimulationPoint(workload=NAMES[0], design="cassandra", btu_flush_interval=300),
    ]

    par_artifacts = [prepare_workload(name) for name in NAMES]
    computed = simulate_points(par_artifacts, points, jobs=2)
    assert computed == len(points)

    ser_artifacts = [prepare_workload(name) for name in NAMES]
    assert simulate_points(ser_artifacts, points, jobs=1) == len(points)

    for par, ser in zip(par_artifacts, ser_artifacts):
        assert set(par.simulations) == set(ser.simulations)
        for key, result in par.simulations.items():
            assert result.cycles == ser.simulations[key].cycles
            assert result.stats.instructions == ser.simulations[key].stats.instructions
            assert result.stats.bpu_mispredicted == ser.simulations[key].stats.bpu_mispredicted

    # Every point landed in the memo: re-running is a no-op...
    assert simulate_points(par_artifacts, points, jobs=2) == 0
    # ...and simulate() returns the memoized object without recomputing.
    small = par_artifacts[0].simulate("unsafe-baseline", config=SMALL_CORE)
    assert small is par_artifacts[0].simulations[
        simulation_key("unsafe-baseline", config=SMALL_CORE)
    ]
    # The non-default config got its own, slower result (stale-cache fix).
    assert small.cycles > par_artifacts[0].simulate("unsafe-baseline").cycles


def test_pipeline_single_artifact_prepares_only_that_workload(artifact_cache):
    pipeline = ExperimentPipeline(names=NAMES, cache=artifact_cache, jobs=1)
    artifact = pipeline.artifact(NAMES[0])
    assert artifact.name == NAMES[0]
    assert pipeline.stats()["prepared"] == 1  # the other workload stayed cold


def test_synthetic_kernel_specs_prepare_in_workers():
    """Figure 8's (primitive, mix) grid builds inside workers, not the parent."""
    specs = [
        KernelSpec(
            kind="synthetic",
            name=f"synthetic-chacha20-{mix}",
            args=("chacha20", mix),
            suite="synthetic",
        )
        for mix in ("90s/10c", "all-crypto")
    ]
    parallel = prepare_kernels_parallel(specs, jobs=2)
    serial = prepare_kernels_parallel(specs, jobs=1)
    assert [a.name for a in parallel] == [a.name for a in serial]
    for par, ser in zip(parallel, serial):
        assert par.suite == "synthetic"
        assert par.result.instruction_count == ser.result.instruction_count
        assert set(par.bundle.branches) == set(ser.bundle.branches)
        assert (
            par.simulate("cassandra+prospect").cycles
            == ser.simulate("cassandra+prospect").cycles
        )


def test_kernel_spec_rejects_unknown_kind():
    with pytest.raises(KeyError):
        KernelSpec(kind="nope", name="x").build()


def test_lowered_trace_bytes_roundtrip():
    """The fork fan-out's preserialized payload reproduces every column."""
    from repro.engine.lowering import LOWERING_FORMAT_VERSION, LoweredTrace

    artifact = prepare_workload(NAMES[0])
    trace = artifact.lowered_trace()
    clone = LoweredTrace.from_bytes(trace.to_bytes())
    assert clone is not trace
    assert clone.columns() == trace.columns()
    assert clone.reg_names == trace.reg_names
    assert clone.max_pc == trace.max_pc
    assert clone.format_version == LOWERING_FORMAT_VERSION

    stale = LoweredTrace.from_bytes(trace.to_bytes())
    stale.format_version = LOWERING_FORMAT_VERSION + 1
    with pytest.raises(ValueError):
        LoweredTrace.from_bytes(stale.to_bytes())
    with pytest.raises(TypeError):
        import pickle

        LoweredTrace.from_bytes(pickle.dumps({"not": "a trace"}))


def test_code_fingerprint_is_stable_and_in_digests():
    from repro.analysis.tracegen import TraceParameters
    from repro.crypto.workloads import get_workload
    from repro.pipeline.hashing import code_fingerprint
    from repro.pipeline.parallel import workload_artifact_digest

    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 24 and int(first, 16) >= 0
    kernel = get_workload(NAMES[0]).kernel()
    digest = workload_artifact_digest(kernel, TraceParameters())
    assert digest == workload_artifact_digest(kernel, TraceParameters())


def test_pipeline_prefetch_and_stats(artifact_cache):
    pipeline = ExperimentPipeline(names=NAMES, cache=artifact_cache, jobs=2)
    artifacts = pipeline.artifacts()
    assert [artifact.name for artifact in artifacts] == NAMES
    assert pipeline.artifacts() is not None  # second call: all memoized
    computed = pipeline.prefetch_designs(["unsafe-baseline", "cassandra"])
    assert computed == 4
    assert pipeline.prefetch_designs(["unsafe-baseline", "cassandra"]) == 0
    stats = pipeline.stats()
    assert stats["prepared"] == len(NAMES)
    assert stats["points_simulated"] == 4
    assert stats["cache_dir"] == artifact_cache.root
