"""Security tests: Spectre-v1 demonstration and the Table 2 scenarios."""

import pytest

from repro.attacks import (
    build_listing1_program,
    evaluate_scenarios,
    run_listing1_attack,
    transient_leak_detected,
)
from repro.attacks.gadgets import SCENARIOS, build_scenario_program
from repro.attacks.spectre_v1 import listing1_attacker


def test_listing1_leaks_on_unsafe_baseline():
    assert run_listing1_attack(mode="unsafe") is True


def test_listing1_protected_by_cassandra():
    assert run_listing1_attack(mode="cassandra") is False


def test_listing1_no_leak_without_attacker():
    program, secret_addr = build_listing1_program()
    assert not transient_leak_detected(
        program, {secret_addr: 1}, {secret_addr: 2}, mode="unsafe", attacker=None
    )


def test_scenario_program_structure():
    scenario_program = build_scenario_program()
    assert set(scenario_program.branch_pcs) == {"BR1", "BR2"}
    assert set(scenario_program.gadget_pcs) == {"R1", "R2", "M1", "M2"}
    program = scenario_program.program
    assert program.is_crypto_pc(scenario_program.branch_pcs["BR1"])
    assert not program.is_crypto_pc(scenario_program.branch_pcs["BR2"])
    assert program.is_crypto_pc(scenario_program.gadget_pcs["M1"])
    assert not program.is_crypto_pc(scenario_program.gadget_pcs["M2"])


@pytest.fixture(scope="module")
def scenario_results():
    return {result.scenario: result for result in evaluate_scenarios()}


def test_all_eight_scenarios_evaluated(scenario_results):
    assert set(scenario_results) == {1, 2, 3, 4, 5, 6, 7, 8}
    assert len(SCENARIOS) == 8


@pytest.mark.parametrize("scenario", [1, 2, 4, 5])
def test_unsafe_baseline_leaks_crypto_scenarios(scenario_results, scenario):
    """Transient paths from either branch into secret-bearing gadgets leak on
    the unprotected machine."""
    assert scenario_results[scenario].leaks_unsafe


@pytest.mark.parametrize("scenario", [1, 2, 3, 4, 5, 6])
def test_cassandra_blocks_all_in_scope_scenarios(scenario_results, scenario):
    """Table 2: Cassandra enforces sequential flow for scenarios 1-6."""
    assert not scenario_results[scenario].leaks_cassandra


def test_scenario7_is_harmless_speculation(scenario_results):
    """Scenario 7 speculates under both machines but involves no secret."""
    assert not scenario_results[7].leaks_unsafe
    assert not scenario_results[7].leaks_cassandra


def test_scenario8_out_of_scope_for_cassandra(scenario_results):
    """Scenario 8 (software isolation) leaks under both machines — exactly the
    case the paper delegates to a sandboxing defense."""
    assert scenario_results[8].leaks_unsafe
    assert scenario_results[8].leaks_cassandra


def test_declassified_register_scenario6_not_a_leak(scenario_results):
    """Scenario 6: the register is already declassified when non-crypto code
    runs, so even the unsafe machine leaks nothing secret."""
    assert not scenario_results[6].leaks_unsafe
