"""Unit tests for the sequential executor and its observation traces."""

import pytest

from repro.arch.executor import ExecutionError, SequentialExecutor
from repro.arch.observations import ObservationKind
from repro.isa.builder import ProgramBuilder


def run_snippet(build):
    b = ProgramBuilder()
    build(b)
    b.halt()
    return SequentialExecutor().run(b.build())


def test_arithmetic_semantics():
    def build(b):
        b.movi("a", 10)
        b.movi("b", 3)
        b.add("sum", "a", "b")
        b.sub("diff", "a", "b")
        b.mul("prod", "a", "b")
        b.div("quot", "a", "b")
        b.mod("rem", "a", "b")
        b.xor("x", "a", "b")
        b.and_("n", "a", "b")
        b.or_("o", "a", "b")

    result = run_snippet(build)
    assert result.register("sum") == 13
    assert result.register("diff") == 7
    assert result.register("prod") == 30
    assert result.register("quot") == 3
    assert result.register("rem") == 1
    assert result.register("x") == 9
    assert result.register("n") == 2
    assert result.register("o") == 11


def test_division_by_zero_yields_zero():
    def build(b):
        b.movi("a", 10)
        b.movi("z", 0)
        b.div("q", "a", "z")
        b.mod("r", "a", "z")

    result = run_snippet(build)
    assert result.register("q") == 0
    assert result.register("r") == 0


def test_shift_and_rotate_semantics():
    def build(b):
        b.movi("a", 0x80000001)
        b.rotl("rl", "a", 1)
        b.rotr("rr", "a", 1)
        b.movi("b", 1)
        b.shl("sl", "b", 65)
        b.shr("sr", "b", 65)
        b.movi("c", 1 << 63)
        b.rotl64("rl64", "c", 1)

    result = run_snippet(build)
    assert result.register("rl") == 0x00000003
    assert result.register("rr") == 0xC0000000
    assert result.register("sl") == 0
    assert result.register("sr") == 0
    assert result.register("rl64") == 1


def test_comparisons_and_csel():
    def build(b):
        b.movi("a", 5)
        b.movi("b", 9)
        b.cmplt("lt", "a", "b")
        b.cmpge("ge", "a", "b")
        b.cmpeq("eq", "a", 5)
        b.csel("sel", "lt", "a", "b")
        b.csel("sel2", "ge", "a", "b")

    result = run_snippet(build)
    assert result.register("lt") == 1
    assert result.register("ge") == 0
    assert result.register("eq") == 1
    assert result.register("sel") == 5
    assert result.register("sel2") == 9


def test_memory_load_store_and_observations():
    def build(b):
        base = b.alloc("buf", [0, 0, 0])
        b.movi("addr", base)
        b.movi("v", 42)
        b.store("v", "addr", 1)
        b.load("w", "addr", 1)

    result = run_snippet(build)
    assert result.register("w") == 42
    kinds = [obs.kind for obs in result.observations]
    assert ObservationKind.STORE in kinds and ObservationKind.LOAD in kinds
    store_obs = next(obs for obs in result.observations if obs.kind is ObservationKind.STORE)
    load_obs = next(obs for obs in result.observations if obs.kind is ObservationKind.LOAD)
    assert store_obs.value == load_obs.value


def test_branch_outcomes_recorded_per_static_branch():
    def build(b):
        i = b.reg("i")
        with b.for_range(i, 0, 4):
            b.nop()

    result = run_snippet(build)
    # Exactly one conditional loop branch, executed 5 times (4 body + exit).
    [branch_pc] = [pc for pc in result.branch_outcomes if result.program.fetch(pc).is_conditional]
    assert len(result.branch_outcomes[branch_pc]) == 5


def test_call_and_return_observations():
    def build(b):
        with b.function("f") as f:
            b.movi("x", 7)
        b.call(f)

    result = run_snippet(build)
    kinds = [obs.kind for obs in result.observations]
    assert ObservationKind.CALL in kinds and ObservationKind.RET in kinds
    assert result.register("x") == 7


def test_secret_taint_propagation_and_declassify():
    def build(b):
        secret = b.alloc_secret("secret", [5])
        public = b.alloc("public", [6])
        b.movi("sa", secret)
        b.movi("pa", public)
        b.load("s", "sa")
        b.load("p", "pa")
        b.add("mix", "s", "p")
        b.store("mix", "pa")
        b.declassify("s")

    result = run_snippet(build)
    state = result.state
    assert not state.reg_is_secret("s")  # declassified at the end
    assert state.reg_is_secret("mix")
    assert not state.reg_is_secret("p")
    # The store of a tainted value taints the memory word.
    dyn_stores = [d for d in result.dynamic if d.is_store]
    assert state.mem_is_secret(dyn_stores[0].mem_address)


def test_secret_operand_flag_in_dynamic_stream():
    def build(b):
        secret = b.alloc_secret("secret", [5])
        b.movi("sa", secret)
        b.load("s", "sa")
        b.add("t", "s", 1)

    result = run_snippet(build)
    add_record = [d for d in result.dynamic if d.opcode.name == "ADD" and d.dst == "t"][0]
    assert add_record.secret_operand


def test_step_limit_enforced():
    b = ProgramBuilder()
    loop = b.label("forever")
    b.place(loop)
    b.jmp(loop)
    program = b.build()
    with pytest.raises(ExecutionError):
        SequentialExecutor(max_steps=100).run(program)


def test_invalid_jump_detected():
    b = ProgramBuilder()
    b.movi("t", 1000)
    b.jmpi("t")
    b.halt()
    with pytest.raises(ExecutionError):
        SequentialExecutor().run(b.build())


def test_memory_overrides_replace_inputs():
    b = ProgramBuilder()
    addr = b.alloc("value", [1])
    b.movi("a", addr)
    b.load("v", "a")
    b.halt()
    program = b.build()
    default = SequentialExecutor().run(program)
    overridden = SequentialExecutor().run(program, memory_overrides={addr: 99})
    assert default.register("v") == 1
    assert overridden.register("v") == 99


def test_constant_time_program_has_input_independent_control_flow(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    exec_a = SequentialExecutor().run(program, memory_overrides={key_addr: 1})
    exec_b = SequentialExecutor().run(program, memory_overrides={key_addr: 250})
    cf_a = [(o.kind, o.value) for o in exec_a.observations if o.is_control_flow]
    cf_b = [(o.kind, o.value) for o in exec_b.observations if o.is_control_flow]
    assert cf_a == cf_b
