"""Tests for the contract model and the speculative hardware semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.spectre_v1 import build_listing1_program, listing1_attacker
from repro.formal import (
    SpeculativeMachine,
    check_contract_satisfaction,
    contract_trace,
    contracts_agree,
    crypto_cf_trace,
)
from repro.formal.speculative import hardware_trace


def test_contract_trace_kinds(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    trace = contract_trace(program, {key_addr: 5})
    kinds = {obs.kind.value for obs in trace}
    # The ct leakage exposes control flow and memory addresses only.
    assert kinds <= {"pc", "call", "ret", "load", "store"}
    assert trace, "the toy program produces observations"


def test_crypto_cf_trace_is_control_flow_only(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    trace = crypto_cf_trace(program, {key_addr: 5})
    assert all(obs.is_control_flow and obs.crypto for obs in trace)


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_constant_time_program_contracts_agree(secret_a, secret_b):
    """Insight 1 as a property: contract traces are secret independent."""
    from tests.conftest import build_toy_crypto_program

    program, key_addr, _out = build_toy_crypto_program()
    assert contracts_agree(program, {key_addr: secret_a}, {key_addr: secret_b})


def test_speculative_machine_without_attacker_matches_sequential(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    machine = SpeculativeMachine(mode="unsafe")
    run = machine.run(program, {key_addr: 9})
    assert run.squashes == 0
    assert run.transient_instructions == 0
    assert run.state is not None and run.state.halted


def test_attacker_induces_transient_execution_under_unsafe():
    program, secret_addr = build_listing1_program()
    attacker = listing1_attacker(program)
    run = SpeculativeMachine(mode="unsafe").run(program, {secret_addr: 0x11}, attacker)
    assert run.squashes >= 1
    assert run.transient_instructions > 0
    assert any(obs.transient for obs in run.observations)


def test_cassandra_semantics_block_crypto_speculation():
    program, secret_addr = build_listing1_program()
    attacker = listing1_attacker(program)
    run = SpeculativeMachine(mode="cassandra").run(program, {secret_addr: 0x11}, attacker)
    assert run.squashes == 0
    assert run.transient_instructions == 0


def test_theorem1_contract_satisfaction_under_cassandra():
    """Theorem 1: the Cassandra semantics satisfies the ct/seq contract even
    with an adversarially controlled predictor."""
    program, secret_addr = build_listing1_program()
    attacker = listing1_attacker(program)

    def cassandra_hw(prog, memory_input):
        return hardware_trace(prog, memory_input, mode="cassandra", attacker=attacker)

    def unsafe_hw(prog, memory_input):
        return hardware_trace(prog, memory_input, mode="unsafe", attacker=attacker)

    assert check_contract_satisfaction(program, {secret_addr: 1}, {secret_addr: 2}, cassandra_hw)
    # The unsafe semantics violates the same contract under this attacker.
    assert not check_contract_satisfaction(program, {secret_addr: 1}, {secret_addr: 2}, unsafe_hw)


def test_contract_satisfaction_trivially_holds_for_differing_contracts():
    """Definition 3 only constrains pairs whose contract traces agree."""
    from repro.isa.builder import ProgramBuilder

    b = ProgramBuilder("leaky-by-contract")
    n_addr = b.alloc_secret("n", [2])
    with b.crypto():
        i, n, addr = b.regs("i", "n", "addr")
        b.movi(addr, n_addr)
        b.load(n, addr)
        with b.for_range(i, 0, n):
            b.nop()
    b.halt()
    program = b.build()
    assert not contracts_agree(program, {n_addr: 2}, {n_addr: 5})
    assert check_contract_satisfaction(
        program, {n_addr: 2}, {n_addr: 5}, lambda p, m: hardware_trace(p, m, mode="unsafe")
    )


def test_speculative_machine_rejects_unknown_mode():
    with pytest.raises(ValueError):
        SpeculativeMachine(mode="weird")
