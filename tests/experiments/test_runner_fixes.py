"""Regression tests for the runner bug fixes.

Covers the three historic defects: the ``simulate()`` cache key ignoring
``config``/``warmup_passes`` (a config sweep silently returned the first
config's result for every point), ``format_table`` crashing on an empty row
list, and ``geometric_mean`` silently discarding negative inputs.
"""

import pytest

from repro.experiments.runner import format_table, geometric_mean, simulation_key
from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE


# --------------------------------------------------------------------------- #
# simulate() cache key
# --------------------------------------------------------------------------- #
SMALL_CORE = CoreConfig(rob_size=32, fetch_width=2, decode_width=2, issue_width=2, commit_width=2)


def test_simulate_not_stale_across_configs(chacha_artifact):
    """A non-default CoreConfig must produce its own, config-specific result."""
    default = chacha_artifact.simulate("unsafe-baseline")
    small = chacha_artifact.simulate("unsafe-baseline", config=SMALL_CORE)
    assert small is not default
    # A 2-wide, 32-entry-ROB core must be substantially slower than the
    # 8-wide Golden-Cove-like default on the same dynamic stream.
    assert small.cycles > default.cycles
    assert small.config == SMALL_CORE
    assert default.config == GOLDEN_COVE_LIKE


def test_simulate_memoizes_per_full_argument_set(chacha_artifact):
    first = chacha_artifact.simulate("unsafe-baseline", config=SMALL_CORE)
    again = chacha_artifact.simulate("unsafe-baseline", config=SMALL_CORE)
    assert again is first  # memo hit
    cold = chacha_artifact.simulate("unsafe-baseline", config=SMALL_CORE, warmup_passes=0)
    assert cold is not first  # warmup participates in the key


def test_simulate_flush_interval_in_key(chacha_artifact):
    plain = chacha_artifact.simulate("cassandra")
    flushed = chacha_artifact.simulate("cassandra", btu_flush_interval=200)
    assert flushed is not plain
    assert flushed.cycles >= plain.cycles


def test_simulation_key_covers_every_argument():
    base = simulation_key("cassandra")
    assert simulation_key("cassandra") == base
    assert simulation_key("spt") != base
    assert simulation_key("cassandra", config=SMALL_CORE) != base
    assert simulation_key("cassandra", btu_flush_interval=100) != base
    assert simulation_key("cassandra", warmup_passes=2) != base


# --------------------------------------------------------------------------- #
# format_table
# --------------------------------------------------------------------------- #
def test_format_table_empty_rows_renders_header():
    text = format_table([], ["workload", "cycles"])
    lines = text.splitlines()
    assert lines[0].split() == ["workload", "cycles"]
    assert lines[1] == "--------  ------"
    assert len(lines) == 2


def test_format_table_rows_align_and_format_floats():
    text = format_table(
        [{"workload": "x", "cycles": 1.23456}, {"workload": "longer-name", "cycles": 2}],
        ["workload", "cycles"],
    )
    lines = text.splitlines()
    assert "1.235" in lines[2]
    assert lines[3].startswith("longer-name")


# --------------------------------------------------------------------------- #
# geometric_mean
# --------------------------------------------------------------------------- #
def test_geometric_mean_rejects_negatives():
    with pytest.raises(ValueError, match="negative"):
        geometric_mean([1.0, -2.0, 4.0])


def test_geometric_mean_skips_zeros_and_handles_empty():
    assert geometric_mean([0.0, 2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0]) == 0.0


def test_geometric_mean_plain_values():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
