"""End-to-end tests of the experiment harnesses on a reduced workload set."""

import pytest

from repro.api import SimulationService
from repro.experiments.cassandra_lite import format_cassandra_lite, run_cassandra_lite
from repro.experiments.figure7 import format_figure7, run_figure7, summarize_speedup
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import btu_area_percent, format_figure9, power_reduction_percent, run_figure9
from repro.experiments.interrupts import format_interrupt_study, run_interrupt_study
from repro.experiments.runner import geometric_mean, prepare_workload
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.trace_runtime import format_trace_runtime, run_trace_runtime

#: A tiny but representative slice: one fast workload per suite.
TEST_WORKLOADS = ["ChaCha20_ct", "sha256", "sphincs-haraka-128s"]


@pytest.fixture(scope="module")
def ctx():
    # The shared service is what every consumer (CLI, benchmarks) now uses;
    # driving the experiments through one uniform context here keeps the
    # standalone and CLI paths honest.  Prepared artifacts and simulation
    # memos are shared across every test in the module.
    return SimulationService(names=TEST_WORKLOADS).context()


def test_prepare_workload_verifies_kernel():
    artifact = prepare_workload("Poly1305_ctmul")
    assert artifact.analysis.branch_count > 0
    assert artifact.bundle.hardware_traces() is not None


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0


def test_table1_rows_and_compression(ctx):
    rows = run_table1(ctx=ctx, invocations=64)
    assert rows[-1]["program"] == "All"
    # With repeated invocations the k-mers traces must be far smaller than
    # the vanilla traces (the paper's headline compression claim).
    assert rows[-1]["compression_avg"] > 10
    assert rows[-1]["kmers_avg"] < rows[-1]["vanilla_avg"]
    assert "ChaCha20_ct" in format_table1(rows)


def test_figure7_normalization_and_headline(ctx):
    rows = run_figure7(ctx=ctx)
    assert rows[-1]["workload"] == "geomean"
    assert [row["workload"] for row in rows[:-1]] == TEST_WORKLOADS
    for row in rows[:-1]:
        assert row["unsafe-baseline"] == pytest.approx(1.0)
        # Cassandra must never be slower than the baseline on these kernels
        # and SPT must never be faster than the baseline.
        assert row["cassandra"] <= 1.0 + 1e-9
        assert row["spt"] >= 1.0 - 1e-9
    speedup = summarize_speedup(rows)
    assert speedup >= 0.0
    assert "geomean" in format_figure7(rows)


def test_figure8_overheads():
    rows = run_figure8(mixes=["25s/75c", "all-crypto"])
    assert len(rows) == 4
    by_key = {(row["primitive"], row["mix"]): row for row in rows}
    for (primitive, mix), row in by_key.items():
        # Neither design may blow up: the paper's overheads stay within a
        # narrow band (at most ~15% for ProSpeCT, small gains for Cassandra).
        assert -10.0 < row["prospect"] < 60.0
        assert -10.0 < row["cassandra+prospect"] < 60.0
    # The chacha20 (public stack) benchmark is nearly free for ProSpeCT.
    assert by_key[("chacha20", "all-crypto")]["prospect"] < 5.0
    assert "curve25519" in format_figure8(rows)


def test_figure9_power_and_area(ctx):
    report = run_figure9(ctx=ctx)
    assert power_reduction_percent(report) > 0.0
    assert btu_area_percent(report) == pytest.approx(1.26, abs=0.01)
    assert report["power:unsafe-baseline"]["total"] == pytest.approx(1.0)
    assert "branch_trace_unit" in format_figure9(report)


def test_table2_scenarios():
    results = run_table2()
    assert len(results) == 8
    assert all(not r.leaks_cassandra for r in results if r.scenario <= 6)
    assert "BR1 -> R1" in format_table2(results)


def test_cassandra_lite_study(ctx):
    rows = run_cassandra_lite(ctx=ctx)
    lite_rows = [row for row in rows if isinstance(row["lite_over_cassandra"], float) and not str(row["workload"]).startswith("geomean")]
    assert all(row["lite_over_cassandra"] >= 1.0 - 1e-9 for row in lite_rows)
    assert "geomean-bearssl" in format_cassandra_lite(rows)


def test_interrupt_study(ctx):
    rows = run_interrupt_study(ctx=ctx, flush_interval=500)
    geomean = rows[-1]
    assert geomean["cassandra+flush"] >= geomean["cassandra"] - 1e-9
    assert "geomean" in format_interrupt_study(rows)


def test_trace_runtime_rows(ctx):
    rows = run_trace_runtime(ctx=ctx)
    assert len(rows) == len(TEST_WORKLOADS)
    assert all(row["E_kmers_compression"] >= 0 for row in rows)
    assert "A_detect_static_branches" in format_trace_runtime(rows)


def test_figure8_parallel_fanout_matches_serial():
    serial = SimulationService(names=[], backend="serial").context()
    fork = SimulationService(names=[], jobs=2, backend="fork").context()
    rows_serial = run_figure8(ctx=serial, mixes=["25s/75c"])
    rows_parallel = run_figure8(ctx=fork, mixes=["25s/75c"])
    assert rows_serial == rows_parallel


def test_sweep_experiment(ctx):
    from repro.experiments.sweep import SWEEP_CONFIGS, format_sweep, run_sweep

    configs = SWEEP_CONFIGS[:2]  # golden-cove + rob-256 keeps the test fast
    rows = run_sweep(ctx=ctx, configs=configs)
    assert [row["config"] for row in rows] == [label for label, _ in configs]
    for row in rows:
        assert row["unsafe-baseline_cycles"] > 0
        # Cassandra is not slower than the baseline on these kernels,
        # whatever the configuration.
        assert row["cassandra_norm"] <= 1.0 + 1e-9
    # A smaller ROB can't be faster than the paper's Golden-Cove machine.
    assert rows[1]["unsafe-baseline_cycles"] >= rows[0]["unsafe-baseline_cycles"]
    assert "golden-cove" in format_sweep(rows)


def test_sweep_matrix_covers_every_config_and_design():
    from repro.experiments.registry import get_experiment
    from repro.experiments.sweep import SWEEP_CONFIGS, SWEEP_DESIGNS, sweep_matrix

    spec = get_experiment("sweep")
    assert spec.matrix == sweep_matrix()

    requests = sweep_matrix().expand(["ChaCha20_ct"])
    assert len(requests) == len(SWEEP_CONFIGS) * len(SWEEP_DESIGNS)
    assert len({request.key() for request in requests}) == len(requests)
