"""Tests for the analytical power/area model."""

from repro.power.model import BASELINE_AREA_FRACTIONS, BTU_AREA_FRACTION, PowerAreaModel
from repro.uarch.stats import PipelineStats


def _stats(**overrides):
    stats = PipelineStats(
        cycles=10_000,
        instructions=40_000,
        fetched_instructions=40_000,
        renamed_instructions=40_000,
        issued_instructions=40_000,
        committed_instructions=40_000,
        loads=8_000,
        stores=4_000,
        branches=5_000,
        bpu_predicted=5_000,
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


def test_baseline_area_fractions_sum_to_one():
    assert abs(sum(BASELINE_AREA_FRACTIONS.values()) - 1.0) < 1e-9


def test_btu_area_overhead_matches_paper_figure():
    model = PowerAreaModel()
    baseline = model.area(with_btu=False)
    cassandra = model.area(with_btu=True)
    overhead = cassandra.normalized_to(baseline)["branch_trace_unit"]
    assert abs(overhead - BTU_AREA_FRACTION) < 1e-9
    assert cassandra.total > baseline.total


def test_cassandra_power_lower_when_bpu_accesses_removed():
    model = PowerAreaModel()
    baseline_power = model.power(_stats(), with_btu=False)
    cassandra_stats = _stats(bpu_predicted=0, btu_replayed=4_000, single_target_branches=1_000)
    cassandra_power = model.power(cassandra_stats, with_btu=True)
    assert cassandra_power.total < baseline_power.total
    normalized = cassandra_power.normalized_to(baseline_power)
    assert 0.8 < normalized["total"] < 1.0
    assert normalized["branch_trace_unit"] > 0.0


def test_power_report_units_present():
    model = PowerAreaModel()
    report = model.power(_stats(), with_btu=False)
    assert set(report.per_unit) == {
        "instruction_fetch_unit",
        "renaming_unit",
        "load_store_unit",
        "execution_unit",
        "branch_trace_unit",
    }
    assert report.per_unit["branch_trace_unit"] == 0.0
    assert report.total > 0
