"""The ``repro warehouse`` CLI, driven in-process: exit codes and formats."""

import json

import pytest

from repro.api import ScenarioMatrix, SimulationService
from repro.api.results import rows_to_csv
from repro.warehouse import Query, WarehouseStore, attach_ingestor
from repro.warehouse.cli import warehouse_main

WORKLOAD = "ChaCha20_ct"
DESIGNS = ("unsafe-baseline", "cassandra")


@pytest.fixture(scope="module")
def warehouse(tmp_path_factory):
    """A store with a live run under fpA and a 1.25×-doctored fpB."""
    path = str(tmp_path_factory.mktemp("wh") / "wh.sqlite3")
    store = WarehouseStore(path)
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    attach_ingestor(service, store, fingerprint="fpA")
    service.run(ScenarioMatrix(designs=DESIGNS))
    service.close()
    import time

    deadline = time.monotonic() + 30.0
    while store.count() < len(DESIGNS) and time.monotonic() < deadline:
        time.sleep(0.02)

    doctored = [
        {**row, "cycles": int(row["cycles"] * 1.25)}
        for row in Query(store, fingerprint="fpA").export_rows()
    ]
    slow = tmp_path_factory.mktemp("wh") / "slow.json"
    slow.write_text(json.dumps(doctored), encoding="utf-8")
    assert warehouse_main(
        ["--warehouse", path, "ingest", str(slow), "--fingerprint", "fpB"]
    ) == 0
    store.close()
    return path


def test_missing_store_is_a_usage_error(tmp_path, capsys):
    assert warehouse_main(
        ["--warehouse", str(tmp_path / "none.sqlite3"), "query"]
    ) == 2
    assert "no warehouse at" in capsys.readouterr().err


def test_query_formats(warehouse, capsys):
    assert warehouse_main(["--warehouse", warehouse, "query"]) == 0
    text = capsys.readouterr().out
    assert WORKLOAD in text and "fpA" in text and "fpB" in text

    assert warehouse_main(
        ["--warehouse", warehouse, "query", "--fingerprint", "fpA",
         "--format", "json"]
    ) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == len(DESIGNS)
    assert {row["design"] for row in rows} == set(DESIGNS)

    assert warehouse_main(
        ["--warehouse", warehouse, "query", "--group-by", "design",
         "--format", "json"]
    ) == 0
    groups = json.loads(capsys.readouterr().out)
    assert {g["design"] for g in groups} == set(DESIGNS)
    assert all(g["points"] == 2 for g in groups)  # fpA + fpB each


def test_fingerprints_lists_both(warehouse, capsys):
    assert warehouse_main(["--warehouse", warehouse, "fingerprints"]) == 0
    out = capsys.readouterr().out
    assert "fpA" in out and "fpB" in out


def test_regressions_gate_exit_codes(warehouse, capsys):
    # Identical fingerprints: clean gate.
    assert warehouse_main(
        ["--warehouse", warehouse, "regressions",
         "--baseline", "fpA", "--candidate", "fpA"]
    ) == 0
    assert "no regressions" in capsys.readouterr().out
    # The doctored 1.25× fingerprint trips the default 2% threshold...
    assert warehouse_main(
        ["--warehouse", warehouse, "regressions",
         "--baseline", "fpA", "--candidate", "fpB"]
    ) == 1
    assert "regression(s)" in capsys.readouterr().out
    # ...but not a 50% one.
    assert warehouse_main(
        ["--warehouse", warehouse, "regressions", "--baseline", "fpA",
         "--candidate", "fpB", "--threshold", "0.5"]
    ) == 0
    capsys.readouterr()
    # Defaults resolve to (next-newest, newest) = (fpA, fpB): still gated.
    assert warehouse_main(["--warehouse", warehouse, "regressions"]) == 1
    capsys.readouterr()
    # An unknown fingerprint is a usage error, not a silent pass.
    assert warehouse_main(
        ["--warehouse", warehouse, "regressions",
         "--baseline", "ghost", "--candidate", "fpA"]
    ) == 2
    assert "error:" in capsys.readouterr().err


def test_diff_always_exits_zero(warehouse, capsys):
    assert warehouse_main(
        ["--warehouse", warehouse, "diff", "--baseline", "fpA",
         "--candidate", "fpB", "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert len(payload["deltas"]) == len(DESIGNS)
    assert payload["deltas"][0]["ratio"] == pytest.approx(1.25, abs=1e-3)


def test_export_matches_result_set_writer(warehouse, tmp_path, capsys):
    assert warehouse_main(
        ["--warehouse", warehouse, "export", "--fingerprint", "fpA"]
    ) == 0
    out = capsys.readouterr().out
    with WarehouseStore(warehouse) as store:
        expected_rows = Query(store, fingerprint="fpA").export_rows()
    assert out == rows_to_csv(expected_rows)
    assert out.splitlines()[0] == (
        "workload,design,config,btu_flush_interval,warmup_passes,"
        "cycles,instructions,ipc"
    )
    target = tmp_path / "rows.json"
    assert warehouse_main(
        ["--warehouse", warehouse, "export", "--fingerprint", "fpA",
         "--format", "json", "-o", str(target)]
    ) == 0
    capsys.readouterr()
    assert json.loads(target.read_text(encoding="utf-8")) == expected_rows


def test_view_errors_are_typed_exit_codes(warehouse, capsys):
    # figure7 needs designs this store lacks; the error is typed, not a crash.
    assert warehouse_main(
        ["--warehouse", warehouse, "view", "figure7",
         "--fingerprint", "fpA", "--workloads", WORKLOAD]
    ) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no stored result" in err


def test_bench_and_compact(warehouse, capsys):
    assert warehouse_main(["--warehouse", warehouse, "bench"]) == 0
    capsys.readouterr()
    assert warehouse_main(
        ["--warehouse", warehouse, "compact", "--keep", "2"]
    ) == 0
    assert "compacted" in capsys.readouterr().out


def test_state_dir_points_at_the_serve_store(tmp_path, capsys):
    state_dir = tmp_path / "state"
    store = WarehouseStore(str(state_dir))
    store.close()
    assert warehouse_main(["--state-dir", str(state_dir), "fingerprints"]) == 0
    capsys.readouterr()
