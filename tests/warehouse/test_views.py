"""Warehouse views: stored results re-render the paper's tables exactly.

The acceptance pin for the whole subsystem: a figure rendered from the
warehouse is byte-identical to the one the direct experiment run printed.
"""

import pytest

from repro.api import SimulationService
from repro.experiments import resolve_experiments
from repro.warehouse import (
    WarehouseContext,
    WarehouseError,
    WarehouseRow,
    WarehouseStore,
    attach_ingestor,
    render_view,
)
from repro.warehouse.views import view_workloads

WORKLOAD = "ChaCha20_ct"
FINGERPRINT = "fp-view"


@pytest.fixture(scope="module")
def rendered(tmp_path_factory):
    """Run figure7 live with the ingestor attached; keep both artifacts."""
    store = WarehouseStore(str(tmp_path_factory.mktemp("wh") / "wh.sqlite3"))
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    attach_ingestor(service, store, fingerprint=FINGERPRINT)
    spec = resolve_experiments(["figure7"])[0]
    ctx = service.context()
    direct = spec.format(spec.run(ctx))
    service.close()  # scheduler drained: every point event has been ingested
    import time

    deadline = time.monotonic() + 30.0
    while store.count() < len(ctx.results) and time.monotonic() < deadline:
        time.sleep(0.02)
    yield store, direct
    store.close()


def test_view_is_byte_identical_to_direct_run(rendered):
    store, direct = rendered
    assert render_view(store, "figure7") == direct
    # Pinning the fingerprint and workload axis explicitly changes nothing.
    assert (
        render_view(
            store, "figure7", fingerprint=FINGERPRINT, workloads=[WORKLOAD]
        )
        == direct
    )


def test_view_accepts_cli_workload_selectors(rendered):
    store, direct = rendered
    assert render_view(store, "figure7", workloads=WORKLOAD) == direct


def test_missing_points_fail_loudly(rendered):
    store, _ = rendered
    ctx = WarehouseContext(store, FINGERPRINT, [WORKLOAD])
    from repro.api import ScenarioMatrix

    with pytest.raises(WarehouseError, match="no stored result"):
        # figure7 never simulates SHA-256 here; the store cannot answer it.
        ctx.run(ScenarioMatrix(workloads=("SHA-256",), designs=("cassandra",)))


def test_unknown_fingerprint_fails_loudly(rendered):
    store, _ = rendered
    with pytest.raises(WarehouseError, match="no stored result"):
        render_view(store, "figure7", fingerprint="ghost", workloads=[WORKLOAD])


def test_non_viewable_experiment_is_rejected(rendered):
    store, _ = rendered
    with pytest.raises(WarehouseError, match="not viewable"):
        render_view(store, "table1")


def test_empty_store_is_rejected(tmp_path):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    with pytest.raises(WarehouseError, match="empty"):
        render_view(store, "figure7")
    store.close()


def test_view_workloads_reproduces_quick_order(tmp_path):
    """A stored quick run must render in quick-preset order, not registry
    order — row order is part of byte-identity."""
    from repro.pipeline.pipeline import QUICK_WORKLOADS
    from repro.crypto.workloads import workload_names

    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    for name in sorted(QUICK_WORKLOADS):  # insert in a scrambled order
        store.upsert(
            WarehouseRow(
                point_key=f'["{name}","cassandra","d",false,0,1]',
                fingerprint="fp",
                workload=name,
                design="cassandra",
                config_digest="d",
                btu_flush_interval=None,
                warmup_passes=1,
                cycles=100,
                recorded=1.0,
            )
        )
    assert view_workloads(store, "fp") == list(QUICK_WORKLOADS)
    registry_order = [n for n in workload_names() if n in set(QUICK_WORKLOADS)]
    assert list(QUICK_WORKLOADS) != registry_order  # the pin is meaningful
    store.close()
