"""Warehouse queries: filters, ResultSet-identical aggregates, regressions."""

import pytest

from repro.api import ScenarioMatrix, SimulationService
from repro.warehouse import (
    Query,
    WarehouseError,
    WarehouseRow,
    WarehouseStore,
    attach_ingestor,
    compare_fingerprints,
    resolve_fingerprints,
)

WORKLOAD = "ChaCha20_ct"
DESIGNS = ("unsafe-baseline", "cassandra", "spt")


@pytest.fixture(scope="module")
def baseline():
    """(live ResultSet, its rows) — the warehouse side built per-test."""
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    results = service.run(ScenarioMatrix(designs=DESIGNS))
    service.close()
    return results


@pytest.fixture(scope="module")
def store(tmp_path_factory, baseline):
    """A store holding the live run under fpA and a 1.25× copy under fpB."""
    store = WarehouseStore(str(tmp_path_factory.mktemp("wh") / "wh.sqlite3"))
    recorded = 100.0
    for request, result in baseline:
        row = WarehouseRow.from_entry(
            request, result, fingerprint="fpA", recorded=recorded
        )
        store.upsert(row)
        from dataclasses import replace

        store.upsert(
            replace(
                row,
                fingerprint="fpB",
                cycles=int(row.cycles * 1.25),
                recorded=recorded + 10.0,
            )
        )
    yield store
    store.close()


def test_filters_and_rows_are_stable_ordered(store, baseline):
    query = Query(store, fingerprint="fpA")
    assert len(query.rows()) == len(DESIGNS)
    assert [r.design for r in query.rows()] == sorted(DESIGNS)
    one = query.where(design="cassandra")
    assert [r.design for r in one.rows()] == ["cassandra"]
    assert one.where(workload="nope").rows() == []
    with pytest.raises(KeyError, match="unknown query axis"):
        query.where(bogus=1)


def test_group_by_partitions_by_axis(store):
    groups = Query(store, fingerprint="fpA").group_by("design")
    assert set(groups) == set(DESIGNS)
    for design, group in groups.items():
        assert [r.design for r in group.rows()] == [design]
    with pytest.raises(KeyError):
        Query(store).group_by("bogus")


def test_aggregates_match_result_set_semantics(store, baseline):
    query = Query(store, fingerprint="fpA")
    assert query.cycles(design="cassandra") == baseline.cycles(design="cassandra")
    assert query.geomean_cycles() == baseline.geomean_cycles()
    assert query.normalized_time("cassandra") == baseline.normalized_time("cassandra")
    assert query.geomean_normalized_time("spt") == pytest.approx(
        baseline.geomean_normalized_time("spt")
    )


def test_cycles_requires_exactly_one_row(store):
    query = Query(store, fingerprint="fpA")
    with pytest.raises(WarehouseError, match="exactly one row"):
        query.cycles()  # three designs match
    with pytest.raises(WarehouseError, match="exactly one row"):
        query.cycles(design="nope")


def test_result_set_round_trips_full_fidelity_rows(store, baseline):
    rebuilt = Query(store, fingerprint="fpA").result_set()
    assert rebuilt.export_rows() == baseline.export_rows()
    assert rebuilt.to_wire() == ResultSetSorted(baseline).to_wire()


def ResultSetSorted(results):
    """The baseline re-ordered the way the store returns it (sort_key)."""
    from repro.api.results import ResultSet

    entries = sorted(results, key=lambda entry: entry[0].sort_key())
    return ResultSet(entries)


# ---------------------------------------------------------------------- #
# Cross-fingerprint comparison
# ---------------------------------------------------------------------- #
def test_identical_fingerprints_report_ok(store):
    report = compare_fingerprints(store, "fpA", "fpA")
    assert report.ok
    assert len(report.deltas) == len(DESIGNS)
    assert report.missing == report.new == 0
    assert all(d.ratio == 1.0 for d in report.deltas)


def test_slowdown_is_flagged_at_threshold(store):
    report = compare_fingerprints(store, "fpA", "fpB", threshold=0.02)
    assert not report.ok
    assert len(report.regressions) == len(DESIGNS)
    assert all(d.ratio == pytest.approx(1.25, abs=1e-3) for d in report.deltas)
    payload = report.as_dict()
    assert payload["ok"] is False
    assert payload["compared"] == len(DESIGNS)
    # A generous threshold swallows the same slowdown.
    assert compare_fingerprints(store, "fpA", "fpB", threshold=0.5).ok
    # The reverse direction is an improvement, not a regression.
    reverse = compare_fingerprints(store, "fpB", "fpA", threshold=0.02)
    assert reverse.ok
    assert len(reverse.improvements) == len(DESIGNS)


def test_disjoint_or_empty_fingerprints_fail_loudly(store, baseline):
    with pytest.raises(WarehouseError, match="has no rows"):
        compare_fingerprints(store, "fpA", "ghost")
    with pytest.raises(WarehouseError, match="has no rows"):
        compare_fingerprints(store, "ghost", "fpA")
    with pytest.raises(ValueError):
        compare_fingerprints(store, "fpA", "fpB", threshold=-0.1)


def test_partial_overlap_counts_missing_and_new(tmp_path, baseline):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    entries = list(baseline)
    for request, result in entries:
        store.upsert(
            WarehouseRow.from_entry(request, result, fingerprint="old", recorded=1.0)
        )
    for request, result in entries[1:]:  # candidate misses the first point
        store.upsert(
            WarehouseRow.from_entry(request, result, fingerprint="new", recorded=2.0)
        )
    report = compare_fingerprints(store, "old", "new")
    assert report.ok
    assert len(report.deltas) == len(entries) - 1
    assert report.missing == 1
    assert report.new == 0
    store.close()


def test_resolve_fingerprints_picks_newest_pair(store):
    # fpB was recorded later, so it is the default candidate.
    assert resolve_fingerprints(store) == ("fpA", "fpB")
    assert resolve_fingerprints(store, candidate="fpA") == ("fpB", "fpA")
    assert resolve_fingerprints(store, baseline="fpA", candidate="fpB") == (
        "fpA",
        "fpB",
    )


def test_resolve_fingerprints_needs_two(tmp_path, baseline):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    with pytest.raises(WarehouseError, match="no fingerprints"):
        resolve_fingerprints(store)
    request, result = next(iter(baseline))
    store.upsert(WarehouseRow.from_entry(request, result, fingerprint="solo", recorded=1.0))
    with pytest.raises(WarehouseError, match="distinct from candidate"):
        resolve_fingerprints(store)
    store.close()
