"""WarehouseStore semantics: idempotent upserts, migrations, compaction.

The store is the durability contract of the warehouse: the same point
under the same fingerprint is ONE row no matter how many times ingest
replays it, a lossy re-ingest never erases full-fidelity JSON, an old
store upgrades in place, and every write passes the ``warehouse-write``
fault site so the chaos suite can kill mid-ingest deterministically.
"""

import json
import sqlite3

import pytest

from repro.api import ScenarioMatrix, SimulationService
from repro.testing import Fault, FaultPlan, InjectedFault, activate
from repro.warehouse import WarehouseRow, WarehouseStore, point_key_of
from repro.warehouse.store import _MIGRATIONS, SCHEMA_VERSION, WAREHOUSE_NAME

WORKLOAD = "ChaCha20_ct"


@pytest.fixture(scope="module")
def entries():
    """A handful of real (request, result) pairs to store."""
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    results = service.run(
        ScenarioMatrix(designs=("unsafe-baseline", "cassandra", "spt"))
    )
    service.close()
    return list(results)


def make_row(entry, fingerprint="fp1", **overrides):
    request, result = entry
    row = WarehouseRow.from_entry(
        request, result, fingerprint=fingerprint, recorded=100.0
    )
    if overrides:
        from dataclasses import replace

        row = replace(row, **overrides)
    return row


def test_upsert_same_point_same_fingerprint_is_one_row(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    row = make_row(entries[0])
    store.upsert(row)
    store.upsert(make_row(entries[0]))  # replayed ingest
    assert store.count() == 1
    # A different fingerprint for the same point is a second row...
    store.upsert(make_row(entries[0], fingerprint="fp2"))
    # ...as is a different point under the first fingerprint.
    store.upsert(make_row(entries[1]))
    assert store.count() == 3
    assert store.count(fingerprint="fp1") == 2
    store.close()


def test_lossy_replay_never_erases_full_fidelity(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    full = make_row(entries[0])
    store.upsert(full)
    lossy = make_row(entries[0], request_json=None, result_json=None)
    store.upsert(lossy)
    (stored,) = store.select(fingerprint="fp1")
    assert stored.full_fidelity
    assert stored.result_json == full.result_json
    request, result = stored.entry()
    assert request == entries[0][0]
    assert result.cycles == entries[0][1].cycles
    store.close()


def test_lossy_row_refuses_entry_reconstruction(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    store.upsert(make_row(entries[0], request_json=None, result_json=None))
    (stored,) = store.select()
    assert not stored.full_fidelity
    with pytest.raises(ValueError, match="full-fidelity"):
        stored.entry()
    store.close()


def test_select_orders_by_sort_key_not_insertion(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    for entry in reversed(entries):  # insert backwards
        store.upsert(make_row(entry))
    rows = store.select(fingerprint="fp1")
    expected = sorted(point_key_of(req) for req, _ in entries)
    assert [json.dumps(list(r.sort_tuple()), separators=(",", ":"))
            for r in rows] == expected
    store.close()


def test_directory_path_places_store_inside(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "state"))
    assert store.path.endswith(WAREHOUSE_NAME)
    store.upsert(make_row(entries[0]))
    store.close()
    reopened = WarehouseStore(str(tmp_path / "state"))
    assert reopened.count() == 1
    reopened.close()


def test_wal_mode_is_active(tmp_path):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"
    store.close()


def test_old_store_migrates_in_place(tmp_path):
    """A v1 file (results only, no bench table) upgrades on open."""
    path = str(tmp_path / "wh.sqlite3")
    conn = sqlite3.connect(path)
    conn.executescript(_MIGRATIONS[0])
    conn.execute("PRAGMA user_version=1")
    conn.commit()
    assert conn.execute(
        "SELECT COUNT(*) FROM sqlite_master WHERE name='bench'"
    ).fetchone()[0] == 0
    conn.close()

    store = WarehouseStore(path)
    assert store.schema_version == SCHEMA_VERSION
    store.record_bench({"schema_version": 6, "speedup": 5.7}, "2026-01-01T00:00:00Z")
    assert store.bench_history()[0]["speedup"] == 5.7
    store.close()


def test_bench_entries_dedupe_on_timestamp_and_schema(tmp_path):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    store.record_bench({"schema_version": 6, "speedup": 1.0}, "2026-01-01T00:00:00Z")
    store.record_bench({"schema_version": 6, "speedup": 2.0}, "2026-01-01T00:00:00Z")
    store.record_bench({"schema_version": 5, "speedup": 3.0}, "2026-01-01T00:00:00Z")
    history = store.bench_history()
    assert len(history) == 2
    assert {entry["speedup"] for entry in history} == {2.0, 3.0}
    store.close()


def test_compact_keeps_newest_fingerprints(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    for index, fp in enumerate(["old", "mid", "new"]):
        for entry in entries:
            row = make_row(entry, fingerprint=fp)
            from dataclasses import replace

            store.upsert(replace(row, recorded=100.0 + index))
    deleted = store.compact(keep=2)
    assert deleted == len(entries)
    kept = {info.fingerprint for info in store.fingerprints()}
    assert kept == {"mid", "new"}
    assert store.latest_fingerprints(1) == ["new"]
    with pytest.raises(ValueError):
        store.compact(keep=0)
    store.close()


def test_fingerprints_report_footprint(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    store.upsert(make_row(entries[0]))
    store.upsert(make_row(entries[1]))
    (info,) = store.fingerprints()
    assert info.fingerprint == "fp1"
    assert info.points == 2
    assert info.first_recorded == info.last_recorded == 100.0
    store.close()


def test_warehouse_write_fault_site_fires(tmp_path, entries):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    plan = FaultPlan.scripted(Fault("warehouse-write", 1, "crash"))
    with activate(plan) as active:
        store.upsert(make_row(entries[0]))  # visit 0: free
        with pytest.raises(InjectedFault):
            store.upsert(make_row(entries[1]))  # visit 1: fires pre-commit
        assert active.fired
    # The faulted write never committed; the first one survived.
    assert store.count() == 1
    store.upsert(make_row(entries[1]))  # replay after recovery
    assert store.count() == 2
    store.close()


def test_content_rows_ignore_run_metadata(tmp_path, entries):
    """Timestamps, job ids, and tags differ across a resume; science doesn't."""
    store_a = WarehouseStore(str(tmp_path / "a.sqlite3"))
    store_b = WarehouseStore(str(tmp_path / "b.sqlite3"))
    from dataclasses import replace

    for entry in entries:
        row = make_row(entry)
        store_a.upsert(replace(row, recorded=1.0, job_id="j-1", tags=("x",)))
        store_b.upsert(replace(row, recorded=2.0, job_id="j-2", tags=("resumed",)))
    assert store_a.content_rows() == store_b.content_rows()
    store_a.close()
    store_b.close()
