"""Warehouse ingest: the event-stream listener and the JSON backfill."""

import json
import time

import pytest

from repro.api import ScenarioMatrix, SimulationService
from repro.api.request import SimulationRequest
from repro.warehouse import (
    FINGERPRINT_ENV,
    Query,
    WarehouseError,
    WarehouseIngestor,
    WarehouseStore,
    attach_ingestor,
    default_fingerprint,
    ingest_file,
)
from repro.warehouse.store import SOURCE_BACKFILL, SOURCE_EVENT

WORKLOAD = "ChaCha20_ct"
MATRIX = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))


@pytest.fixture()
def service():
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    yield service
    service.close()


def wait_for_rows(store, expected, timeout=60.0):
    """Listeners run on the scheduler thread; results can unblock first."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if store.count() >= expected:
            return
        time.sleep(0.02)
    raise AssertionError(f"store never reached {expected} rows")


def test_listener_lands_every_point_with_run_metadata(tmp_path, service):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    ingestor = attach_ingestor(service, store, fingerprint="fp-live")
    handle = service.submit(MATRIX, tags=("tenant:acme", "smoke"))
    answer = handle.result()
    wait_for_rows(store, 2)

    rows = store.select(fingerprint="fp-live")
    assert len(rows) == 2
    for row in rows:
        assert row.full_fidelity
        assert row.source == SOURCE_EVENT
        assert row.job_id == handle.job_id
        assert row.tags == ("tenant:acme", "smoke")
        assert row.tenant == "acme"
        assert row.engine_tier
    assert ingestor.ingested == 2
    # The stored rows rebuild the exact ResultSet the job returned.
    rebuilt = Query(store, fingerprint="fp-live").result_set()
    assert rebuilt.export_rows() == answer.export_rows()
    store.close()


def test_replayed_points_are_idempotent(tmp_path, service):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    ingestor = attach_ingestor(service, store, fingerprint="fp-live")
    service.run(MATRIX)
    wait_for_rows(store, 2)
    before = store.content_rows()
    # The same matrix again: every point replays as a cache-hit event.
    service.run(MATRIX)
    deadline = time.monotonic() + 60.0
    while ingestor.ingested < 4 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert ingestor.ingested == 4
    assert store.count() == 2
    assert store.content_rows() == before
    store.close()


def test_untagged_job_has_no_tenant(tmp_path, service):
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    attach_ingestor(service, store, fingerprint="fp-live")
    service.submit(SimulationRequest(workload=WORKLOAD, design="spt")).result()
    wait_for_rows(store, 1)
    (row,) = store.select()
    assert row.tags == ()
    assert row.tenant is None
    store.close()


def test_fingerprint_env_overrides_tree_fingerprint(tmp_path, service, monkeypatch):
    monkeypatch.setenv(FINGERPRINT_ENV, "env-fp")
    assert default_fingerprint() == "env-fp"
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    ingestor = WarehouseIngestor(store, service)
    assert ingestor.fingerprint == "env-fp"
    # An explicit fingerprint still wins over the environment.
    assert WarehouseIngestor(store, service, fingerprint="x").fingerprint == "x"
    monkeypatch.delenv(FINGERPRINT_ENV)
    assert default_fingerprint() not in ("env-fp", "")
    store.close()


# ---------------------------------------------------------------------- #
# Backfill
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def answered():
    """One live ResultSet to back the file-format fixtures."""
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    results = service.run(MATRIX)
    service.close()
    return results


def test_backfill_wire_dump_is_full_fidelity(tmp_path, answered):
    path = tmp_path / "results.wire.json"
    path.write_text(answered.to_wire(), encoding="utf-8")
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    kind, count = ingest_file(store, str(path), fingerprint="fp-bf")
    assert (kind, count) == ("resultset-wire", 2)
    rows = store.select(fingerprint="fp-bf")
    assert all(row.full_fidelity and row.source == SOURCE_BACKFILL for row in rows)
    rebuilt = Query(store, fingerprint="fp-bf").result_set()
    assert rebuilt.export_rows() == answered.export_rows()
    store.close()


def test_backfill_export_rows_is_lossy_but_queryable(tmp_path, answered):
    path = tmp_path / "rows.json"
    path.write_text(answered.to_json(), encoding="utf-8")
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    kind, count = ingest_file(
        store, str(path), fingerprint="fp-bf", tags=("imported",), recorded=12345.0
    )
    assert (kind, count) == ("result-rows", 2)
    rows = store.select(fingerprint="fp-bf")
    assert all(not row.full_fidelity for row in rows)
    assert all(row.recorded == 12345.0 and row.tags == ("imported",) for row in rows)
    query = Query(store, fingerprint="fp-bf")
    assert query.export_rows() == answered.export_rows()
    with pytest.raises(WarehouseError, match="full-fidelity"):
        query.result_set()
    store.close()


def test_full_fidelity_reingest_upgrades_lossy_rows(tmp_path, answered):
    lossy = tmp_path / "rows.json"
    lossy.write_text(answered.to_json(), encoding="utf-8")
    wire = tmp_path / "results.wire.json"
    wire.write_text(answered.to_wire(), encoding="utf-8")
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    ingest_file(store, str(lossy), fingerprint="fp")
    ingest_file(store, str(wire), fingerprint="fp")
    assert store.count() == 2
    assert all(row.full_fidelity for row in store.select())
    store.close()


def test_backfill_bench_engine_and_trajectory(tmp_path):
    engine = tmp_path / "BENCH_engine.json"
    engine.write_text(
        json.dumps({"schema_version": 6, "kernel_speedup": 12.5}), encoding="utf-8"
    )
    trajectory = tmp_path / "BENCH_trajectory.json"
    trajectory.write_text(
        json.dumps(
            [
                {"schema_version": 5, "timestamp": "2026-01-01T00:00:00Z"},
                {"schema_version": 6, "timestamp": "2026-02-01T00:00:00Z"},
            ]
        ),
        encoding="utf-8",
    )
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    assert ingest_file(store, str(engine), recorded=0.0) == ("bench-engine", 1)
    assert ingest_file(store, str(trajectory)) == ("bench-trajectory", 2)
    history = store.bench_history()
    assert len(history) == 3
    assert history[0]["timestamp"] == "1970-01-01T00:00:00Z"  # recorded=0.0
    assert [entry["schema_version"] for entry in history[1:]] == [5, 6]
    store.close()


def test_backfill_rejects_unknown_shapes(tmp_path):
    path = tmp_path / "mystery.json"
    path.write_text(json.dumps({"nope": 1}), encoding="utf-8")
    store = WarehouseStore(str(tmp_path / "wh.sqlite3"))
    with pytest.raises(ValueError, match="unrecognized payload shape"):
        ingest_file(store, str(path))
    store.close()
