"""Integration tests: every ISA kernel verifies against its ground truth.

These tests exercise the complete pipeline used by the workload registry:
build a kernel program, run it on the sequential executor, and compare the
architectural output against the reference implementation (full-strength
algorithms) or the documented reduced model.
"""

import pytest

from repro.analysis.tracegen import generate_trace_bundle
from repro.crypto.synthetic import build_synthetic, mix_labels
from repro.crypto.workloads import get_workload, iter_workloads, suites, workload_names

#: Kernels light enough to verify on every test run.
FAST_WORKLOADS = [
    "ChaCha20_ct",
    "SHA-256",
    "Poly1305_ctmul",
    "EC_c25519_i31",
    "ECDSA_i31",
    "ModPow_i31",
    "RSA_i62",
    "mul",
    "DES_ct",
    "sphincs-sha2-128s",
    "sphincs-shake-128s",
    "sphincs-haraka-128s",
]

#: Heavier kernels, still run as part of the default suite (a few seconds).
HEAVY_WORKLOADS = [
    "AES_CTR",
    "CBC_ct",
    "MultiHash",
    "TLS PRF",
    "SHAKE",
    "chacha20",
    "curve25519",
    "sha256",
    "kyber512",
]


def test_registry_contains_all_paper_workloads():
    names = set(workload_names())
    assert len(names) == 22
    assert {"kyber512", "kyber768", "sphincs-shake-128s"} <= names
    assert {"AES_CTR", "TLS PRF", "RSA_i62", "mul"} <= names
    assert {"chacha20", "curve25519", "sha256"} <= names
    assert set(workload_names("openssl")) == {"chacha20", "curve25519", "sha256"}


def test_suites_cover_all_workloads():
    all_names = set()
    for suite in suites():
        all_names.update(suite.names())
    assert all_names == set(workload_names())


@pytest.mark.parametrize("name", FAST_WORKLOADS)
def test_fast_kernel_matches_reference(name):
    kernel = get_workload(name).kernel()
    result = kernel.run(0)
    assert kernel.verify(result), f"{name} kernel output does not match its model"
    assert result.instruction_count > 100
    # Kernels must contain crypto-tagged branches for the analysis to study.
    assert kernel.program.crypto_branches()


@pytest.mark.parametrize("name", HEAVY_WORKLOADS)
def test_heavy_kernel_matches_reference(name):
    kernel = get_workload(name).kernel()
    assert kernel.check(), f"{name} kernel output does not match its model"


def test_kernels_have_two_distinct_inputs():
    for workload in iter_workloads():
        kernel = workload.kernel()
        assert len(kernel.inputs) >= 2
        assert kernel.inputs[0] != kernel.inputs[1]


@pytest.mark.parametrize("name", ["ChaCha20_ct", "SHA-256", "DES_ct"])
def test_kernel_control_flow_is_input_independent(name):
    """Constant-time kernels: the branch outcome sequences must not change
    with the confidential input (the property Insight 1 relies on)."""
    kernel = get_workload(name).kernel()
    result_a = kernel.run(0)
    result_b = kernel.run(1)
    assert result_a.branch_outcomes == result_b.branch_outcomes


def test_kyber_has_input_dependent_rejection_branch():
    """The paper singles out Kyber's rejection sampling as input dependent."""
    kernel = get_workload("kyber512").kernel()
    bundle = generate_trace_bundle(kernel.program, kernel.inputs)
    assert bundle.input_dependent_branches(), "rejection sampling branch should be input dependent"


@pytest.mark.parametrize("primitive", ["chacha20", "curve25519"])
def test_synthetic_benchmarks_build_and_run(primitive):
    kernel = build_synthetic(primitive, "50s/50c")
    result = kernel.run(0)
    assert result.instruction_count > 0
    assert kernel.program.crypto_regions


def test_synthetic_secret_stack_marking():
    chacha = build_synthetic("chacha20", "25s/75c")
    curve = build_synthetic("curve25519", "25s/75c")
    # The curve25519 variant spills secrets to a secret scratch region, the
    # chacha20 variant does not (Figure 8's public- vs secret-stack split).
    assert len(curve.program.secret_addresses) > len(chacha.program.secret_addresses)


def test_synthetic_mix_labels():
    assert mix_labels() == ["90s/10c", "75s/25c", "50s/50c", "25s/75c", "all-crypto"]
    with pytest.raises(KeyError):
        build_synthetic("chacha20", "10s/90c")
    with pytest.raises(ValueError):
        build_synthetic("aes", "50s/50c")
