"""Reference-primitive tests against published vectors and internal consistency."""

import hashlib
import hmac as hmac_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primitives import (
    aes,
    chacha20,
    curve25519,
    des,
    ecdsa,
    keccak,
    kyber,
    modmath,
    poly1305,
    sha256,
    sphincs,
    tls_prf,
)


# --------------------------------------------------------------------------- #
# ChaCha20 / Poly1305 (RFC 8439)
# --------------------------------------------------------------------------- #
RFC_KEY = bytes(range(32))
RFC_NONCE = bytes([0, 0, 0, 0, 0, 0, 0, 0x4A, 0, 0, 0, 0])
RFC_PLAINTEXT = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


def test_chacha20_block_rfc_vector():
    block = chacha20.chacha20_block(RFC_KEY, 1, RFC_NONCE)
    assert block.hex().startswith("224f51f3401bd9e12fde276fb8631ded8c131f823d2c06")


def test_chacha20_encrypt_rfc_vector():
    ciphertext = chacha20.chacha20_encrypt(RFC_KEY, 1, RFC_NONCE, RFC_PLAINTEXT)
    assert ciphertext[:16].hex() == "6e2e359a2568f98041ba0728dd0d6981"
    # Decryption is the same operation.
    assert chacha20.chacha20_encrypt(RFC_KEY, 1, RFC_NONCE, ciphertext) == RFC_PLAINTEXT


def test_chacha20_rejects_bad_key_and_nonce():
    with pytest.raises(ValueError):
        chacha20.chacha20_block(b"short", 0, RFC_NONCE)
    with pytest.raises(ValueError):
        chacha20.chacha20_block(RFC_KEY, 0, b"short")


def test_poly1305_rfc_vector():
    key = bytes.fromhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
    tag = poly1305.poly1305_mac(b"Cryptographic Forum Research Group", key)
    assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"
    assert poly1305.poly1305_verify(b"Cryptographic Forum Research Group", key, tag)
    assert not poly1305.poly1305_verify(b"Cryptographic Forum Research Groups", key, tag)


# --------------------------------------------------------------------------- #
# SHA-256 / SHA-3 / SHAKE
# --------------------------------------------------------------------------- #
def test_sha256_vectors():
    assert sha256.sha256_hex(b"abc") == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )
    assert sha256.sha256_hex(b"") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


@settings(deadline=None, max_examples=30)
@given(st.binary(min_size=0, max_size=300))
def test_sha256_matches_hashlib(data):
    assert sha256.sha256(data) == hashlib.sha256(data).digest()


@settings(deadline=None, max_examples=10)
@given(st.binary(min_size=0, max_size=300))
def test_sha3_and_shake_match_hashlib(data):
    assert keccak.sha3_256(data) == hashlib.sha3_256(data).digest()
    assert keccak.shake128(data, 32) == hashlib.shake_128(data).digest(32)
    assert keccak.shake256(data, 64) == hashlib.shake_256(data).digest(64)


# --------------------------------------------------------------------------- #
# AES / DES
# --------------------------------------------------------------------------- #
def test_aes_fips_vector():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert aes.encrypt_block(key, plaintext).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_aes_ctr_and_cbc_modes():
    key = bytes(range(16))
    nonce = bytes(range(12))
    iv = bytes(range(16))
    plaintext = bytes(range(48))
    ctr = aes.ctr_encrypt(key, nonce, plaintext)
    assert len(ctr) == len(plaintext)
    assert aes.ctr_encrypt(key, nonce, ctr) == plaintext
    cbc = aes.cbc_encrypt(key, iv, plaintext)
    assert len(cbc) == len(plaintext)
    with pytest.raises(ValueError):
        aes.cbc_encrypt(key, iv, plaintext[:10])


def test_des_known_vector_and_roundtrip():
    key = 0x133457799BBCDFF1
    assert des.encrypt_block(key, 0x0123456789ABCDEF) == 0x85E813540F0AB405
    assert des.decrypt_block(key, des.encrypt_block(key, 0xDEADBEEF)) == 0xDEADBEEF


# --------------------------------------------------------------------------- #
# X25519 / modular arithmetic / ECDSA
# --------------------------------------------------------------------------- #
def test_x25519_rfc7748_vector():
    scalar = bytes.fromhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
    u = bytes.fromhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
    expected = "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    assert curve25519.x25519(scalar, u).hex() == expected


def test_x25519_base_point_diffie_hellman():
    alice = bytes([1] * 32)
    bob = bytes([2] * 32)
    alice_pub = curve25519.x25519_base(alice)
    bob_pub = curve25519.x25519_base(bob)
    assert curve25519.x25519(alice, bob_pub) == curve25519.x25519(bob, alice_pub)


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=2, max_value=2**31 - 2),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=3, max_value=2**31 - 1),
)
def test_modpow_matches_builtin(base, exponent, modulus):
    bits = max(exponent.bit_length(), 1)
    assert modmath.modpow_ct(base, exponent, modulus, bits) == pow(base, exponent, modulus)


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=0, max_value=2**96 - 1), st.integers(min_value=0, max_value=2**96 - 1))
def test_bignum_mul_property(a, b):
    limb_bits = 16
    a_limbs = modmath.limbs_from_int(a, limb_bits, 6)
    b_limbs = modmath.limbs_from_int(b, limb_bits, 6)
    product = modmath.bignum_mul(a_limbs, b_limbs, limb_bits)
    assert modmath.int_from_limbs(product, limb_bits) == a * b


def test_toy_rsa_roundtrip():
    public, private = modmath.rsa_keygen_toy()
    ciphertext = modmath.rsa_encrypt(1234, public)
    assert modmath.rsa_decrypt(ciphertext, private) == 1234


def test_ecdsa_sign_verify_and_reject():
    private = 31337
    public = ecdsa.derive_public_key(private)
    assert ecdsa.is_on_curve(public)
    signature = ecdsa.sign(private, 0xABCDEF, nonce=4242)
    assert ecdsa.verify(public, 0xABCDEF, signature)
    assert not ecdsa.verify(public, 0xABCDEE, signature)
    other_public = ecdsa.derive_public_key(private + 1)
    assert not ecdsa.verify(other_public, 0xABCDEF, signature)


def test_ecdsa_generator_has_prime_order():
    assert ecdsa.scalar_mult(ecdsa.GENERATOR_ORDER, ecdsa.GENERATOR, bits=17) is None


# --------------------------------------------------------------------------- #
# HMAC / TLS PRF
# --------------------------------------------------------------------------- #
@settings(deadline=None, max_examples=20)
@given(st.binary(max_size=100), st.binary(max_size=200))
def test_hmac_matches_stdlib(key, message):
    expected = hmac_module.new(key, message, hashlib.sha256).digest()
    assert tls_prf.hmac_sha256(key, message) == expected


def test_tls12_prf_length_and_determinism():
    out1 = tls_prf.tls12_prf(b"secret", b"label", b"seed", 80)
    out2 = tls_prf.tls12_prf(b"secret", b"label", b"seed", 80)
    assert out1 == out2 and len(out1) == 80
    assert tls_prf.tls12_prf(b"secret2", b"label", b"seed", 80) != out1


def test_multihash_changes_with_input():
    assert tls_prf.multihash(b"a" * 64) != tls_prf.multihash(b"b" * 64)


# --------------------------------------------------------------------------- #
# Kyber / SPHINCS (reduced parameters)
# --------------------------------------------------------------------------- #
def test_kyber_roundtrip_both_parameter_sets():
    bits = [(i * 7 + 1) % 2 for i in range(64)]
    for params in (kyber.KYBER512, kyber.KYBER768):
        keypair = kyber.keygen(b"seed" * 8, params)
        ciphertext = kyber.encrypt(keypair, bits, b"coin" * 8)
        assert kyber.decrypt(keypair, ciphertext) == bits


def test_kyber_rejection_sampling_bounds():
    stream = keccak.shake128(b"seed", 3 * 64 + 96)
    coefficients, consumed = kyber.rejection_sample(stream, 64)
    assert len(coefficients) == 64
    assert all(0 <= c < kyber.Q for c in coefficients)
    assert consumed <= len(stream)


def test_kyber_rejection_sampling_exhaustion():
    with pytest.raises(ValueError):
        kyber.rejection_sample(b"\x00\x01", 10)


@pytest.mark.parametrize("params", [sphincs.SPHINCS_SHA2, sphincs.SPHINCS_SHAKE, sphincs.SPHINCS_HARAKA])
def test_sphincs_sign_verify(params):
    keypair = sphincs.keygen(b"0123456789abcdef", params)
    signature = sphincs.sign(b"message", keypair, leaf_index=1)
    assert sphincs.verify(b"message", signature, keypair.root, params)
    assert not sphincs.verify(b"messagf", signature, keypair.root, params)


def test_sphincs_wots_chain_composition():
    params = sphincs.SPHINCS_SHA2
    start = sphincs.chain(b"\x01" * sphincs.N, 0, 3, params)
    full = sphincs.chain(b"\x01" * sphincs.N, 0, 7, params)
    assert sphincs.chain(start, 3, 4, params) == full
