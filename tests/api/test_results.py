"""ResultSet: query, group-by, normalization, geomeans, export."""

import json

import pytest

from repro.api import ResultSet, SimulationRequest, WorkloadRef
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.core import SimulationResult
from repro.uarch.stats import PipelineStats

SMALL_CORE = CoreConfig(rob_size=64)


def fake_entry(workload, design, cycles, config=GOLDEN_COVE_LIKE, flush=None):
    request = SimulationRequest(
        workload=WorkloadRef.registry(workload),
        design=design,
        config=config,
        btu_flush_interval=flush,
    )
    stats = PipelineStats()
    stats.cycles = cycles
    stats.instructions = 1000
    result = SimulationResult(
        program_name=workload, policy_name=design, stats=stats, config=config
    )
    return request, result


@pytest.fixture()
def results():
    return ResultSet([
        fake_entry("A", "unsafe-baseline", 1000),
        fake_entry("A", "cassandra", 900),
        fake_entry("A", "cassandra", 950, flush=2000),
        fake_entry("B", "unsafe-baseline", 2000),
        fake_entry("B", "cassandra", 1600),
        fake_entry("B", "unsafe-baseline", 2400, config=SMALL_CORE),
    ])


def test_where_and_cycles(results):
    assert len(results.where(workload="A")) == 3
    assert len(results.where(design="cassandra")) == 3
    assert results.cycles(workload="A", design="cassandra", btu_flush_interval=None) == 900
    assert results.cycles(workload="A", design="cassandra", btu_flush_interval=2000) == 950
    # config filters compare by identity, so an equal re-built config matches.
    assert results.cycles(workload="B", config=CoreConfig(rob_size=64)) == 2400


def test_one_requires_uniqueness(results):
    with pytest.raises(LookupError, match="got 2"):
        results.one(workload="A", design="cassandra")
    with pytest.raises(LookupError, match="got 0"):
        results.one(workload="C")


def test_get_exact_request(results):
    request = results.requests[1]
    assert results.get(request).cycles == 900
    missing = SimulationRequest(workload="Z", design="spt")
    with pytest.raises(KeyError):
        results.get(missing)


def test_group_by_workload_and_design(results):
    groups = results.group_by("workload")
    assert list(groups) == ["A", "B"]
    assert len(groups["A"]) == 3
    designs = results.group_by("design")
    assert set(designs) == {"unsafe-baseline", "cassandra"}
    with pytest.raises(KeyError, match="unknown axis"):
        results.group_by("flavor")


def test_normalized_time_and_geomeans(results):
    default = results.where(config=GOLDEN_COVE_LIKE, btu_flush_interval=None)
    assert default.normalized_time("cassandra", workload="A") == pytest.approx(0.9)
    assert default.normalized_time("cassandra", workload="B") == pytest.approx(0.8)
    geo = default.geomean_normalized_time("cassandra")
    assert geo == pytest.approx((0.9 * 0.8) ** 0.5)
    assert default.geomean_cycles(design="unsafe-baseline") == pytest.approx(
        (1000 * 2000) ** 0.5
    )


def test_merged_keeps_first_occurrence(results):
    request, _ = fake_entry("A", "cassandra", 999)  # duplicate of an existing request
    other = ResultSet([fake_entry("A", "cassandra", 999), fake_entry("C", "spt", 10)])
    merged = results.merged(other)
    assert len(merged) == len(results) + 1
    assert merged.cycles(workload="A", design="cassandra", btu_flush_interval=None) == 900
    assert merged.cycles(workload="C") == 10


def test_export_rows_and_json(results):
    rows = results.export_rows()
    assert len(rows) == 6
    # Rows are sorted on the request key (workload, design, config digest,
    # flush, warm-up) — not insertion order — so A/cassandra leads.
    assert rows[0] == {
        "workload": "A",
        "design": "cassandra",
        "config": GOLDEN_COVE_LIKE.digest(),
        "btu_flush_interval": None,
        "warmup_passes": 1,
        "cycles": 900,
        "instructions": 1000,
        "ipc": 1.1111,
    }
    parsed = json.loads(results.to_json())
    assert parsed == rows


def test_export_ordering_is_insertion_independent(results):
    """The same entries in any insertion order export identically."""
    shuffled = ResultSet(list(reversed(list(results))))
    assert shuffled.export_rows() == results.export_rows()
    assert shuffled.to_json() == results.to_json()
    # The flush-disabled point sorts before the flushed one.
    flushes = [
        row["btu_flush_interval"]
        for row in results.export_rows()
        if row["workload"] == "A" and row["design"] == "cassandra"
    ]
    assert flushes == [None, 2000]


def test_wire_round_trip(results):
    """to_wire/from_wire is lossless: order, requests, and full stats."""
    clone = ResultSet.from_wire(results.to_wire())
    assert clone.requests == results.requests  # entry order preserved
    for (request, ours), (_, theirs) in zip(results, clone):
        assert ours.stats.as_dict() == theirs.stats.as_dict(), request
        assert ours.policy_name == theirs.policy_name
        assert ours.program_name == theirs.program_name
        assert ours.config.identity() == theirs.config.identity()
    # Rehydrated sets answer queries exactly like the original.
    assert clone.cycles(workload="A", design="cassandra", btu_flush_interval=None) == 900
    assert clone.to_json() == results.to_json()
    with pytest.raises(ValueError, match="wire format"):
        ResultSet.from_wire(json.dumps({"version": 999, "entries": []}))


def test_empty_set_exports_cleanly():
    empty = ResultSet()
    assert not empty
    assert empty.export_rows() == []
    assert empty.to_json() == "[]"
    # CSV keeps the header even with no rows, so downstream parsers
    # always see the schema.
    assert empty.export_csv() == (
        "workload,design,config,btu_flush_interval,warmup_passes,"
        "cycles,instructions,ipc\n"
    )
    assert empty.group_by("workload") == {}
    assert empty.where(design="cassandra").export_rows() == []


def test_export_csv_matches_rows(results):
    from repro.api.results import rows_to_csv

    text = results.export_csv()
    lines = text.splitlines()
    assert len(lines) == len(results) + 1
    assert text == rows_to_csv(results.export_rows())
    # None cells (flush disabled) are empty fields, not the string "None".
    assert ",None," not in text
    first = lines[1].split(",")
    assert first[0] == "A" and first[1] == "cassandra" and first[3] == ""
    # Insertion order never leaks into the CSV either.
    shuffled = ResultSet(list(reversed(list(results))))
    assert shuffled.export_csv() == text


def test_duplicate_requests_collapse_on_merge(results):
    """Merging a set into itself (a resumed job's replay) changes nothing."""
    merged = results.merged(results)
    assert len(merged) == len(results)
    assert merged.export_rows() == results.export_rows()
    assert merged.export_csv() == results.export_csv()
    # Even a conflicting later answer is ignored: first occurrence wins.
    conflicting = ResultSet([fake_entry("A", "cassandra", 12345)])
    assert results.merged(conflicting).cycles(
        workload="A", design="cassandra", btu_flush_interval=None
    ) == 900
