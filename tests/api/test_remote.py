"""The networked tier: serve/client parity, job control, socket sharding.

Pins the ISSUE's acceptance bar: ``remote ≡ serial`` bit parity through
both networked paths (the ``repro serve`` job server consumed by
``RemoteServiceClient``/``RemoteBackend``, and ``RemoteShardBackend``'s
socket workers), plus the job-control vocabulary (ping / submit / events /
cancel) and the shared worker-loss recovery semantics.
"""

import os
import pickle
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.api import (
    JobCancelled,
    ScenarioMatrix,
    ShardWorkerError,
    SimulationRequest,
    SimulationService,
)
from repro.api.remote import (
    REMOTE_PROTOCOL_VERSION,
    TAG_PING,
    TAG_PONG,
    TAG_RESULT,
    TAG_TASK,
    RemoteBackend,
    RemoteServiceClient,
    RemoteShardBackend,
    parse_address,
    recv_json,
    send_json,
    serve,
)
from repro.api.shard import ShardTask, read_frame, run_task, write_frame

WORKLOAD = "ChaCha20_ct"
SECOND_WORKLOAD = "SHA-256"

MATRIX = ScenarioMatrix(designs=("unsafe-baseline", "cassandra")).extended(
    ScenarioMatrix(designs=("cassandra",), flush_intervals=(300,)),
)


@pytest.fixture(scope="module")
def server():
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    job_server = serve(service)
    yield job_server
    job_server.close()
    service.close()


@pytest.fixture(scope="module")
def client(server):
    return RemoteServiceClient(server.address)


def test_parse_address():
    assert parse_address("localhost:8765") == ("localhost", 8765)
    assert parse_address(("10.0.0.1", 99)) == ("10.0.0.1", 99)
    with pytest.raises(ValueError, match="host:port"):
        parse_address("8765")


def test_ping_and_workloads(client):
    answer = client.ping()
    assert answer["ok"] is True
    assert answer["server"] == "repro-serve"
    assert answer["protocol"] == REMOTE_PROTOCOL_VERSION
    assert answer["backend"] == "serial"
    assert client.workloads == [WORKLOAD]


def test_remote_run_matches_serial_bit_for_bit(client):
    """The full loop — expand on the server's workload set, execute there,
    rehydrate here — answers exactly what an independent local serial
    service answers."""
    remote = client.run(MATRIX)  # open matrix → server's workload set
    local = SimulationService(names=[WORKLOAD], jobs=1, backend="serial").run(MATRIX)
    assert remote.requests == local.requests
    for (request, ours), (_, theirs) in zip(remote, local):
        assert ours.stats.as_dict() == theirs.stats.as_dict(), request
        assert ours.policy_name == theirs.policy_name
        assert ours.program_name == theirs.program_name
    assert remote.to_json() == local.to_json()


def test_remote_events_stream_and_attach(client):
    handle = client.submit(MATRIX, tags=("remote-test",))
    events = list(handle.events())
    assert events[0].kind == "queued"
    assert events[0].payload["tags"] == ["remote-test"]
    assert events[-1].kind == "done"
    assert {event.job_id for event in events} == {handle.job_id}
    results = handle.result()
    assert len(results) == len(MATRIX.expand([WORKLOAD]))

    # events op: re-attaching replays the finished job's whole stream and
    # final payload on a fresh connection.
    replay = client.attach(handle.job_id)
    replay_events = list(replay.events())
    assert [event.kind for event in replay_events] == [event.kind for event in events]
    assert replay.result().to_json() == results.to_json()


def test_attach_unknown_job_errors(client):
    from repro.api.remote import RemoteJobError

    with pytest.raises(RemoteJobError, match="unknown job"):
        client.attach("job-424242")


def test_remote_cancel_in_band(server, client):
    scheduler = server.service.scheduler
    scheduler.pause()
    try:
        handle = client.submit(
            SimulationRequest(workload=WORKLOAD, design="prospect")
        )
        assert handle.cancel() is True
        # The cancel frame is processed by the server's watcher thread;
        # wait for it to land before letting the scheduler move.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            job = scheduler.get_job(handle.job_id)
            if job is not None and job.cancel_requested:
                break
            time.sleep(0.01)
        assert scheduler.get_job(handle.job_id).cancel_requested
    finally:
        scheduler.resume()
    with pytest.raises(JobCancelled):
        handle.result(timeout=30)
    assert handle.state == "cancelled"
    assert len(handle.partial()) == 0


def test_cancel_op_by_job_id(server, client):
    scheduler = server.service.scheduler
    scheduler.pause()
    try:
        handle = client.submit(SimulationRequest(workload=WORKLOAD, design="spt"))
        assert client.cancel(handle.job_id) is True  # separate connection
    finally:
        scheduler.resume()
    with pytest.raises(JobCancelled):
        handle.result(timeout=30)
    assert client.cancel("job-999999") is False


def test_remote_backend_persists_results_locally(server, artifact_cache):
    """--backend remote: points execute on the server, land in the local
    memo *and* disk cache, and a later cold local service reads them."""
    backend = RemoteBackend(server.address)
    events = []
    backend.listener = events.append
    local = SimulationService(
        names=[WORKLOAD], cache=artifact_cache, jobs=1, backend=backend
    )
    matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra-lite"))
    answer = local.run(matrix)
    assert len(answer) == 2
    assert [event.kind for event in events if event.kind == "point-done"] or [
        event.kind for event in events if event.kind == "cache-hit"
    ]
    cold = SimulationService(
        names=[WORKLOAD], cache=artifact_cache, jobs=1, backend="serial"
    )
    cold.run(matrix)
    assert cold.pipeline.points_simulated == 0  # all resolved from disk


def test_observer_disconnect_does_not_cancel_the_job(server, client):
    """An 'events' attach is read-only: closing it must not cancel work the
    submitter is still waiting on (only the owning connection's EOF does)."""
    scheduler = server.service.scheduler
    scheduler.pause()
    try:
        handle = client.submit(
            SimulationRequest(workload=WORKLOAD, design="cassandra+prospect")
        )
        observer = client.attach(handle.job_id)
        observer._close()  # observer walks away mid-job
        time.sleep(0.2)    # let the server's watcher thread see the EOF
        assert not scheduler.get_job(handle.job_id).cancel_requested
    finally:
        scheduler.resume()
    assert len(handle.result(timeout=60)) == 1  # the job still completes


def test_attach_after_seq_replays_only_the_gap(client):
    handle = client.submit(SimulationRequest(workload=WORKLOAD, design="cassandra"))
    handle.result(timeout=120)
    full = list(client.attach(handle.job_id).events())
    assert len(full) >= 3 and full[-1].kind == "done"

    # Resuming after the second event replays exactly the suffix.
    resumed = client.attach(handle.job_id, after_seq=full[1].seq)
    suffix = list(resumed.events())
    assert [event.seq for event in suffix] == [event.seq for event in full[2:]]
    assert resumed.result().to_json() == handle.result().to_json()


def test_result_timeout_raises_then_handle_still_answers(server, client):
    """``result(timeout=...)`` bounds the wait with a TimeoutError — and the
    override must not linger: a later untimed ``result()`` on the same
    handle blocks under the connection's own policy and succeeds."""
    scheduler = server.service.scheduler
    scheduler.pause()
    try:
        handle = client.submit(
            SimulationRequest(workload=WORKLOAD, design="cassandra-lite")
        )
        before = time.monotonic()
        with pytest.raises(TimeoutError, match=handle.job_id):
            handle.result(timeout=0.4)
        assert time.monotonic() - before < 5
        # The per-call deadline is gone once the call is.
        assert handle._deadline is None and handle._timeout is None
    finally:
        scheduler.resume()
    results = handle.result(timeout=60)  # reconnects by job id under the hood
    assert len(results) == 1
    local = SimulationService(names=[WORKLOAD], jobs=1, backend="serial").run(
        SimulationRequest(workload=WORKLOAD, design="cassandra-lite")
    )
    assert results.to_json() == local.to_json()


def test_stream_reconnects_transparently_after_socket_loss(server, client):
    """Killing the handle's socket mid-stream is healed by attach-by-id:
    the stream resumes from the last seen seq with no gaps or duplicates
    and the job itself survives (the submit said on_disconnect=keep)."""
    scheduler = server.service.scheduler
    scheduler.pause()
    try:
        handle = client.submit(
            SimulationRequest(workload=WORKLOAD, design="cassandra+stl")
        )
        stream = handle.events()
        first = next(stream)
        assert first.kind == "queued"
        handle._sock.close()  # the network "fails" under the iterator
    finally:
        scheduler.resume()
    rest = list(stream)
    seqs = [first.seq] + [event.seq for event in rest]
    assert seqs == sorted(set(seqs))  # strictly increasing, no duplicates
    assert rest[-1].kind == "done"
    assert not scheduler.get_job(handle.job_id).cancel_requested
    assert len(handle.result()) == 1


def test_forked_children_do_not_inherit_server_sockets(server):
    """Fork-backend workers inherit every open fd; an orphan surviving a
    server crash must not keep the listen port alive (new clients would
    dial into a backlog nobody accepts) nor hold established client
    connections open past the server's death.  The at-fork hook closes
    the server's sockets in every forked child."""
    probe = socket.create_connection((server.host, server.port))
    try:
        deadline = time.monotonic() + 5
        while not server._conns and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server._conns  # the accept loop registered the connection
        pid = os.fork()
        if pid == 0:  # the child reports through its exit status only
            closed = server._sock.fileno() == -1 and all(
                conn.fileno() == -1 for conn in list(server._conns)
            )
            os._exit(0 if closed else 1)
        _, status = os.waitpid(pid, 0)
        assert os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0
        # the parent's sockets are untouched
        assert server._sock.fileno() != -1
        assert all(conn.fileno() != -1 for conn in list(server._conns))
    finally:
        probe.close()


def test_malformed_submit_answers_an_error(server):
    """A bad submit frame gets an error reply, never a silent hang."""
    for frame in (
        {"op": "submit", "protocol": REMOTE_PROTOCOL_VERSION},  # no requests
        {
            "op": "submit",
            "protocol": REMOTE_PROTOCOL_VERSION,
            "requests": [{"bogus": True}],
        },
    ):
        sock = socket.create_connection((server.host, server.port))
        stream = sock.makefile("rwb")
        send_json(stream, frame)
        answer = recv_json(stream)
        assert answer["ok"] is False and "bad submit frame" in answer["error"]
        sock.close()


def test_submit_rejects_wrong_protocol(server):
    sock = socket.create_connection((server.host, server.port))
    stream = sock.makefile("rwb")
    send_json(stream, {"op": "submit", "protocol": 999, "requests": []})
    answer = recv_json(stream)
    assert answer["ok"] is False and "protocol" in answer["error"]
    sock.close()


def test_unknown_op_answers_error(server):
    sock = socket.create_connection((server.host, server.port))
    stream = sock.makefile("rwb")
    send_json(stream, {"op": "teleport"})
    answer = recv_json(stream)
    assert answer["ok"] is False and "unknown op" in answer["error"]
    sock.close()


# --------------------------------------------------------------------------- #
# RemoteShardBackend: socket transport of the shard wire format
# --------------------------------------------------------------------------- #
def spawn_worker(address):
    env = dict(os.environ)
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.api.remote import worker_main; "
            f"sys.exit(worker_main({address!r}))",
        ],
        env=env,
    )


def register_fake_worker(address, die_on_task=False):
    """An in-test worker connection: registers, answers pings, and — when
    ``die_on_task`` — drops the connection on its first real task."""
    sock = socket.create_connection(parse_address(address))
    stream = sock.makefile("rwb")
    send_json(
        stream,
        {"op": "register-worker", "protocol": REMOTE_PROTOCOL_VERSION, "pid": 0},
    )
    ack = recv_json(stream)
    assert ack and ack["ok"]

    def loop():
        while True:
            try:
                frame = read_frame(stream)
            except (OSError, EOFError, ValueError):
                return
            if frame is None:
                return
            if frame[:1] == TAG_PING:
                write_frame(stream, TAG_PONG)
                continue
            if die_on_task:
                sock.close()
                return

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return sock, ack["worker_id"]


def register_pong_racing_worker(address):
    """An in-test worker that computes tasks for real (in-process) but
    writes a stray ``TAG_PONG`` *before* every result frame — exactly the
    interleaving a heartbeat ping racing a task dispatch produces."""
    sock = socket.create_connection(parse_address(address))
    stream = sock.makefile("rwb")
    send_json(
        stream,
        {"op": "register-worker", "protocol": REMOTE_PROTOCOL_VERSION, "pid": 0},
    )
    ack = recv_json(stream)
    assert ack and ack["ok"]

    def loop():
        while True:
            try:
                frame = read_frame(stream)
            except (OSError, EOFError, ValueError):
                return
            if frame is None:
                return
            if frame[:1] == TAG_PING:
                write_frame(stream, TAG_PONG)
                continue
            if frame[:1] == TAG_TASK:
                results = run_task(ShardTask.from_bytes(frame[1:]))
                write_frame(stream, TAG_PONG)  # the raced heartbeat answer
                write_frame(
                    stream,
                    TAG_RESULT
                    + pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL),
                )

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return sock, ack["worker_id"]


def test_raced_pong_before_result_frame_is_skipped_not_fatal():
    """The driver's read loop must skip pongs a heartbeat raced into the
    channel instead of treating them as the task's answer: the run stays
    bit-identical to serial and the worker is not dropped as dead."""
    backend = RemoteShardBackend(heartbeat_interval=None)
    sock, worker_id = register_pong_racing_worker(backend.address)
    try:
        assert backend.wait_for_workers(1, timeout=30) == 1
        service = SimulationService(names=[WORKLOAD], jobs=1, backend=backend)
        matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
        answer = service.run(matrix)
        serial = SimulationService(names=[WORKLOAD], jobs=1, backend="serial").run(
            matrix
        )
        assert answer.to_json() == serial.to_json()
        assert worker_id in backend.workers()  # survived both "pongs"
    finally:
        backend.close()
        sock.close()


def test_remote_shard_parity_with_real_workers():
    backend = RemoteShardBackend(heartbeat_interval=None)
    workers = [spawn_worker(backend.address) for _ in range(2)]
    try:
        assert backend.wait_for_workers(2, timeout=30) == 2
        service = SimulationService(
            names=[WORKLOAD, SECOND_WORKLOAD], jobs=2, backend=backend
        )
        remote = service.run(MATRIX)
        serial = SimulationService(
            names=[WORKLOAD, SECOND_WORKLOAD], jobs=1, backend="serial"
        ).run(MATRIX)
        assert remote.requests == serial.requests
        for (request, ours), (_, theirs) in zip(remote, serial):
            assert ours.stats.as_dict() == theirs.stats.as_dict(), request
    finally:
        backend.close()
        for worker in workers:
            worker.wait(timeout=10)
    assert all(worker.returncode == 0 for worker in workers)


def test_remote_shard_worker_loss_requeues_on_survivors():
    """One worker drops its connection mid-task: the task lands back on the
    surviving worker (excluded set recorded) and the run still answers."""
    backend = RemoteShardBackend(heartbeat_interval=None)
    bad_sock, bad_id = register_fake_worker(backend.address, die_on_task=True)
    good = spawn_worker(backend.address)
    try:
        assert backend.wait_for_workers(2, timeout=30) == 2
        service = SimulationService(
            names=[WORKLOAD, SECOND_WORKLOAD], jobs=2, backend=backend
        )
        matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
        answer = service.run(matrix)  # two workload groups, one per worker
        assert len(answer) == 4
        assert service.pipeline.points_simulated == 4
        assert bad_id not in backend.workers()  # the dead worker was dropped
        serial = SimulationService(
            names=[WORKLOAD, SECOND_WORKLOAD], jobs=1, backend="serial"
        ).run(matrix)
        for (request, ours), (_, theirs) in zip(answer, serial):
            assert ours.stats.as_dict() == theirs.stats.as_dict(), request
    finally:
        backend.close()
        bad_sock.close()
        good.wait(timeout=10)


def test_remote_shard_total_worker_loss_raises_typed_error():
    backend = RemoteShardBackend(heartbeat_interval=None, worker_wait=5.0)
    sock, worker_id = register_fake_worker(backend.address, die_on_task=True)
    try:
        assert backend.wait_for_workers(1, timeout=30) == 1
        service = SimulationService(names=[WORKLOAD], jobs=1, backend=backend)
        with pytest.raises(ShardWorkerError) as excinfo:
            service.run(SimulationRequest(workload=WORKLOAD, design="cassandra"))
        assert excinfo.value.workload == WORKLOAD
        assert excinfo.value.requests  # the pending requests are named
        assert worker_id in str(excinfo.value) or "excluded" in str(excinfo.value)
    finally:
        backend.close()
        sock.close()


def test_heartbeat_drops_unresponsive_worker():
    backend = RemoteShardBackend(heartbeat_interval=0.1, ping_timeout=0.3)
    sock = socket.create_connection(parse_address(backend.address))
    stream = sock.makefile("rwb")
    send_json(
        stream,
        {"op": "register-worker", "protocol": REMOTE_PROTOCOL_VERSION, "pid": 0},
    )
    ack = recv_json(stream)
    assert ack["ok"]
    # The "worker" never answers pings; the heartbeat prunes it.
    deadline = time.monotonic() + 10
    while backend.workers() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert backend.workers() == []
    backend.close()
    sock.close()


def test_registration_rejects_wrong_protocol():
    backend = RemoteShardBackend(heartbeat_interval=None)
    sock = socket.create_connection(parse_address(backend.address))
    stream = sock.makefile("rwb")
    send_json(stream, {"op": "register-worker", "protocol": 999})
    answer = recv_json(stream)
    assert answer["ok"] is False
    backend.close()
    sock.close()


def test_shard_result_frames_are_the_pipe_payloads():
    """The socket transport reuses the pipe wire shape: a worker's result
    frame body is exactly the pickled SimulationResult list."""
    results = [1, 2, 3]
    frame = b"R" + pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
    assert pickle.loads(frame[1:]) == results
