"""GatewayStore semantics: tenants, keys, quotas, ledger, durability.

The store is the gateway's only memory, so everything here is about what
survives — reopening the same state dir (including "after a crash": the
store is fsync-per-commit), revocation really revoking, and the
``store-write`` fault site leaving acknowledged state untouched when a
write dies before its commit.
"""

import pytest

from repro.api.gateway.admin import admin_main
from repro.api.gateway.store import KEY_PREFIX, GatewayStore, UsageRecord
from repro.testing import Fault, FaultPlan, InjectedFault, activate


@pytest.fixture()
def store(tmp_path):
    with GatewayStore(str(tmp_path)) as gateway_store:
        yield gateway_store


# --------------------------------------------------------------------------- #
# Tenants and keys
# --------------------------------------------------------------------------- #
def test_tenant_and_key_lifecycle(store):
    tenant = store.create_tenant("acme", points_per_day=100)
    assert store.get_tenant(tenant.tenant_id) == tenant
    assert store.tenant_by_name("acme") == tenant
    assert store.list_tenants() == [tenant]

    plaintext, key = store.issue_key(tenant.tenant_id, label="ci")
    assert plaintext.startswith(KEY_PREFIX)
    assert key.active and key.label == "ci"
    assert store.lookup_key(plaintext) == tenant

    assert store.revoke_key(key.key_id)
    assert store.lookup_key(plaintext) is None  # revoked keys stop working
    assert not store.revoke_key(key.key_id)  # idempotent: already revoked
    assert not store.list_keys(tenant.tenant_id)[0].active


def test_duplicate_tenant_name_rejected(store):
    store.create_tenant("acme")
    with pytest.raises(ValueError):
        store.create_tenant("acme")


def test_unknown_key_and_unknown_tenant(store):
    assert store.lookup_key("rk_" + "0" * 64) is None
    with pytest.raises(KeyError):
        store.issue_key("t-missing")
    with pytest.raises(KeyError):
        store.set_quotas("t-missing", points_per_day=1)


def test_set_quotas_replaces_overrides(store):
    tenant = store.create_tenant("acme", max_concurrent_jobs=2)
    updated = store.set_quotas(tenant.tenant_id, points_per_day=10)
    assert updated.points_per_day == 10
    assert updated.max_concurrent_jobs is None  # replace, not merge


def test_keys_are_stored_hashed(store, tmp_path):
    tenant = store.create_tenant("acme")
    plaintext, _key = store.issue_key(tenant.tenant_id)
    raw = (tmp_path / "gateway.sqlite3").read_bytes()
    assert plaintext.encode() not in raw


# --------------------------------------------------------------------------- #
# Job ownership and the usage ledger
# --------------------------------------------------------------------------- #
def test_job_ownership_and_active_load(store):
    tenant = store.create_tenant("acme")
    other = store.create_tenant("rival")
    store.record_job("job-1", tenant.tenant_id, points=3, state="queued")
    store.record_job("job-2", tenant.tenant_id, points=2, state="running")
    store.record_job("job-3", other.tenant_id, points=9, state="running")

    assert store.job_owner("job-1") == tenant.tenant_id
    assert store.job_owner("job-9") is None
    assert store.active_load(tenant.tenant_id) == (2, 5)

    store.set_job_state("job-1", "done")
    assert store.active_load(tenant.tenant_id) == (1, 2)


def test_usage_totals_and_window(store):
    tenant = store.create_tenant("acme")
    now = 1_000_000.0
    for index, recorded in enumerate((now - 500, now - 100)):
        store.record_usage(
            UsageRecord(
                tenant_id=tenant.tenant_id,
                job_id=f"job-{index}",
                recorded=recorded,
                points=4,
                computed=3,
                cache_hits=1,
                wall_seconds=1.5,
                native_compile_seconds=0.25,
            )
        )
    totals = store.usage_totals(tenant.tenant_id)
    assert totals["jobs"] == 2
    assert totals["points"] == 8
    assert totals["computed"] == 6
    assert totals["cache_hits"] == 2
    assert totals["wall_seconds"] == pytest.approx(3.0)
    assert totals["native_compile_seconds"] == pytest.approx(0.5)

    # A 300s window only sees the newer row; retry-after is the time until
    # that row (the window's oldest) ages out.
    points, retry = store.points_in_window(tenant.tenant_id, 300.0, now=now)
    assert points == 4
    assert retry == pytest.approx(200.0)
    # A wide window sees both; the older row expires first.
    points, retry = store.points_in_window(tenant.tenant_id, 1000.0, now=now)
    assert points == 8
    assert retry == pytest.approx(500.0)
    # An empty window is free.
    assert store.points_in_window(tenant.tenant_id, 50.0, now=now) == (0, 0.0)


# --------------------------------------------------------------------------- #
# Durability
# --------------------------------------------------------------------------- #
def test_reopen_sees_every_acknowledged_write(tmp_path):
    with GatewayStore(str(tmp_path)) as first:
        tenant = first.create_tenant("acme", points_per_day=50)
        plaintext, key = first.issue_key(tenant.tenant_id, label="dev")
        first.record_job("job-1", tenant.tenant_id, points=2, state="running")
        first.record_usage(
            UsageRecord(tenant.tenant_id, "job-0", 123.0, 1, 1, 0, 0.5)
        )

    with GatewayStore(str(tmp_path)) as second:
        assert second.lookup_key(plaintext) == tenant
        assert second.job_owner("job-1") == tenant.tenant_id
        assert second.usage_totals(tenant.tenant_id)["jobs"] == 1
        assert [k.key_id for k in second.list_keys()] == [key.key_id]


def test_store_write_crash_leaves_store_unchanged(tmp_path):
    """A ``store-write`` crash fires *before* the execute+commit: the
    acknowledged store state is exactly what it was, and a reopen (the
    post-kill restart) confirms nothing torn landed."""
    with GatewayStore(str(tmp_path)) as store:
        store.create_tenant("acme")
        plan = FaultPlan.scripted(Fault("store-write", 0, "crash"))
        with activate(plan) as active:
            with pytest.raises(InjectedFault):
                store.create_tenant("doomed")
            assert [fault.site for fault in active.fired] == ["store-write"]
        assert store.tenant_by_name("doomed") is None

    with GatewayStore(str(tmp_path)) as reopened:
        assert reopened.tenant_by_name("doomed") is None
        assert reopened.tenant_by_name("acme") is not None


# --------------------------------------------------------------------------- #
# The admin CLI
# --------------------------------------------------------------------------- #
def test_admin_cli_full_lifecycle(tmp_path, capsys):
    state = str(tmp_path)
    assert admin_main(["--state-dir", state, "create-tenant", "acme",
                       "--points-per-day", "100"]) == 0
    capsys.readouterr()

    assert admin_main(["--state-dir", state, "create-key", "acme",
                       "--label", "ci"]) == 0
    out = capsys.readouterr().out
    key_id = next(l.split(": ")[1] for l in out.splitlines() if l.startswith("key-id:"))
    plaintext = next(
        l.split(": ")[1] for l in out.splitlines() if l.startswith("api-key:")
    )
    assert plaintext.startswith(KEY_PREFIX)

    with GatewayStore(state) as store:
        tenant = store.lookup_key(plaintext)
        assert tenant is not None and tenant.name == "acme"
        assert tenant.points_per_day == 100

    assert admin_main(["--state-dir", state, "set-quota", "acme",
                       "--max-concurrent-jobs", "3"]) == 0
    assert admin_main(["--state-dir", state, "list-tenants", "--format", "json"]) == 0
    out = capsys.readouterr().out
    assert '"max_concurrent_jobs": 3' in out.splitlines()[-1]

    assert admin_main(["--state-dir", state, "list-keys"]) == 0
    assert key_id in capsys.readouterr().out

    assert admin_main(["--state-dir", state, "revoke-key", key_id]) == 0
    with GatewayStore(state) as store:
        assert store.lookup_key(plaintext) is None

    capsys.readouterr()
    assert admin_main(["--state-dir", state, "revoke-key", key_id]) == 2
    assert admin_main(["--state-dir", state, "create-key", "ghost"]) == 2
    assert admin_main(["--state-dir", state, "create-tenant", "acme"]) == 2
