"""Scheduler semantics: events, dedup, priority, cancellation, failure.

The job redesign's acceptance bar: submitting is non-blocking, every
lifecycle step is an observable typed event, identical in-flight points
are shared across jobs, priorities order execution, and cancellation never
leaves the cache half-written.
"""

import threading

import pytest

from repro.api import (
    JobCancelled,
    JobEvent,
    ScenarioMatrix,
    SerialBackend,
    SimulationRequest,
    SimulationService,
)

WORKLOAD = "ChaCha20_ct"
SECOND_WORKLOAD = "SHA-256"


def make_service(**kwargs):
    kwargs.setdefault("names", [WORKLOAD])
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("backend", "serial")
    return SimulationService(**kwargs)


def kinds(events):
    return [event.kind for event in events]


def test_submit_streams_typed_events():
    service = make_service()
    handle = service.submit(
        ScenarioMatrix(designs=("unsafe-baseline", "cassandra")), tags=("smoke",)
    )
    results = handle.result()
    assert len(results) == 2
    assert handle.done and handle.state == "done"

    events = list(handle.events())  # full history replay after completion
    assert kinds(events) == [
        "queued",
        "prepared",
        "point-started",
        "point-started",
        "point-done",
        "point-done",
        "done",
    ]
    queued = events[0]
    assert queued.payload == {"points": 2, "priority": 0, "tags": ["smoke"]}
    assert events[1].payload == {"workloads": [WORKLOAD]}
    done = events[-1]
    assert done.payload == {"points": 2, "computed": 2, "cache_hits": 0}
    for event in events:
        clone = JobEvent.from_dict(event.as_dict())  # the wire round trip
        assert clone == event
    point_done = [event for event in events if event.kind == "point-done"]
    assert {event.request.design for event in point_done} == {
        "unsafe-baseline",
        "cassandra",
    }
    assert all(event.payload["cycles"] > 0 for event in point_done)


def test_cross_job_dedup_same_request_runs_once():
    service = make_service()
    request = SimulationRequest(workload=WORKLOAD, design="spt")
    first = service.submit(request)
    first.result()
    simulated = service.pipeline.points_simulated
    assert simulated == 1

    second = service.submit(request)
    answer = second.result()
    assert service.pipeline.points_simulated == simulated  # ran exactly once
    assert answer.one().cycles == first.result().one().cycles
    second_kinds = kinds(second.history())
    assert "cache-hit" in second_kinds
    assert "point-started" not in second_kinds


def test_priority_ordering_observable_in_event_stream():
    service = make_service()
    scheduler = service.scheduler
    order = []
    scheduler.add_listener(
        lambda event: order.append((event.job_id, event.kind))
    )
    scheduler.pause()
    try:
        low = service.submit(
            SimulationRequest(workload=WORKLOAD, design="prospect"), priority=0
        )
        high = service.submit(
            SimulationRequest(workload=WORKLOAD, design="cassandra-lite"),
            priority=10,
        )
    finally:
        scheduler.resume()
    low.result()
    high.result()
    started = [job for job, kind in order if kind == "point-done"]
    assert started == [high.job_id, low.job_id]


def test_ties_run_in_submission_order():
    service = make_service()
    scheduler = service.scheduler
    done_order = []
    scheduler.add_listener(
        lambda event: event.kind == "done" and done_order.append(event.job_id)
    )
    scheduler.pause()
    try:
        handles = [
            service.submit(
                SimulationRequest(workload=WORKLOAD, design="unsafe-baseline"),
                priority=3,
            )
            for _ in range(3)
        ]
    finally:
        scheduler.resume()
    for handle in handles:
        handle.result()
    assert done_order == [handle.job_id for handle in handles]


class CancelAfterFirstRound(SerialBackend):
    """Cancels a job from *inside* the backend after its first round —
    deterministically exercising the mid-job cancellation boundary."""

    def __init__(self):
        self.handle = None
        self.calls = 0

    def execute(self, artifacts, requests, jobs):
        computed = super().execute(artifacts, requests, jobs)
        self.calls += 1
        if self.calls == 1 and self.handle is not None:
            self.handle.cancel()
        return computed


def test_cancel_mid_job_leaves_cache_consistent():
    backend = CancelAfterFirstRound()
    service = SimulationService(
        names=[WORKLOAD, SECOND_WORKLOAD], jobs=1, backend=backend
    )
    scheduler = service.scheduler
    scheduler.pause()
    handle = service.submit(ScenarioMatrix(designs=("unsafe-baseline",)))
    backend.handle = handle
    scheduler.resume()

    with pytest.raises(JobCancelled):
        handle.result()
    assert handle.state == "cancelled"
    history_kinds = kinds(handle.history())
    assert history_kinds[-1] == "cancelled"
    # Exactly the first workload group ran; its points are memoized (the
    # cache is consistent), the second group never started.
    assert service.pipeline.points_simulated == 1
    partial = handle.partial()
    assert len(partial) == 1
    assert partial.requests[0].workload.name == WORKLOAD

    # Resubmitting completes the job: the finished point is a cache hit,
    # only the unstarted one computes.
    backend.handle = None
    again = service.submit(ScenarioMatrix(designs=("unsafe-baseline",)))
    results = again.result()
    assert len(results) == 2
    assert service.pipeline.points_simulated == 2
    again_kinds = kinds(again.history())
    assert again_kinds.count("cache-hit") == 1
    assert again_kinds.count("point-done") == 1


def test_cancel_queued_job_before_it_starts():
    service = make_service()
    scheduler = service.scheduler
    scheduler.pause()
    handle = service.submit(SimulationRequest(workload=WORKLOAD, design="cassandra"))
    assert handle.cancel() is True
    scheduler.resume()
    with pytest.raises(JobCancelled):
        handle.result(timeout=30)
    assert kinds(handle.history()) == ["queued", "cancelled"]
    assert service.pipeline.points_simulated == 0
    assert handle.cancel() is False  # already finished


def test_empty_submission_completes_immediately():
    service = make_service()
    handle = service.submit([])
    assert handle.done
    assert len(handle.result()) == 0
    assert kinds(handle.history()) == ["queued", "done"]


def test_failed_job_raises_the_original_error():
    service = make_service()
    handle = service.submit(
        SimulationRequest(workload=WORKLOAD, design="no-such-design")
    )
    with pytest.raises(KeyError, match="no-such-design"):
        handle.result()
    assert handle.state == "failed"
    failed = handle.history()[-1]
    assert failed.kind == "failed"
    assert "no-such-design" in failed.payload["error"]
    # The scheduler survives a failed job.
    assert service.run(
        SimulationRequest(workload=WORKLOAD, design="unsafe-baseline")
    ).one().cycles > 0


def test_concurrent_inflight_point_shared_across_jobs():
    """Two *simultaneously running* jobs naming the same request share one
    execution: the second waits on the first's in-flight entry."""
    service = make_service()
    release = threading.Event()

    class Gate(SerialBackend):
        def execute(self, artifacts, requests, jobs):
            release.wait(timeout=30)
            return super().execute(artifacts, requests, jobs)

    service.backend = Gate()
    # Two dispatcher workers so both jobs run concurrently.
    from repro.api.scheduler import Scheduler

    service._scheduler = Scheduler(service, workers=2)
    request = SimulationRequest(workload=WORKLOAD, design="cassandra+stl")
    first = service.submit(request)
    second = service.submit(request)
    # Let both dispatchers reach the claim table before opening the gate.
    deadline = threading.Event()
    deadline.wait(0.3)
    release.set()
    a, b = first.result(timeout=60), second.result(timeout=60)
    assert a.one().stats.as_dict() == b.one().stats.as_dict()
    assert service.pipeline.points_simulated == 1
    all_kinds = kinds(first.history()) + kinds(second.history())
    assert all_kinds.count("point-done") == 1  # exactly one execution
    assert all_kinds.count("cache-hit") == 1


def test_run_is_a_thin_wrapper_over_submit():
    service = make_service()
    matrix = ScenarioMatrix(designs=("unsafe-baseline",))
    assert service.run(matrix).one().cycles == service.submit(matrix).result().one().cycles


def test_close_cancels_queued_jobs_and_rejects_new_ones():
    service = make_service()
    scheduler = service.scheduler
    scheduler.pause()
    queued = service.submit(SimulationRequest(workload=WORKLOAD, design="spt"))
    scheduler.close()
    with pytest.raises(JobCancelled):
        queued.result(timeout=10)
    with pytest.raises(RuntimeError, match="closed"):
        scheduler.submit(SimulationRequest(workload=WORKLOAD, design="spt"))
    # The service makes a fresh scheduler after close().
    service._scheduler = None
    assert service.run(SimulationRequest(workload=WORKLOAD, design="spt"))


def test_scheduler_stats_snapshot():
    service = make_service()
    scheduler = service.scheduler
    stats = scheduler.stats()
    assert stats["jobs_total"] == 0
    assert stats["queue_depth"] == 0
    assert stats["inflight_claims"] == 0
    assert stats["workers"] == 1
    assert stats["paused"] is False
    assert stats["journal_path"] is None

    scheduler.pause()
    queued = service.submit(SimulationRequest(workload=WORKLOAD, design="spt"))
    stats = scheduler.stats()
    assert stats["jobs_total"] == 1
    assert stats["jobs_queued"] == 1
    assert stats["queue_depth"] == 1
    assert stats["paused"] is True

    scheduler.resume()
    queued.result(timeout=300)
    stats = scheduler.stats()
    assert stats["jobs_done"] == 1
    assert stats["jobs_queued"] == stats["queue_depth"] == 0
    assert stats["inflight_claims"] == 0  # every dedup claim released
    service.close()


def test_service_stats_surfaces_scheduler_without_creating_one():
    service = make_service()
    # No scheduler yet: stats() must not be the thing that spins one up.
    assert "scheduler" not in service.stats()
    assert service._scheduler is None

    service.run(SimulationRequest(workload=WORKLOAD, design="unsafe-baseline"))
    report = service.stats()
    assert report["scheduler"]["jobs_done"] == 1
    assert report["backend"] == "serial"
    service.close()


def test_service_stats_surface_artifact_cache_counters(tmp_path):
    # Cache off: the key is present but null — operators can tell "no
    # cache" from "no quarantines".
    service = make_service()
    assert service.stats()["artifact_cache"] is None
    service.close()

    from repro.pipeline import ArtifactCache

    cached = make_service(cache=ArtifactCache(root=str(tmp_path)))
    assert cached.stats()["artifact_cache"] == {
        "disk_hits": 0,
        "disk_misses": 0,
        "disk_stores": 0,
        "memo_hits": 0,
        "quarantined": 0,
    }
    cached.run(SimulationRequest(workload=WORKLOAD, design="unsafe-baseline"))
    counters = cached.stats()["artifact_cache"]
    assert counters["disk_stores"] >= 1
    assert counters["quarantined"] == 0
    cached.close()
