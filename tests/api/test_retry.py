"""RetryPolicy: deterministic backoff, typed re-raise, deadline budget."""

import pytest

from repro.api import RetryPolicy


def test_delay_schedule_is_exponential_and_capped():
    policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
    assert [policy.delay(n) for n in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_is_deterministic_per_token():
    policy = RetryPolicy(base_delay=1.0, backoff=1.0, max_delay=10.0, jitter=0.1)
    assert policy.delay(0, "dial:a") == policy.delay(0, "dial:a")
    assert policy.delay(0, "dial:a") != policy.delay(0, "dial:b")
    for token in ("dial:a", "dial:b", "attach:job-3"):
        assert 0.9 <= policy.delay(0, token) <= 1.1


def test_call_returns_first_success_after_retries():
    attempts = []
    pauses = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ConnectionResetError("boom")
        return "answer"

    policy = RetryPolicy(max_attempts=4, jitter=0.0, base_delay=0.01)
    assert policy.call(flaky, sleep=pauses.append) == "answer"
    assert len(attempts) == 3
    assert pauses == [policy.delay(0), policy.delay(1)]


def test_call_reraises_the_last_error_as_its_own_type():
    def always():
        raise ConnectionRefusedError("nope")

    policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=0.0)
    with pytest.raises(ConnectionRefusedError, match="nope"):
        policy.call(always, sleep=lambda _pause: None)


def test_call_does_not_catch_unlisted_errors():
    calls = []

    def wrong():
        calls.append(1)
        raise ValueError("not a network problem")

    with pytest.raises(ValueError):
        RetryPolicy().call(wrong, retry_on=(OSError,), sleep=lambda _p: None)
    assert len(calls) == 1  # no retry for a non-retryable error


def test_deadline_stops_retrying_early():
    calls = []

    def always():
        calls.append(1)
        raise ConnectionResetError("down")

    policy = RetryPolicy(
        max_attempts=10, base_delay=5.0, jitter=0.0, deadline=1.0
    )
    with pytest.raises(ConnectionResetError):
        policy.call(always, sleep=lambda _p: None)
    assert len(calls) == 1  # the first pause alone would blow the budget


def test_none_policy_is_the_legacy_behavior():
    policy = RetryPolicy.none()
    assert policy.max_attempts == 1
    assert policy.io_timeout is None
    assert policy.reconnect is False

    calls = []

    def always():
        calls.append(1)
        raise ConnectionResetError("down")

    with pytest.raises(ConnectionResetError):
        policy.call(always, sleep=lambda _p: None)
    assert len(calls) == 1


def test_with_builds_a_modified_copy():
    policy = RetryPolicy()
    tweaked = policy.with_(max_attempts=7, io_timeout=None)
    assert tweaked.max_attempts == 7 and tweaked.io_timeout is None
    assert policy.max_attempts == 4  # the original is untouched (frozen)
