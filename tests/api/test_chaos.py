"""Deterministic chaos: every fault plan ends in byte-identical tables or
a typed error — never a hang, never a corrupted cache.

Each test arms a :class:`repro.testing.faults.FaultPlan` (in-process via
``activate`` or across process boundaries via :data:`FAULT_PLAN_ENV`) and
asserts the stack's recovery contract: delayed and torn frames, dying
workers, crashes inside the artifact cache's atomic-rename window, corrupt
stores, and — the flagship — ``kill -9`` of a ``repro serve --state-dir``
process mid-sweep followed by a restart that resumes the journaled job to
the same final tables.  Every blocking wait carries a timeout.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import ScenarioMatrix, ShardWorkerError, SimulationService
from repro.api.journal import JOURNAL_NAME, JobJournal
from repro.api.remote import RemoteServiceClient, RemoteShardBackend
from repro.pipeline import ArtifactCache
from repro.testing import (
    DIE_STATUS,
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedFault,
    activate,
)
from repro.warehouse import WAREHOUSE_NAME, WarehouseStore, attach_ingestor
from repro.warehouse.ingest import FINGERPRINT_ENV

WORKLOAD = "ChaCha20_ct"
SECOND_WORKLOAD = "SHA-256"

MATRIX = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))

#: Enough points that a mid-sweep kill lands mid-sweep, not after the end.
BIG_MATRIX = ScenarioMatrix(
    designs=("unsafe-baseline", "cassandra", "spt", "cassandra-lite")
).extended(
    ScenarioMatrix(designs=("cassandra",), flush_intervals=tuple(range(200, 1400, 50)))
)

RESULT_TIMEOUT = 300


def serial_service(names=(WORKLOAD,), cache_root=None):
    return SimulationService(
        names=list(names),
        jobs=1,
        backend="serial",
        cache=ArtifactCache(root=cache_root),
    )


@pytest.fixture(scope="module")
def big_baseline():
    """The uninterrupted serial answer the killed-and-resumed runs must match."""
    return serial_service().run(BIG_MATRIX).to_json()


def repro_env(fault_plan=None):
    """A subprocess environment with ``repro`` importable (plus a plan)."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop(FAULT_PLAN_ENV, None)
    if fault_plan is not None:
        env[FAULT_PLAN_ENV] = fault_plan.to_json()
    return env


# --------------------------------------------------------------------------- #
# Frame faults on the shard backends
# --------------------------------------------------------------------------- #
def test_delayed_frames_answer_bit_identically():
    plan = FaultPlan.scripted(
        Fault("frame-write", 0, "delay", delay=0.1),
        Fault("frame-read", 1, "delay", delay=0.1),
    )
    with activate(plan, env=True) as active:
        service = SimulationService(names=[WORKLOAD], jobs=1, backend="shard")
        answer = service.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
        assert active.fired  # the plan really did stall frames
    serial = serial_service().run(MATRIX)
    assert answer.to_json() == serial.to_json()


def test_worker_death_with_no_survivor_is_a_typed_error(monkeypatch):
    plan = FaultPlan.scripted(Fault("worker-task", 0, "die"))
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="shard")
    with pytest.raises(ShardWorkerError) as excinfo:
        service.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
    assert excinfo.value.workload == WORKLOAD
    assert excinfo.value.requests  # the pending work is named, not lost


def test_truncated_result_frame_is_a_typed_error_not_a_hang(monkeypatch):
    """The worker writes a torn result frame (true header, half payload):
    the parent must surface a ShardWorkerError, never block on the rest."""
    plan = FaultPlan.scripted(Fault("frame-write", 0, "truncate"))
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="shard")
    with pytest.raises(ShardWorkerError):
        service.submit(MATRIX).result(timeout=RESULT_TIMEOUT)


def spawn_remote_worker(address, fault_plan=None):
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.api.remote import worker_main; "
            f"sys.exit(worker_main({address!r}))",
        ],
        env=repro_env(fault_plan),
    )


def test_remote_worker_death_requeues_and_stays_bit_identical():
    """One of two socket workers dies on its first task (an injected
    ``os._exit``); the task requeues on the survivor and the final tables
    match serial byte for byte."""
    backend = RemoteShardBackend(heartbeat_interval=None)
    doomed = spawn_remote_worker(
        backend.address, FaultPlan.scripted(Fault("worker-task", 0, "die"))
    )
    survivor = spawn_remote_worker(backend.address)
    try:
        assert backend.wait_for_workers(2, timeout=60) == 2
        service = SimulationService(
            names=[WORKLOAD, SECOND_WORKLOAD], jobs=2, backend=backend
        )
        answer = service.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
        assert len(answer) == 4
        assert service.pipeline.points_simulated == 4
        doomed.wait(timeout=30)
        assert doomed.returncode == DIE_STATUS  # the injected death, not a bug
        assert len(backend.workers()) == 1
        serial = serial_service(names=[WORKLOAD, SECOND_WORKLOAD]).run(MATRIX)
        assert answer.to_json() == serial.to_json()
    finally:
        backend.close()
        for process in (doomed, survivor):
            process.wait(timeout=30)


# --------------------------------------------------------------------------- #
# Cache faults
# --------------------------------------------------------------------------- #
def test_cache_put_crash_leaves_no_partial_entry(tmp_path):
    """A crash between the cache's temp write and its atomic rename is the
    classic torn-write window: the put must fail loudly, leave neither a
    partial entry nor a stray temp file, and a clean rerun heals."""
    root = str(tmp_path)
    # Put order is deterministic under the serial backend: workload
    # artifacts, lowered trace, then one entry per simulation point.
    plan = FaultPlan.scripted(Fault("cache-put", 2, "crash"))
    with activate(plan) as active:
        service = serial_service(cache_root=root)
        with pytest.raises(InjectedFault):
            service.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
        assert [fault.site for fault in active.fired] == ["cache-put"]
    leftovers = [
        name
        for _dir, _sub, names in os.walk(root)
        for name in names
        if not name.endswith(".pkl")
    ]
    assert leftovers == []  # no temp files, no partial entries

    healed = serial_service(cache_root=root)
    answer = healed.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
    assert answer.to_json() == serial_service().run(MATRIX).to_json()


def test_corrupt_store_is_quarantined_and_recomputed(tmp_path):
    """An entry torn on disk *after* its atomic rename (bit rot, torn
    write-back) is quarantined on the next read and recomputed to the
    same bytes."""
    root = str(tmp_path)
    plan = FaultPlan.scripted(Fault("cache-stored", 2, "corrupt"))
    with activate(plan) as active:
        first = serial_service(cache_root=root)
        answer = first.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
        assert [fault.action for fault in active.fired] == ["corrupt"]

    rerun_cache = ArtifactCache(root=root)
    rerun = SimulationService(
        names=[WORKLOAD], jobs=1, backend="serial", cache=rerun_cache
    )
    again = rerun.submit(MATRIX).result(timeout=RESULT_TIMEOUT)
    assert again.to_json() == answer.to_json()
    assert rerun_cache.stats.quarantined == 1
    quarantined = [
        name
        for _dir, _sub, names in os.walk(root)
        for name in names
        if name.endswith(".corrupt")
    ]
    assert len(quarantined) == 1


# --------------------------------------------------------------------------- #
# kill -9 / SIGTERM of `repro serve --state-dir`, then resume
# --------------------------------------------------------------------------- #
class ServeProcess:
    """A ``repro serve --state-dir`` subprocess with captured stdout."""

    def __init__(self, state_dir, env=None):
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--state-dir",
                state_dir,
                "--workloads",
                WORKLOAD,
                "--backend",
                "serial",
                "--jobs",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env if env is not None else repro_env(),
            text=True,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.address = self.wait_for_line("listening on").split("listening on ")[1].split()[0]

    def _pump(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def wait_for_line(self, needle, timeout=60):
        deadline = time.monotonic() + timeout
        seen = 0
        while time.monotonic() < deadline:
            while seen < len(self.lines):
                line = self.lines[seen]
                seen += 1
                if needle in line:
                    return line
            if self.process.poll() is not None and seen >= len(self.lines):
                break
            time.sleep(0.02)
        raise AssertionError(f"serve never printed {needle!r}; got {self.lines}")

    def kill9(self):
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self):
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=120)


def cached_point_count(state_dir):
    """Completed simulation points in the state dir's disk cache.

    The serial backend persists each point the moment it computes (the
    atomic-rename cache), while per-point journal records land only at the
    round boundary — so *this* is the signal that a sweep is mid-round.
    """
    cache_root = os.path.join(state_dir, "cache")
    return sum(
        1
        for dirpath, _subdirs, names in os.walk(cache_root)
        if "simulation" in dirpath
        for name in names
        if name.endswith(".pkl")
    )


def wait_for_cached_points(state_dir, count, timeout=120):
    """Block until ``count`` simulation points are on disk (sweep mid-round)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cached_point_count(state_dir) >= count:
            return
        time.sleep(0.005)
    raise AssertionError(f"cache never reached {count} simulation points")


def journal_records(state_dir):
    return list(JobJournal.read_records(os.path.join(state_dir, JOURNAL_NAME)))


def test_kill9_mid_sweep_then_restart_resumes_to_identical_tables(
    tmp_path, big_baseline
):
    state_dir = str(tmp_path / "state")

    first = ServeProcess(state_dir)
    try:
        client = RemoteServiceClient(first.address)
        handle = client.submit(BIG_MATRIX, tags=("sweep",))
        wait_for_cached_points(state_dir, 3)
    finally:
        first.kill9()  # no drain, no checkpoint: the crash case

    second = ServeProcess(state_dir)
    try:
        resumed_line = second.wait_for_line("resumed")
        assert handle.job_id in resumed_line

        attached = RemoteServiceClient(second.address).attach(handle.job_id)
        results = attached.result(timeout=RESULT_TIMEOUT)
        assert results.to_json() == big_baseline

        records = journal_records(state_dir)
        # The pre-kill completions replayed as cache hits on resume...
        assert any(
            record.get("record") == "point" and record.get("kind") == "cache-hit"
            for record in records
        )
        # ...and the resumed job reached a durable terminal state.
        assert any(
            record.get("record") == "state"
            and record.get("state") == "done"
            and record.get("job") == handle.job_id
            for record in records
        )
        assert second.terminate() == 0
        second.wait_for_line("drained, exiting")
    finally:
        if second.process.poll() is None:
            second.kill9()


def test_sigterm_drains_cleanly_and_restart_resumes(tmp_path, big_baseline):
    state_dir = str(tmp_path / "state")

    first = ServeProcess(state_dir)
    try:
        client = RemoteServiceClient(first.address)
        handle = client.submit(BIG_MATRIX)
        wait_for_cached_points(state_dir, 2)
        assert first.terminate() == 0  # SIGTERM: drain, checkpoint, exit 0
        first.wait_for_line("draining")
        first.wait_for_line("drained, exiting")
    finally:
        if first.process.poll() is None:
            first.kill9()

    records = journal_records(state_dir)
    # The drain suppressed the induced cancel (the job must stay pending)
    # and stamped a clean checkpoint.
    assert not any(record.get("record") == "state" for record in records)
    assert any(record.get("record") == "checkpoint" for record in records)

    second = ServeProcess(state_dir)
    try:
        assert handle.job_id in second.wait_for_line("resumed")
        attached = RemoteServiceClient(second.address).attach(handle.job_id)
        assert attached.result(timeout=RESULT_TIMEOUT).to_json() == big_baseline
        assert second.terminate() == 0
    finally:
        if second.process.poll() is None:
            second.kill9()


def test_kill9_mid_warehouse_ingest_then_resume_reingests_identical_store(
    tmp_path,
):
    """Die at the Nth warehouse write; the journal-driven resume must
    re-ingest to the exact store an uninterrupted run produces."""
    # The uninterrupted reference: the same sweep ingested in-process
    # under a pinned fingerprint.
    reference_store = WarehouseStore(str(tmp_path / "reference.sqlite3"))
    service = serial_service()
    attach_ingestor(service, reference_store, fingerprint="chaos-fp")
    expected = len(service.expand(BIG_MATRIX))
    service.run(BIG_MATRIX)
    deadline = time.monotonic() + 60
    while reference_store.count() < expected and time.monotonic() < deadline:
        time.sleep(0.02)
    service.close()
    reference = reference_store.content_rows()
    reference_store.close()
    assert len(reference) == expected

    state_dir = str(tmp_path / "state")
    store_path = os.path.join(state_dir, WAREHOUSE_NAME)
    plan = FaultPlan.scripted(Fault("warehouse-write", 6, "die"))
    env = repro_env(plan)
    env[FINGERPRINT_ENV] = "chaos-fp"
    first = ServeProcess(state_dir, env=env)
    try:
        client = RemoteServiceClient(first.address)
        handle = client.submit(BIG_MATRIX, tags=("sweep",))
        # The 7th warehouse write fires `die`: the server stops mid-ingest.
        assert first.process.wait(timeout=RESULT_TIMEOUT) == DIE_STATUS
    finally:
        if first.process.poll() is None:
            first.kill9()

    with WarehouseStore(store_path) as partial_store:
        partial = partial_store.content_rows()
    # Genuinely mid-ingest: some rows landed, the sweep did not finish,
    # and nothing that landed disagrees with the reference.
    assert 0 < len(partial) < expected
    assert set(partial) <= set(reference)

    env = repro_env()
    env[FINGERPRINT_ENV] = "chaos-fp"
    second = ServeProcess(state_dir, env=env)
    try:
        assert handle.job_id in second.wait_for_line("resumed")
        attached = RemoteServiceClient(second.address).attach(handle.job_id)
        attached.result(timeout=RESULT_TIMEOUT)
        # The ingest listener trails the result by a beat — poll for
        # convergence to the byte-exact reference rows.
        deadline = time.monotonic() + 60
        rows = []
        while time.monotonic() < deadline:
            with WarehouseStore(store_path) as resumed_store:
                rows = resumed_store.content_rows()
            if rows == reference:
                break
            time.sleep(0.05)
        assert rows == reference
        assert second.terminate() == 0
    finally:
        if second.process.poll() is None:
            second.kill9()


# --------------------------------------------------------------------------- #
# kill -9 the HTTP gateway mid-request, then resume with ownership intact
# --------------------------------------------------------------------------- #
class GatewayProcess:
    """A ``repro gateway --state-dir`` subprocess with captured stdout."""

    def __init__(self, state_dir, fault_plan=None):
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "gateway",
                "--state-dir",
                state_dir,
                "--workloads",
                WORKLOAD,
                "--backend",
                "serial",
                "--jobs",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=repro_env(fault_plan),
            text=True,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        address = self.wait_for_line("listening on").split("listening on http://")[1]
        host, port = address.split()[0].rsplit(":", 1)
        self.host, self.port = host, int(port)

    _pump = ServeProcess._pump
    wait_for_line = ServeProcess.wait_for_line
    kill9 = ServeProcess.kill9
    terminate = ServeProcess.terminate

    def request(self, method, path, key=None, body=None, headers=None, timeout=300):
        import http.client
        import json as jsonlib

        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            all_headers = dict(headers or {})
            if key is not None:
                all_headers["Authorization"] = f"Bearer {key}"
            payload = jsonlib.dumps(body) if body is not None else None
            conn.request(method, path, body=payload, headers=all_headers)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()


def gateway_admin(state_dir, *args):
    """Run ``repro gateway admin`` as the CI smoke does: a subprocess."""
    return subprocess.run(
        [sys.executable, "-m", "repro", "gateway", "admin", "--state-dir", state_dir]
        + list(args),
        env=repro_env(),
        capture_output=True,
        text=True,
        timeout=60,
        check=True,
    ).stdout


def test_gateway_die_mid_request_then_restart_keeps_ownership(
    tmp_path, big_baseline
):
    """The gateway process dies (an injected ``os._exit``) mid-HTTP-request
    while a tenant's sweep is mid-round.  The restart must resume the
    journaled job under the same id *and the same owner*: the tenant's key
    still streams and fetches it, a foreign key still gets 404, and the
    final tables match the uninterrupted serial run byte for byte."""
    import json as jsonlib

    from repro.api import expand_many
    from repro.api.gateway.store import GatewayStore

    state_dir = str(tmp_path / "state")
    out = gateway_admin(state_dir, "create-tenant", "acme")
    gateway_admin(state_dir, "create-tenant", "rival")
    out = gateway_admin(state_dir, "create-key", "acme")
    key = next(l.split(": ")[1] for l in out.splitlines() if l.startswith("api-key:"))
    out = gateway_admin(state_dir, "create-key", "rival")
    foreign = next(
        l.split(": ")[1] for l in out.splitlines() if l.startswith("api-key:")
    )

    batch = [
        request.as_dict()
        for request in expand_many([BIG_MATRIX], default_workloads=[WORKLOAD])
    ]

    # Request 0 (the submit) passes; request 1 kills the process mid-dispatch.
    first = GatewayProcess(
        state_dir, FaultPlan.scripted(Fault("gateway-request", 1, "die"))
    )
    try:
        status, body = first.request("POST", "/v1/jobs", key=key,
                                     body={"requests": batch})
        assert status == 202
        job_id = jsonlib.loads(body)["job"]
        wait_for_cached_points(state_dir, 3)
        with pytest.raises(Exception):
            first.request("GET", "/healthz", timeout=30)  # dies mid-request
        first.process.wait(timeout=30)
        assert first.process.returncode == DIE_STATUS  # the injected death
    finally:
        if first.process.poll() is None:
            first.kill9()

    second = GatewayProcess(state_dir)
    try:
        assert job_id in second.wait_for_line("resumed")

        # Ownership survived: the owner streams the resumed job's events...
        status, text = second.request(
            "GET", f"/v1/jobs/{job_id}/events", key=key, timeout=RESULT_TIMEOUT
        )
        assert status == 200
        kinds = [
            line.split(": ", 1)[1]
            for line in text.splitlines()
            if line.startswith("event: ")
        ]
        assert kinds[-1] == "done"
        assert "cache-hit" in kinds  # pre-kill points replayed from disk

        # ...and fetches tables byte-identical to the uninterrupted run.
        status, wire = second.request(
            "GET", f"/v1/jobs/{job_id}/result", key=key, timeout=RESULT_TIMEOUT
        )
        assert status == 200
        from repro.api.results import ResultSet

        assert ResultSet.from_wire(wire).to_json() == big_baseline

        # A foreign tenant still cannot see it.
        status, _text = second.request(
            "GET", f"/v1/jobs/{job_id}/result", key=foreign
        )
        assert status == 404

        # The usage ledger metered the resumed job for its owner.
        with GatewayStore(state_dir) as store:
            acme = store.tenant_by_name("acme")
            assert store.job_owner(job_id) == acme.tenant_id
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                totals = store.usage_totals(acme.tenant_id)
                if totals["jobs"]:
                    break
                time.sleep(0.05)
            assert totals["jobs"] == 1
            assert totals["points"] == len(batch)
            assert store.usage_totals(store.tenant_by_name("rival").tenant_id)[
                "jobs"
            ] == 0

        assert second.terminate() == 0
        second.wait_for_line("drained, exiting")
    finally:
        if second.process.poll() is None:
            second.kill9()
