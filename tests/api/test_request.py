"""SimulationRequest / WorkloadRef / ScenarioMatrix: value semantics + wire."""

import json

import pytest

from repro.api import (
    EMPTY_MATRIX,
    REQUEST_FORMAT_VERSION,
    ScenarioMatrix,
    SimulationRequest,
    WorkloadRef,
    expand_many,
)
from repro.uarch.config import GOLDEN_COVE_LIKE, BtuConfig, CacheConfig, CoreConfig

SMALL_CORE = CoreConfig(
    rob_size=64,
    fetch_width=4,
    btu=BtuConfig(entries=8),
    l1d=CacheConfig(32 * 1024, 64, 8, 5, name="L1D"),
)


# --------------------------------------------------------------------------- #
# CoreConfig serialization
# --------------------------------------------------------------------------- #
def test_core_config_dict_round_trip():
    for config in (GOLDEN_COVE_LIKE, SMALL_CORE):
        clone = CoreConfig.from_dict(config.as_dict())
        assert clone == config
        assert clone.identity() == config.identity()
        assert hash(clone) == hash(config)
    # The payload is genuinely JSON-serializable (nested dataclasses too).
    json.dumps(SMALL_CORE.as_dict())


def test_core_config_from_dict_rejects_unknown_fields():
    payload = GOLDEN_COVE_LIKE.as_dict()
    payload["warp_drive"] = 9
    with pytest.raises(ValueError, match="warp_drive"):
        CoreConfig.from_dict(payload)


# --------------------------------------------------------------------------- #
# SimulationRequest
# --------------------------------------------------------------------------- #
def test_request_json_round_trip():
    request = SimulationRequest(
        workload=WorkloadRef.registry("SHA-256"),
        design="cassandra",
        config=SMALL_CORE,
        btu_flush_interval=300,
        warmup_passes=2,
    )
    clone = SimulationRequest.from_json(request.to_json())
    assert clone == request
    assert hash(clone) == hash(request)
    assert clone.key() == request.key()
    assert clone.point() == request.point()


def test_request_bytes_round_trip_and_synthetic_ref():
    request = SimulationRequest(
        workload=WorkloadRef.synthetic("chacha20", "90s/10c"),
        design="prospect",
    )
    clone = SimulationRequest.from_bytes(request.to_bytes())
    assert clone == request
    assert clone.workload.name == "synthetic-chacha20-90s/10c"
    assert clone.workload.args == ("chacha20", "90s/10c")
    spec = clone.workload.kernel_spec()
    assert spec.kind == "synthetic" and spec.args == ("chacha20", "90s/10c")


def test_request_accepts_bare_workload_name():
    request = SimulationRequest(workload="ChaCha20_ct", design="spt")
    assert request.workload == WorkloadRef.registry("ChaCha20_ct")


def test_request_rejects_unknown_format_version():
    payload = SimulationRequest(workload="x", design="spt").as_dict()
    payload["version"] = REQUEST_FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="format"):
        SimulationRequest.from_dict(payload)


def test_request_validation():
    with pytest.raises(ValueError):
        SimulationRequest(workload="x", design="")
    with pytest.raises(ValueError):
        WorkloadRef(name="")


# --------------------------------------------------------------------------- #
# ScenarioMatrix
# --------------------------------------------------------------------------- #
def test_matrix_cross_product_order_and_count():
    matrix = ScenarioMatrix(
        designs=("unsafe-baseline", "cassandra"),
        configs=(GOLDEN_COVE_LIKE, SMALL_CORE),
        warmup_passes=(1, 2),
    )
    requests = matrix.expand(["A", "B"])
    assert len(requests) == 2 * 2 * 2 * 2
    assert len(set(requests)) == len(requests)
    # Workload-major order keeps per-workload batches contiguous.
    assert [r.workload.name for r in requests[:8]] == ["A"] * 8
    assert requests[0].design == "unsafe-baseline"


def test_matrix_extend_override_and_dedup():
    matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra")).extended(
        ScenarioMatrix(designs=("cassandra",), flush_intervals=(2000,)),
        # A fully overlapping override: every one of its points is already
        # in the main product and must not appear twice.
        ScenarioMatrix(designs=("cassandra",)),
    )
    requests = matrix.expand(["A"])
    assert len(requests) == 3
    assert len(set(requests)) == 3
    flushed = [r for r in requests if r.btu_flush_interval is not None]
    assert len(flushed) == 1 and flushed[0].design == "cassandra"


def test_matrix_pinned_workloads_ignore_defaults():
    matrix = ScenarioMatrix(
        workloads=(WorkloadRef.synthetic("chacha20", "all-crypto"),),
        designs=("prospect",),
    )
    requests = matrix.expand(["ignored-default"])
    assert [r.workload.name for r in requests] == ["synthetic-chacha20-all-crypto"]


def test_empty_matrix_and_summary():
    assert EMPTY_MATRIX.is_empty()
    assert EMPTY_MATRIX.expand(["A"]) == []
    summary = ScenarioMatrix(designs=("spt",)).summary()
    assert summary["designs"] == ["spt"]
    assert summary["requests_per_workload"] == 1


def test_expand_many_dedups_across_experiments():
    """The CLI's prefetch-union regression: experiments sharing designs must
    enqueue each (workload × design) point once, not once per experiment."""
    figure7 = ScenarioMatrix(designs=("unsafe-baseline", "cassandra", "cassandra+stl", "spt"))
    figure9 = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
    lite = ScenarioMatrix(designs=("unsafe-baseline", "cassandra", "cassandra-lite"))
    union = expand_many([figure7, figure9, lite], default_workloads=["A", "B"])
    # 5 distinct designs per workload, not 4 + 2 + 3 = 9.
    assert len(union) == 5 * 2
    assert len(set(union)) == len(union)


def test_registry_matrices_expand_uniquely():
    """Every registered experiment's matrix — and their union — is duplicate-free."""
    from repro.experiments.registry import EXPERIMENT_REGISTRY

    names = ["ChaCha20_ct", "SHA-256"]
    for spec in EXPERIMENT_REGISTRY.values():
        requests = spec.matrix.expand(names)
        assert len(requests) == len(set(requests)), spec.name
    union = expand_many(
        [spec.matrix for spec in EXPERIMENT_REGISTRY.values()], default_workloads=names
    )
    assert len(union) == len(set(union))
    per_experiment = sum(
        len(spec.matrix.expand(names)) for spec in EXPERIMENT_REGISTRY.values()
    )
    # The union is strictly smaller than the per-experiment sum: the old
    # CLI prefetch enqueued those duplicates, the matrix union cannot.
    assert len(union) < per_experiment
