"""Backend parity and the service facade.

The acceptance bar of the API redesign: ``SerialBackend``,
``ForkPoolBackend``, and ``SubprocessShardBackend`` produce bit-identical
``SimulationResult``s for the same request set, and the service's memo /
disk-cache layers behave identically in front of each.
"""

import pickle

import pytest

from repro.api import (
    ScenarioMatrix,
    SimulationRequest,
    SimulationService,
    WorkloadRef,
    make_backend,
)
from repro.api.shard import ShardTask, run_task
from repro.uarch.config import CoreConfig

NAMES = ["ChaCha20_ct", "SHA-256"]
SMALL_CORE = CoreConfig(rob_size=64, fetch_width=4)

#: A deliberately mixed matrix: plain designs, a BTU-flush override, a
#: non-default config, and a 2-pass warm-up point.
PARITY_MATRIX = ScenarioMatrix(
    designs=("unsafe-baseline", "cassandra", "spt"),
).extended(
    ScenarioMatrix(designs=("cassandra",), flush_intervals=(300,)),
    ScenarioMatrix(designs=("unsafe-baseline", "cassandra"), configs=(SMALL_CORE,)),
    ScenarioMatrix(designs=("cassandra",), warmup_passes=(2,)),
)


@pytest.fixture(scope="module")
def backend_answers():
    answers = {}
    for backend in ("serial", "fork", "shard"):
        service = SimulationService(names=NAMES, jobs=2, backend=backend)
        answers[backend] = service.run(PARITY_MATRIX)
    return answers


def test_three_way_backend_parity(backend_answers):
    serial = backend_answers["serial"]
    assert len(serial) == len(PARITY_MATRIX.expand(NAMES))
    for other_name in ("fork", "shard"):
        other = backend_answers[other_name]
        assert serial.requests == other.requests
        for (request, ours), (_, theirs) in zip(serial, other):
            assert ours.stats.as_dict() == theirs.stats.as_dict(), (
                other_name,
                request,
            )
            assert ours.policy_name == theirs.policy_name
            assert ours.program_name == theirs.program_name


def test_rerun_is_pure_memo_lookup(backend_answers):
    service = SimulationService(names=NAMES, jobs=2, backend="shard")
    first = service.run(PARITY_MATRIX)
    simulated = service.pipeline.points_simulated
    again = service.run(PARITY_MATRIX)
    assert service.pipeline.points_simulated == simulated  # nothing recomputed
    for (_, before), (_, after) in zip(first, again):
        assert before is after  # the very same memoized objects


def test_shard_backend_persists_to_disk_cache(artifact_cache):
    matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
    shard = SimulationService(
        names=[NAMES[0]], cache=artifact_cache, jobs=2, backend="shard"
    )
    shard.run(matrix)

    # A cold service over the same cache resolves every point from disk.
    cold = SimulationService(
        names=[NAMES[0]], cache=artifact_cache, jobs=1, backend="serial"
    )
    cold.run(matrix)
    assert cold.pipeline.points_simulated == 0


def test_shard_task_wire_round_trip():
    request = SimulationRequest(
        workload=WorkloadRef.registry(NAMES[0]), design="cassandra", warmup_passes=2
    )
    task = ShardTask(
        workload=NAMES[0],
        program_name="chacha20_blocks",
        request_payloads=(request.to_json(),),
        trace_bytes=b"\x00columns",
        bundle_bytes=b"\x01bundle",
    )
    clone = ShardTask.from_bytes(task.to_bytes())
    assert clone == task
    assert clone.requests() == [request]
    with pytest.raises(ValueError, match="shard task"):
        ShardTask.from_bytes(pickle.dumps((999, "bad")))


def test_shard_worker_runs_task_in_process():
    """run_task — the exact function the worker loop calls — needs only the
    wire payloads, never the parent's prepared objects."""
    from repro.experiments.runner import prepare_workload

    artifact = prepare_workload(NAMES[0])
    requests = [
        SimulationRequest(workload=WorkloadRef.registry(NAMES[0]), design=design)
        for design in ("unsafe-baseline", "cassandra")
    ]
    task = ShardTask(
        workload=NAMES[0],
        program_name=artifact.kernel.program.name,
        request_payloads=tuple(r.to_json() for r in requests),
        trace_bytes=artifact.lowered_trace().to_bytes(),
        bundle_bytes=pickle.dumps(artifact.bundle),
    )
    results = run_task(task)
    assert len(results) == 2
    expected = [artifact.simulate(r.design) for r in requests]
    for ours, theirs in zip(results, expected):
        assert ours.stats.as_dict() == theirs.stats.as_dict()


def test_make_backend_names():
    assert make_backend(None).name == "fork"
    assert make_backend("shard").name == "shard"
    with pytest.raises(KeyError, match="unknown backend"):
        make_backend("teleport")
    with pytest.raises(KeyError, match="--connect"):
        make_backend("remote")  # the networked backend needs an address


#: A worker that reads its first frame header and dies — the mid-task
#: death the hardened shard backend must recover from.
CRASH_COMMAND = [
    __import__("sys").executable,
    "-c",
    "import sys; sys.stdin.buffer.read(8); sys.exit(3)",
]


def _mixed_worker_commands(monkeypatch, crash_first: int = 1):
    """Patch worker spawning: the first ``crash_first`` workers die on
    their first task, the rest run the real loop."""
    import threading

    from repro.api.backends import SubprocessShardBackend

    real = SubprocessShardBackend._worker_command
    lock = threading.Lock()
    calls = []

    def fake():
        with lock:
            calls.append(None)
            if len(calls) <= crash_first:
                return list(CRASH_COMMAND)
        return real()

    monkeypatch.setattr(
        SubprocessShardBackend, "_worker_command", staticmethod(fake)
    )
    return calls


def test_shard_worker_death_requeues_onto_survivors(monkeypatch):
    """One of two workers dies mid-task: its task is requeued onto the
    survivor and the answer still matches the serial backend's."""
    _mixed_worker_commands(monkeypatch, crash_first=1)
    matrix = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
    shard = SimulationService(names=NAMES, jobs=2, backend="shard")
    answer = shard.run(matrix)  # two workload groups → one task per worker
    assert len(answer) == 4
    assert shard.pipeline.points_simulated == 4
    serial = SimulationService(names=NAMES, jobs=1, backend="serial").run(matrix)
    for (request, ours), (_, theirs) in zip(answer, serial):
        assert ours.stats.as_dict() == theirs.stats.as_dict(), request


def test_shard_total_worker_loss_raises_typed_error(monkeypatch):
    """Every worker the pool ever had dies on the task: a ShardWorkerError
    naming the worker and the pending requests, not a hang or a silent
    partial answer."""
    from repro.api import ShardWorkerError

    _mixed_worker_commands(monkeypatch, crash_first=99)
    service = SimulationService(names=[NAMES[0]], jobs=2, backend="shard")
    with pytest.raises(ShardWorkerError) as excinfo:
        service.run(ScenarioMatrix(designs=("unsafe-baseline",)))
    error = excinfo.value
    assert error.worker.startswith("pipe-")
    assert error.workload == NAMES[0]
    assert [request.design for request in error.requests] == ["unsafe-baseline"]
    assert "pending request" in str(error)


def test_service_runs_bare_requests_and_extends_workloads():
    service = SimulationService(names=[NAMES[0]], backend="serial")
    request = SimulationRequest(workload=NAMES[1], design="unsafe-baseline")
    answer = service.run(request)
    assert answer.cycles(workload=NAMES[1]) > 0
    assert NAMES[1] in service.workloads  # the request pulled it in


def test_context_accumulates_results():
    service = SimulationService(names=[NAMES[0]], backend="serial")
    ctx = service.context()
    ctx.run(ScenarioMatrix(designs=("unsafe-baseline",)))
    ctx.run(ScenarioMatrix(designs=("cassandra",)))
    assert len(ctx.results) == 2
    assert ctx.results.normalized_time("cassandra") < 1.0
