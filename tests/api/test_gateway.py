"""The HTTP gateway end to end, in-process: auth, quotas, SSE, ownership.

One module-scoped gateway (serial backend, ephemeral port) serves every
test; isolation comes from tenancy — each test mints its own tenant and
key, so quota and ownership assertions never interfere.  The flagship
assertion is the acceptance bar: the HTTP flow (auth → submit → SSE with
``Last-Event-ID`` resume → result) yields tables byte-identical to a
direct :class:`SimulationService` run.
"""

import http.client
import json
import socket
import time

import pytest

from repro.api import ScenarioMatrix, SimulationRequest, SimulationService
from repro.api.gateway import GatewayServer, GatewayStore
from repro.api.results import ResultSet
from repro.cli import gateway_main, serve_main
from repro.testing import Fault, FaultPlan, activate

WORKLOAD = "ChaCha20_ct"
MATRIX = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))
RESULT_TIMEOUT = 300


@pytest.fixture(scope="module")
def baseline():
    """The direct, gateway-free answer HTTP results must match byte-for-byte."""
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    try:
        return service.run(MATRIX).to_json()
    finally:
        service.close()


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    store = GatewayStore(str(tmp_path_factory.mktemp("gateway-state")))
    server = GatewayServer(service, store, port=0).start()
    yield server
    server.close()
    service.close()
    store.close()


@pytest.fixture()
def tenant_key(gateway, request):
    """A fresh (tenant, plaintext key) per test."""
    tenant = gateway.store.create_tenant(request.node.name[:40])
    plaintext, _meta = gateway.store.issue_key(tenant.tenant_id)
    return tenant, plaintext


def call(gateway, method, path, key=None, body=None, headers=None,
         timeout=RESULT_TIMEOUT, raw=False):
    """One request → (status, headers, decoded JSON or raw text)."""
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=timeout)
    try:
        all_headers = dict(headers or {})
        if key is not None:
            all_headers["Authorization"] = f"Bearer {key}"
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=all_headers)
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        content_type = response.getheader("Content-Type", "")
        decoded = (
            json.loads(text)
            if "application/json" in content_type and not raw
            else text
        )
        return response.status, dict(response.getheaders()), decoded
    finally:
        conn.close()


def sse_frames(text):
    """Parse an SSE body into (id, event, data-dict) triples."""
    frames = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        fields = dict(line.split(": ", 1) for line in block.splitlines())
        frames.append((int(fields["id"]), fields["event"], json.loads(fields["data"])))
    return frames


def submit_matrix(gateway, key, **extra):
    requests = [
        SimulationRequest(workload=WORKLOAD, design=design).as_dict()
        for design in ("unsafe-baseline", "cassandra")
    ]
    status, _headers, body = call(
        gateway, "POST", "/v1/jobs", key=key, body={"requests": requests, **extra}
    )
    assert status == 202, body
    return body["job"]


def wait_for_usage_row(gateway, tenant_id, jobs=1, timeout=60):
    """The ledger row lands a beat after result() unblocks — poll for it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        totals = gateway.store.usage_totals(tenant_id)
        if totals["jobs"] >= jobs:
            return totals
        time.sleep(0.02)
    raise AssertionError(f"no usage row for {tenant_id} after {timeout}s")


# --------------------------------------------------------------------------- #
# Auth
# --------------------------------------------------------------------------- #
def test_healthz_is_unauthenticated_and_reports_scheduler(gateway):
    status, _headers, body = call(gateway, "GET", "/healthz")
    assert status == 200
    assert body["ok"] and body["server"] == "repro-gateway"
    assert body["backend"] == "serial"
    assert body["store"].endswith("gateway.sqlite3")
    assert body["scheduler"]["workers"] >= 1
    assert "queue_depth" in body["scheduler"]
    # Artifact-cache counters ride along (null here: the disk cache is off).
    assert "artifact_cache" in body


@pytest.mark.parametrize(
    "headers",
    [
        {},
        {"Authorization": "Bearer rk_" + "0" * 64},
        {"Authorization": "Basic dXNlcjpwYXNz"},
        {"Authorization": "Bearer"},
    ],
)
def test_bad_credentials_get_401(gateway, headers):
    status, response_headers, body = call(
        gateway, "GET", "/v1/workloads", headers=headers
    )
    assert status == 401
    assert body["error"] == "unauthorized"
    assert "Bearer" in response_headers.get("WWW-Authenticate", "")


def test_revoked_key_gets_401(gateway, tenant_key):
    tenant, key = tenant_key
    status, _h, _b = call(gateway, "GET", "/v1/workloads", key=key)
    assert status == 200
    (meta,) = gateway.store.list_keys(tenant.tenant_id)
    gateway.store.revoke_key(meta.key_id)
    status, _h, body = call(gateway, "GET", "/v1/workloads", key=key)
    assert status == 401 and body["error"] == "unauthorized"


def test_workloads_lists_the_service_set(gateway, tenant_key):
    _tenant, key = tenant_key
    status, _h, body = call(gateway, "GET", "/v1/workloads", key=key)
    assert status == 200 and body["workloads"] == [WORKLOAD]


# --------------------------------------------------------------------------- #
# The flagship flow: submit → SSE (with resume) → result
# --------------------------------------------------------------------------- #
def test_http_flow_is_byte_identical_to_direct_run(gateway, tenant_key, baseline):
    tenant, key = tenant_key
    job = submit_matrix(gateway, key, tags=["sweep", "tenant:spoofed"])

    status, headers, text = call(gateway, "GET", f"/v1/jobs/{job}/events", key=key)
    assert status == 200
    assert headers["Content-Type"].startswith("text/event-stream")
    frames = sse_frames(text)
    kinds = [event for _id, event, _data in frames]
    assert kinds[0] == "queued" and kinds[-1] == "done"
    assert kinds.count("point-done") + kinds.count("cache-hit") == 2
    ids = [frame_id for frame_id, _event, _data in frames]
    assert ids == sorted(ids)  # monotonic seq = usable Last-Event-ID
    # The asserted ownership tag is the gateway's; the spoof was stripped.
    tags = frames[0][2]["payload"]["tags"]
    assert f"tenant:{tenant.tenant_id}" in tags
    assert "tenant:spoofed" not in tags and "sweep" in tags

    # Reconnect with Last-Event-ID: only the gap replays.
    status, _h, text = call(
        gateway, "GET", f"/v1/jobs/{job}/events", key=key,
        headers={"Last-Event-ID": str(ids[1])},
    )
    resumed = sse_frames(text)
    assert [frame_id for frame_id, _e, _d in resumed] == ids[2:]
    # ?after_seq is the header-less spelling of the same resume.
    status, _h, text = call(
        gateway, "GET", f"/v1/jobs/{job}/events?after_seq={ids[-2]}", key=key
    )
    assert [event for _id, event, _d in sse_frames(text)] == ["done"]

    status, _h, wire = call(
        gateway, "GET", f"/v1/jobs/{job}/result?wait=60", key=key, raw=True
    )
    assert status == 200
    assert ResultSet.from_wire(wire).to_json() == baseline

    totals = wait_for_usage_row(gateway, tenant.tenant_id)
    assert totals["points"] == 2
    assert totals["computed"] + totals["cache_hits"] == 2

    status, _h, body = call(gateway, "GET", "/v1/usage", key=key)
    assert status == 200
    assert body["totals"] == totals
    assert body["active"] == {"jobs": 0, "queued_points": 0}


def test_result_before_done_is_409(gateway, tenant_key):
    _tenant, key = tenant_key
    gateway.service.scheduler.pause()
    try:
        job = submit_matrix(gateway, key)
        status, _h, body = call(gateway, "GET", f"/v1/jobs/{job}/result", key=key)
        assert status == 409 and body["error"] == "not-ready"
    finally:
        gateway.service.scheduler.resume()
    status, _h, _wire = call(gateway, "GET", f"/v1/jobs/{job}/result?wait=120", key=key)
    assert status == 200


def test_duplicate_points_collapse_over_http(gateway, tenant_key):
    _tenant, key = tenant_key
    request = SimulationRequest(workload=WORKLOAD, design="cassandra").as_dict()
    status, _h, body = call(
        gateway, "POST", "/v1/jobs", key=key, body={"requests": [request, request]}
    )
    assert status == 202 and body["points"] == 1


# --------------------------------------------------------------------------- #
# Ownership
# --------------------------------------------------------------------------- #
def test_foreign_and_unknown_jobs_are_404(gateway, tenant_key):
    _tenant, key = tenant_key
    rival = gateway.store.create_tenant("rival-" + _tenant.tenant_id[-6:])
    rival_key, _meta = gateway.store.issue_key(rival.tenant_id)
    job = submit_matrix(gateway, key)

    for method, path in [
        ("GET", f"/v1/jobs/{job}/events"),
        ("GET", f"/v1/jobs/{job}/result"),
        ("DELETE", f"/v1/jobs/{job}"),
    ]:
        status, _h, body = call(gateway, method, path, key=rival_key)
        assert status == 404, (method, path)
        assert body["error"] == "not-found"

    status, _h, _body = call(gateway, "GET", "/v1/jobs/job-999999/result", key=key)
    assert status == 404


def test_cancel_own_job(gateway, tenant_key):
    _tenant, key = tenant_key
    gateway.service.scheduler.pause()
    try:
        job = submit_matrix(gateway, key)
        status, _h, body = call(gateway, "DELETE", f"/v1/jobs/{job}", key=key)
        assert status == 200 and body["cancelled"]
    finally:
        gateway.service.scheduler.resume()
    handle = gateway.service.scheduler.get_job(job)
    handle._finished.wait(RESULT_TIMEOUT)
    status, _h, body = call(gateway, "GET", f"/v1/jobs/{job}/result", key=key)
    assert status == 409 and body["error"] == "cancelled"
    assert body["partial"]["entries"] == []


# --------------------------------------------------------------------------- #
# Quotas
# --------------------------------------------------------------------------- #
def test_concurrent_job_quota_429(gateway, tenant_key):
    tenant, key = tenant_key
    gateway.store.set_quotas(tenant.tenant_id, max_concurrent_jobs=1)
    gateway.service.scheduler.pause()  # keep the first job live, deterministically
    try:
        submit_matrix(gateway, key)
        requests = [SimulationRequest(workload=WORKLOAD, design="spt").as_dict()]
        status, headers, body = call(
            gateway, "POST", "/v1/jobs", key=key, body={"requests": requests}
        )
        assert status == 429
        assert body["error"] == "quota-exceeded"
        assert int(headers["Retry-After"]) >= 1
    finally:
        gateway.service.scheduler.resume()


def test_queued_points_quota_429(gateway, tenant_key):
    tenant, key = tenant_key
    gateway.store.set_quotas(tenant.tenant_id, max_queued_points=1)
    requests = [
        SimulationRequest(workload=WORKLOAD, design=d).as_dict()
        for d in ("unsafe-baseline", "cassandra")
    ]
    status, _h, body = call(
        gateway, "POST", "/v1/jobs", key=key, body={"requests": requests}
    )
    assert status == 429 and "queued point" in body["message"]


def test_points_per_day_quota_429_with_retry_after(gateway, tenant_key):
    tenant, key = tenant_key
    gateway.store.set_quotas(tenant.tenant_id, points_per_day=2)
    job = submit_matrix(gateway, key)
    status, _h, _wire = call(gateway, "GET", f"/v1/jobs/{job}/result?wait=120", key=key)
    assert status == 200
    wait_for_usage_row(gateway, tenant.tenant_id)

    requests = [SimulationRequest(workload=WORKLOAD, design="spt").as_dict()]
    status, headers, body = call(
        gateway, "POST", "/v1/jobs", key=key, body={"requests": requests}
    )
    assert status == 429
    assert "window" in body["message"]
    # The 2 ledger points age out a usage-window from now.
    assert int(headers["Retry-After"]) >= 1


# --------------------------------------------------------------------------- #
# Malformed input
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "body,needle",
    [
        (None, "JSON body"),
        ({"requests": []}, "non-empty"),
        ({"requests": [{"nonsense": 1}]}, "bad request entry"),
        ({"requests": "nope"}, "non-empty"),
        ({"requests": [1], "priority": "high"}, "bad request entry"),
    ],
)
def test_malformed_submissions_get_400(gateway, tenant_key, body, needle):
    _tenant, key = tenant_key
    status, _h, payload = call(gateway, "POST", "/v1/jobs", key=key, body=body)
    assert status == 400
    assert needle in payload["message"]


def test_unknown_workload_is_400_not_500(gateway, tenant_key):
    _tenant, key = tenant_key
    request = SimulationRequest(workload=WORKLOAD, design="cassandra").as_dict()
    request["workload"] = {"kind": "registry", "name": "no-such-workload"}
    status, _h, body = call(
        gateway, "POST", "/v1/jobs", key=key, body={"requests": [request]}
    )
    assert status == 400 and body["error"] == "bad-request"


def test_unrouted_paths_are_404(gateway, tenant_key):
    _tenant, key = tenant_key
    for method, path in [
        ("GET", "/v1/nope"),
        ("POST", "/v1/workloads"),
        ("DELETE", "/v1/jobs"),
        ("GET", "/v1/jobs/job-1/other"),
    ]:
        status, _h, body = call(gateway, method, path, key=key)
        assert status == 404, (method, path)


# --------------------------------------------------------------------------- #
# Fault injection at the request site
# --------------------------------------------------------------------------- #
def test_gateway_request_crash_fault_is_a_typed_500(gateway, tenant_key):
    _tenant, key = tenant_key
    plan = FaultPlan.scripted(Fault("gateway-request", 0, "crash"))
    with activate(plan) as active:
        status, _h, body = call(gateway, "GET", "/v1/workloads", key=key)
        assert status == 500
        assert body["error"] == "internal-error"
        assert [fault.site for fault in active.fired] == ["gateway-request"]
    # The gateway survives: the next request routes normally.
    status, _h, _body = call(gateway, "GET", "/v1/workloads", key=key)
    assert status == 200


# --------------------------------------------------------------------------- #
# Port-in-use regression (repro serve / repro gateway)
# --------------------------------------------------------------------------- #
@pytest.fixture()
def occupied_port():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    yield sock.getsockname()[1]
    sock.close()


def test_serve_port_in_use_is_a_one_line_exit_2(occupied_port, capsys):
    code = serve_main(
        ["--port", str(occupied_port), "--workloads", WORKLOAD, "--backend",
         "serial", "--jobs", "1"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "repro serve: cannot bind" in err
    assert "address already in use" in err
    assert "Traceback" not in err


def test_gateway_port_in_use_is_a_one_line_exit_2(occupied_port, tmp_path, capsys):
    code = gateway_main(
        ["--port", str(occupied_port), "--state-dir", str(tmp_path / "state"),
         "--workloads", WORKLOAD, "--backend", "serial", "--jobs", "1"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "repro gateway: cannot bind" in err
    assert "address already in use" in err
    assert "Traceback" not in err
