"""The job write-ahead journal: durability, recovery, resume semantics.

The crash-safety bar for ``repro serve --state-dir``: every submission is
durable before it runs, torn tails never poison recovery, finished jobs
compact away, interrupted jobs resume under their original id with only
the remainder left to execute, and seqs/job-ids stay monotonic across
process incarnations.
"""

import json
import os

from repro.api import ScenarioMatrix, SimulationRequest, SimulationService
from repro.api.journal import (
    JOURNAL_NAME,
    RESUMED_TAG,
    JobJournal,
    resume_jobs,
)
from repro.pipeline import ArtifactCache

WORKLOAD = "ChaCha20_ct"
SECOND_WORKLOAD = "SHA-256"
MATRIX = ScenarioMatrix(designs=("unsafe-baseline", "cassandra"))


def make_service(journal=None, cache_root=None):
    return SimulationService(
        names=[WORKLOAD],
        jobs=1,
        backend="serial",
        cache=ArtifactCache(root=cache_root),
        journal=journal,
    )


def journal_path(state_dir) -> str:
    return os.path.join(str(state_dir), JOURNAL_NAME)


def read_all(state_dir):
    return list(JobJournal.read_records(journal_path(state_dir)))


def append_line(state_dir, record) -> None:
    with open(journal_path(state_dir), "ab") as handle:
        payload = record if isinstance(record, bytes) else (
            json.dumps(record) + "\n"
        ).encode("utf-8")
        handle.write(payload)


def test_submissions_points_and_terminal_states_are_journaled(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    handle = service.submit(MATRIX, priority=3, tags=("sweep",))
    results = handle.result(timeout=120)
    assert len(results) == 2
    service.close()
    journal.close()

    records = read_all(tmp_path)
    kinds = [record["record"] for record in records]
    assert kinds == ["submit", "point", "point", "state"]

    submit = records[0]
    assert submit["job"] == handle.job_id
    assert submit["priority"] == 3
    assert submit["tags"] == ["sweep"]
    # The submission is lossless: the journaled requests round-trip.
    recovered = [SimulationRequest.from_dict(entry) for entry in submit["requests"]]
    assert recovered == list(handle.requests)

    for point in records[1:3]:
        assert point["kind"] == "point-done"
        assert point["cycles"] > 0
        assert len(point["digest"]) > 0
        SimulationRequest.from_dict(point["request"])  # round-trippable

    assert records[3] == {
        "record": "state",
        "job": handle.job_id,
        "state": "done",
        "seq": records[3]["seq"],
    }


def test_torn_tail_and_garbage_lines_are_skipped(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    service.scheduler.pause()
    handle = service.submit(MATRIX)
    journal.close()  # the "crash": no terminal record ever lands
    service.close()

    # A crash mid-append leaves a torn (undecodable) trailing line.
    append_line(tmp_path, b'{"record": "state", "job": "job-1", "sta')

    reopened = JobJournal(str(tmp_path))
    assert [job.job_id for job in reopened.pending] == [handle.job_id]
    assert reopened.pending[0].requests == list(handle.requests)
    reopened.close()


def test_finished_jobs_compact_away_on_reopen(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    service.submit(MATRIX).result(timeout=120)
    service.close()
    journal.close()
    assert len(read_all(tmp_path)) == 4

    reopened = JobJournal(str(tmp_path))
    assert reopened.pending == []
    reopened.close()
    # Compaction rewrote the journal without the finished job's records.
    assert read_all(tmp_path) == []


def test_drain_suppresses_cancelled_so_job_stays_pending(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    service.scheduler.pause()  # the job never starts: a mid-queue shutdown
    handle = service.submit(MATRIX, tags=("interrupted",))
    journal.draining = True
    service.close()  # cancels the queued job; the record is suppressed
    journal.checkpoint()
    journal.close()

    states = [r for r in read_all(tmp_path) if r["record"] == "state"]
    assert states == []

    reopened = JobJournal(str(tmp_path))
    assert [job.job_id for job in reopened.pending] == [handle.job_id]
    reopened.close()


def test_requested_cancel_is_terminal_and_not_resumed(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    service.scheduler.pause()
    handle = service.submit(MATRIX)
    handle.cancel()
    service.scheduler.resume()
    service.close()
    journal.close()

    reopened = JobJournal(str(tmp_path))
    assert reopened.pending == []
    reopened.close()


def test_resume_runs_the_remainder_as_cache_hits(tmp_path):
    cache_root = str(tmp_path / "cache")
    state_dir = str(tmp_path / "state")

    # An uninterrupted baseline run computes one of the two points into the
    # shared disk cache (modeling the completed half of a crashed sweep).
    baseline = make_service(cache_root=cache_root)
    done_request = SimulationRequest(workload=WORKLOAD, design="cassandra")
    expected_cycles = baseline.run(done_request).cycles(design="cassandra")
    baseline.close()

    # A journal holding the full two-point job, interrupted mid-sweep: a
    # submit record, one completed point, no terminal state.
    journal = JobJournal(state_dir)
    service = make_service(journal=journal)
    service.scheduler.pause()
    handle = service.submit(MATRIX, priority=2, tags=("sweep",))
    journal.draining = True
    service.close()
    journal.close()

    # Restart: recovery reports the pending job, resume resubmits it under
    # its original id, and the already-computed point lands as a cache hit.
    reopened = JobJournal(state_dir)
    assert len(reopened.pending) == 1
    restarted = make_service(journal=reopened, cache_root=cache_root)
    resumed = resume_jobs(restarted, reopened)
    assert [h.job_id for h in resumed] == [handle.job_id]
    results = resumed[0].result(timeout=120)
    assert len(results) == 2
    assert results.cycles(design="cassandra") == expected_cycles
    assert RESUMED_TAG in resumed[0].tags

    events = resumed[0].history()
    hits = [event for event in events if event.kind == "cache-hit"]
    assert any(event.request.design == "cassandra" for event in hits)
    restarted.close()
    reopened.close()


def test_resubmit_merges_previously_completed_points(tmp_path):
    first = SimulationRequest(workload=WORKLOAD, design="unsafe-baseline")
    second = SimulationRequest(workload=WORKLOAD, design="cassandra")
    submit = {
        "record": "submit",
        "version": 1,
        "job": "job-7",
        "priority": 0,
        "tags": [],
        "requests": [first.as_dict(), second.as_dict()],
    }
    os.makedirs(str(tmp_path), exist_ok=True)
    append_line(tmp_path, submit)
    append_line(
        tmp_path,
        {
            "record": "point",
            "job": "job-7",
            "kind": "point-done",
            "seq": 4,
            "request": first.as_dict(),
            "cycles": 100,
            "digest": "d" * 12,
        },
    )
    # The restart re-submits the job (resume writes one submit per
    # incarnation); the earlier completed point must survive the fold.
    append_line(tmp_path, submit)

    journal = JobJournal(str(tmp_path))
    assert len(journal.pending) == 1
    job = journal.pending[0]
    assert job.job_id == "job-7"
    assert len(job.completed) == 1
    assert job.remaining == 1
    # Counters restart above the journal's maxima.
    assert journal.next_seq == 5
    assert journal.next_job_number == 8
    journal.close()


def test_seq_and_job_ids_stay_monotonic_across_restart(tmp_path):
    journal = JobJournal(str(tmp_path))
    service = make_service(journal=journal)
    handle = service.submit(MATRIX)
    handle.result(timeout=120)
    last_seq = handle.history()[-1].seq
    service.close()
    journal.close()

    reopened = JobJournal(str(tmp_path))
    assert reopened.next_seq == last_seq + 1
    assert reopened.next_job_number == 2
    restarted = make_service(journal=reopened)
    fresh = restarted.submit(SimulationRequest(workload=WORKLOAD, design="spt"))
    fresh.result(timeout=120)
    assert fresh.job_id == "job-2"
    assert all(event.seq > last_seq for event in fresh.history())
    restarted.close()
    reopened.close()
