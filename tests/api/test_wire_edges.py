"""Wire edge cases the HTTP gateway now rides on.

The gateway serializes every :class:`JobEvent` into an SSE frame and every
answer through ``ResultSet.to_wire``, so the JSON round-trips must hold at
the edges: every event kind, non-ASCII workload names and args, empty
tags, and request batches that name the same point twice.
"""

import json

import pytest

from repro.api import SimulationRequest, SimulationService
from repro.api.jobs import EVENT_KINDS, JobEvent
from repro.api.request import WorkloadRef
from repro.api.results import ResultSet
from repro.uarch.config import CoreConfig
from repro.uarch.core import SimulationResult
from repro.uarch.stats import PipelineStats

WORKLOAD = "ChaCha20_ct"


def roundtrip(event: JobEvent) -> JobEvent:
    """as_dict → real JSON bytes → from_dict, like the SSE data line."""
    return JobEvent.from_dict(json.loads(json.dumps(event.as_dict())))


# --------------------------------------------------------------------------- #
# JobEvent round-trips
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", EVENT_KINDS)
def test_every_event_kind_roundtrips(kind):
    request = SimulationRequest(workload=WORKLOAD, design="cassandra")
    payloads = {
        "queued": {"points": 2, "priority": -3, "tags": ["smoke", "naïve-täg"]},
        "prepared": {"workloads": [WORKLOAD]},
        "point-done": {"cycles": 12345},
        "cache-hit": {"cycles": 0},
        "done": {"points": 2, "computed": 1, "cache_hits": 1},
        "failed": {"error": "boom: übel ☂"},
        "cancelled": {"completed": 1},
    }
    event = JobEvent(
        kind=kind,
        job_id="job-42",
        seq=7,
        request=request if kind.startswith(("point", "cache")) else None,
        payload=payloads.get(kind),
    )
    back = roundtrip(event)
    assert back == event
    assert back.terminal == (kind in ("done", "failed", "cancelled"))


def test_queued_event_with_empty_tags_roundtrips():
    event = JobEvent(
        kind="queued",
        job_id="job-1",
        seq=0,
        payload={"points": 0, "priority": 0, "tags": []},
    )
    back = roundtrip(event)
    assert back == event
    assert back.payload["tags"] == []


def test_event_without_payload_roundtrips():
    event = JobEvent(kind="prepared", job_id="job-1", seq=3)
    assert roundtrip(event) == event


# --------------------------------------------------------------------------- #
# ResultSet wire round-trips
# --------------------------------------------------------------------------- #
def result_for(request: SimulationRequest, cycles: int = 1000) -> SimulationResult:
    return SimulationResult(
        program_name=request.workload.name,
        policy_name=request.design,
        stats=PipelineStats(cycles=cycles, instructions=cycles // 2),
        config=CoreConfig(),
    )


def test_resultset_wire_with_non_ascii_workload():
    """Non-registry refs cross the wire unvalidated, so names and args can
    carry any unicode the client minted."""
    ref = WorkloadRef(kind="synthetic", name="sünthetic-Ω-混合", args=("Ω", "混合"))
    request = SimulationRequest(workload=ref, design="cassandra")
    original = ResultSet([(request, result_for(request))])
    wire = original.to_wire()
    back = ResultSet.from_wire(wire)
    assert back.to_json() == original.to_json()
    (entry,) = list(back)
    assert entry[0].workload.name == "sünthetic-Ω-混合"
    assert entry[0].workload.args == ("Ω", "混合")
    # And the wire survives another hop unchanged.
    assert ResultSet.from_wire(back.to_wire()).to_wire() == wire


def test_resultset_wire_empty_args_and_suite():
    ref = WorkloadRef(kind="registry", name=WORKLOAD, args=(), suite="")
    request = SimulationRequest(workload=ref, design="unsafe-baseline")
    original = ResultSet([(request, result_for(request, cycles=7))])
    back = ResultSet.from_wire(original.to_wire())
    (entry,) = list(back)
    assert entry[0].workload.args == ()
    assert entry[0].workload.suite == ""
    assert entry[1].cycles == 7


def test_empty_resultset_roundtrips():
    assert len(ResultSet.from_wire(ResultSet().to_wire())) == 0


# --------------------------------------------------------------------------- #
# Duplicate points in one batch
# --------------------------------------------------------------------------- #
def test_duplicate_points_collapse_on_expand_and_submit():
    service = SimulationService(names=[WORKLOAD], jobs=1, backend="serial")
    request = SimulationRequest(workload=WORKLOAD, design="unsafe-baseline")
    duplicated = [request, request, SimulationRequest(workload=WORKLOAD, design="unsafe-baseline")]

    assert service.expand(duplicated) == [request]

    before = service.pipeline.points_simulated
    handle = service.submit(duplicated)
    results = handle.result(timeout=300)
    assert len(handle.requests) == 1
    assert len(results) == 1
    assert service.pipeline.points_simulated - before == 1
    done = handle.history()[-1]
    assert done.payload == {"points": 1, "computed": 1, "cache_hits": 0}
    service.close()
