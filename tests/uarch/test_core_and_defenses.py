"""Integration tests for the timing core and the defense design points."""

import pytest

from repro.analysis.tracegen import generate_trace_bundle
from repro.crypto.workloads import get_workload
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreModel, simulate
from repro.uarch.defenses import (
    CassandraLitePolicy,
    CassandraPolicy,
    CassandraProspectPolicy,
    ProspectPolicy,
    SptPolicy,
    UnsafeBaseline,
)
from repro.uarch.defenses.base import FetchMechanism


@pytest.fixture(scope="module")
def chacha_artifacts():
    kernel = get_workload("ChaCha20_ct").kernel()
    result = kernel.run(0)
    bundle = generate_trace_bundle(kernel.program, kernel.inputs)
    return kernel, result, bundle


def _run(kernel, result, bundle, policy, **kwargs):
    return simulate(kernel.program, policy=policy, bundle=bundle, result=result, **kwargs)


def test_simulation_produces_consistent_stats(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    sim = _run(kernel, result, bundle, UnsafeBaseline())
    assert sim.stats.instructions == result.instruction_count
    assert sim.cycles > 0
    assert 0 < sim.ipc < 16
    assert sim.stats.branches > 0
    assert sim.stats.loads > 0 and sim.stats.stores > 0


def test_simulation_is_deterministic(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    a = _run(kernel, result, bundle, UnsafeBaseline())
    b = _run(kernel, result, bundle, UnsafeBaseline())
    assert a.cycles == b.cycles


def test_cassandra_never_mispredicts_crypto_branches(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    sim = _run(kernel, result, bundle, CassandraPolicy(bundle))
    # Crypto branches do not touch the BPU at all for this all-crypto kernel.
    assert sim.stats.bpu_predicted == 0
    assert sim.stats.bpu_mispredicted == 0
    assert sim.stats.btu_replayed + sim.stats.single_target_branches + sim.stats.fetch_stall_branches == sim.stats.branches
    assert sim.stats.squash_cycles == 0


def test_cassandra_not_slower_than_baseline_on_chacha(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    baseline = _run(kernel, result, bundle, UnsafeBaseline())
    cassandra = _run(kernel, result, bundle, CassandraPolicy(bundle))
    assert cassandra.cycles <= baseline.cycles


def test_cassandra_lite_slower_than_cassandra(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    cassandra = _run(kernel, result, bundle, CassandraPolicy(bundle))
    lite = _run(kernel, result, bundle, CassandraLitePolicy(bundle))
    assert lite.cycles >= cassandra.cycles
    assert lite.stats.fetch_stall_branches > 0
    assert lite.stats.btu_replayed == 0


def test_spt_and_prospect_not_faster_than_baseline(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    baseline = _run(kernel, result, bundle, UnsafeBaseline())
    spt = _run(kernel, result, bundle, SptPolicy())
    prospect = _run(kernel, result, bundle, ProspectPolicy())
    assert spt.cycles >= baseline.cycles
    assert prospect.cycles >= baseline.cycles


def test_stl_protection_increases_or_preserves_cycles(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    plain = _run(kernel, result, bundle, CassandraPolicy(bundle))
    protected = _run(kernel, result, bundle, CassandraPolicy(bundle, protect_stl=True))
    assert protected.cycles >= plain.cycles
    assert protected.stats.store_forwards == 0


def test_cassandra_prospect_combination_runs(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    sim = _run(kernel, result, bundle, CassandraProspectPolicy(bundle))
    assert sim.policy_name == "cassandra+prospect"
    assert sim.cycles > 0


def test_btu_flush_interval_slows_cassandra_down(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    plain = _run(kernel, result, bundle, CassandraPolicy(bundle))
    flushed = _run(kernel, result, bundle, CassandraPolicy(bundle), btu_flush_interval=200)
    assert flushed.cycles >= plain.cycles
    assert flushed.stats.btu_misses >= plain.stats.btu_misses


def test_policy_requiring_traces_needs_bundle(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    with pytest.raises(ValueError):
        CoreModel(policy=CassandraPolicy(bundle), bundle=None)


def test_input_dependent_branches_stall_under_cassandra():
    kernel = get_workload("kyber512").kernel()
    result = kernel.run(0)
    bundle = generate_trace_bundle(kernel.program, kernel.inputs)
    sim = simulate(kernel.program, policy=CassandraPolicy(bundle), bundle=bundle, result=result)
    assert sim.stats.fetch_stall_branches > 0


def test_warmup_reduces_or_preserves_mispredictions(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    cold = simulate(kernel.program, policy=UnsafeBaseline(), result=result, warmup_passes=0)
    warm = simulate(kernel.program, policy=UnsafeBaseline(), result=result, warmup_passes=1)
    assert warm.stats.bpu_mispredicted <= cold.stats.bpu_mispredicted


def test_smaller_rob_is_not_faster(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    small = simulate(
        kernel.program,
        policy=UnsafeBaseline(),
        result=result,
        config=CoreConfig(rob_size=32),
    )
    large = simulate(kernel.program, policy=UnsafeBaseline(), result=result)
    assert small.cycles >= large.cycles


def test_fetch_mechanism_accounting(chacha_artifacts):
    kernel, result, bundle = chacha_artifacts
    sim = _run(kernel, result, bundle, CassandraPolicy(bundle))
    assert sim.stats.single_target_branches > 0
    assert sim.stats.btu_replayed > 0
    assert FetchMechanism.BTU.value == "btu"


def test_reset_stats_clears_cache_counters(chacha_artifacts):
    """Regression: warm-up accesses must not leak into measured miss rates.

    ``reset_stats`` historically reset the pipeline/BPU/BTU counters but not
    the cache statistics, so ``l1d_miss_rate`` / ``l1i_miss_rate`` aggregated
    every warm-up pass into the measured pass's report.
    """
    kernel, result, bundle = chacha_artifacts
    core = CoreModel(policy=UnsafeBaseline())
    core.run(result.dynamic)
    assert core.caches.l1d.stats.accesses > 0
    assert core.icache.cache.stats.accesses > 0
    core.reset_stats()
    assert core.caches.l1d.stats.accesses == 0
    assert core.caches.l2.stats.accesses == 0
    assert core.caches.l3.stats.accesses == 0
    assert core.icache.cache.stats.accesses == 0

    measured = core.run(result.dynamic)
    # The measured pass's counters cover exactly one pass over the stream.
    assert core.icache.cache.stats.accesses == result.instruction_count
    assert measured.stats.extra["l1i_miss_rate"] == core.icache.cache.stats.miss_rate


def test_measured_miss_rates_exclude_warmup(chacha_artifacts):
    """The warm measured pass must report near-zero miss rates, not the
    warm-up's compulsory misses."""
    kernel, result, bundle = chacha_artifacts
    cold = simulate(kernel.program, policy=UnsafeBaseline(), result=result, warmup_passes=0)
    warm = simulate(kernel.program, policy=UnsafeBaseline(), result=result, warmup_passes=1)
    assert warm.stats.extra["l1d_miss_rate"] <= cold.stats.extra["l1d_miss_rate"]
    assert warm.stats.extra["l1i_miss_rate"] <= cold.stats.extra["l1i_miss_rate"]
    # After one full warm-up pass over a fixed stream the instruction
    # working set is resident: the measured pass misses (almost) never.
    assert warm.stats.extra["l1i_miss_rate"] < cold.stats.extra["l1i_miss_rate"] / 2
