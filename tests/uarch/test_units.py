"""Unit tests for the BPU, caches, and BTU."""

import pytest

from repro.analysis.representation import HardwareTrace, PatternElement, TraceElement
from repro.arch.executor import DynamicInstruction
from repro.isa.instructions import Opcode
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.caches import Cache, CacheHierarchy, InstructionCache
from repro.uarch.config import BtuConfig, CacheConfig, GOLDEN_COVE_LIKE


def _branch(pc, taken, target, opcode=Opcode.BEQZ, seq=0):
    next_pc = target if taken else pc + 1
    return DynamicInstruction(
        seq=seq,
        pc=pc,
        opcode=opcode,
        dst=None,
        srcs=("r1",),
        next_pc=next_pc,
        is_branch=True,
        taken=taken,
        crypto=False,
    )


# --------------------------------------------------------------------------- #
# Branch prediction unit
# --------------------------------------------------------------------------- #
def test_bpu_learns_fixed_trip_count_loop():
    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    trip = 8
    mispredictions = 0
    # Loop head branch at PC 10: not taken for `trip` iterations, taken at exit.
    for instance in range(12):
        for iteration in range(trip + 1):
            taken = iteration == trip
            dyn = _branch(10, taken, 50)
            predicted = bpu.predict(dyn)
            if not bpu.update(dyn, predicted) and instance >= 4:
                mispredictions += 1
    assert mispredictions == 0, "warm loop predictor must capture the fixed trip count"


def test_bpu_direct_branches_always_correct():
    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    dyn = _branch(5, True, 20, opcode=Opcode.JMP)
    assert bpu.predict(dyn) == 20
    assert bpu.update(dyn, 20)


def test_bpu_return_stack_matches_calls():
    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    call = _branch(7, True, 100, opcode=Opcode.CALL)
    assert bpu.predict(call) == 100
    ret = DynamicInstruction(
        seq=1, pc=120, opcode=Opcode.RET, dst=None, srcs=(), next_pc=8,
        is_branch=True, taken=True, crypto=False,
    )
    assert bpu.predict(ret) == 8
    assert bpu.update(ret, 8)
    assert bpu.stats.rsb_mispredictions == 0


def test_bpu_indirect_branch_uses_btb():
    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    dyn = DynamicInstruction(
        seq=0, pc=30, opcode=Opcode.JMPI, dst=None, srcs=("r2",), next_pc=77,
        is_branch=True, taken=True, crypto=False,
    )
    first = bpu.predict(dyn)
    bpu.update(dyn, first)
    assert first != 77  # cold BTB cannot know the target
    assert bpu.predict(dyn) == 77  # trained BTB does
    bpu.flush()
    assert bpu.predict(dyn) != 77


# --------------------------------------------------------------------------- #
# Caches
# --------------------------------------------------------------------------- #
def test_cache_hit_after_miss_and_lru_eviction():
    cache = Cache(CacheConfig(size_bytes=2 * 64, line_bytes=64, associativity=2, latency=1))
    # Two ways per (single) set.
    assert not cache.access(0)
    assert cache.access(0)
    assert not cache.access(64)
    assert not cache.access(128)  # evicts line 0 (LRU)
    assert not cache.access(0)
    assert cache.stats.accesses == 5
    assert 0 < cache.stats.miss_rate < 1
    cache.flush()
    assert not cache.probe(0)


def test_cache_hierarchy_latencies_increase_with_misses():
    hierarchy = CacheHierarchy(GOLDEN_COVE_LIKE)
    cold = hierarchy.load_latency(0x1000)
    warm = hierarchy.load_latency(0x1000)
    assert cold > warm
    assert warm == GOLDEN_COVE_LIKE.l1d.latency


def test_instruction_cache_charges_only_on_miss():
    icache = InstructionCache(GOLDEN_COVE_LIKE)
    assert icache.fetch_latency(100) > 0
    assert icache.fetch_latency(100) == 0


# --------------------------------------------------------------------------- #
# Branch Trace Unit
# --------------------------------------------------------------------------- #
def _make_trace(branch_pc: int, targets_pattern, repeats: int) -> HardwareTrace:
    from repro.analysis.dna import encode_vanilla_trace
    from repro.analysis.kmers import compress_sequence
    from repro.analysis.raw_trace import RawTrace
    from repro.analysis.representation import build_hardware_trace
    from repro.analysis.vanilla import to_vanilla_trace

    targets = tuple(list(targets_pattern) * repeats)
    vanilla = to_vanilla_trace(RawTrace(branch_pc=branch_pc, targets=targets))
    return build_hardware_trace(compress_sequence(encode_vanilla_trace(vanilla)))


def test_btu_replays_exact_target_sequence():
    pattern = [21, 21, 21, 5]
    trace = _make_trace(4, pattern, repeats=6)
    btu = BranchTraceUnit(BtuConfig(), {4: trace})
    produced = [btu.lookup(4).target for _ in range(len(pattern) * 6)]
    assert produced == pattern * 6
    # After the full trace, replay wraps to the beginning.
    assert btu.lookup(4).target == pattern[0]
    assert btu.stats.replay_wraps >= 1


def test_btu_miss_then_hit_and_flush():
    trace = _make_trace(9, [12, 3], repeats=4)
    config = BtuConfig(miss_latency=17)
    btu = BranchTraceUnit(config, {9: trace})
    first = btu.lookup(9)
    assert not first.hit and first.extra_latency >= 17
    second = btu.lookup(9)
    assert second.hit and second.extra_latency == 0
    btu.flush()
    third = btu.lookup(9)
    assert not third.hit
    assert btu.stats.flushes == 1


def test_btu_capacity_evictions_preserve_progress():
    config = BtuConfig(entries=2)
    traces = {pc: _make_trace(pc, [pc + 1, pc + 2], repeats=3) for pc in (1, 2, 3)}
    btu = BranchTraceUnit(config, traces)
    assert btu.lookup(1).target == 2
    assert btu.lookup(2).target == 3
    assert btu.lookup(3).target == 4  # evicts branch 1
    assert btu.stats.evictions == 1
    # Branch 1 reappears: it misses but resumes from its saved progress.
    lookup = btu.lookup(1)
    assert not lookup.hit
    assert lookup.target == 3  # second element of its trace


def test_btu_squash_restores_committed_position():
    trace = _make_trace(6, [8, 8, 2], repeats=2)
    btu = BranchTraceUnit(BtuConfig(), {6: trace})
    assert btu.lookup(6).target == 8
    btu.commit(6)
    assert btu.lookup(6).target == 8
    assert btu.lookup(6).target == 2
    btu.squash(6)  # roll back the two uncommitted lookups
    assert btu.lookup(6).target == 8
    btu.reset_replay()
    assert btu.lookup(6).target == 8


def test_btu_has_trace_and_occupancy():
    trace = _make_trace(11, [1, 2], repeats=2)
    btu = BranchTraceUnit(BtuConfig(), {11: trace})
    assert btu.has_trace(11)
    assert not btu.has_trace(99)
    assert btu.occupancy() == 0
    btu.lookup(11)
    assert btu.occupancy() == 1
    with pytest.raises(KeyError):
        btu.lookup(99)
