"""Unit tests for the instruction definitions."""

from repro.isa.instructions import (
    BRANCH_OPCODES,
    Instruction,
    Opcode,
    is_branch,
    is_control_flow,
    is_memory,
)


def test_branch_opcode_classification():
    assert Opcode.BEQZ in BRANCH_OPCODES
    assert Opcode.CALL in BRANCH_OPCODES
    assert Opcode.RET in BRANCH_OPCODES
    assert Opcode.ADD not in BRANCH_OPCODES


def test_instruction_properties_conditional():
    inst = Instruction(Opcode.BEQZ, srcs=("r1",), imm=10)
    assert inst.is_branch
    assert inst.is_conditional
    assert not inst.is_indirect
    assert not inst.is_call
    assert is_branch(inst)
    assert is_control_flow(inst)


def test_instruction_properties_call_return():
    call = Instruction(Opcode.CALL, imm=5)
    ret = Instruction(Opcode.RET)
    assert call.is_call and not call.is_return
    assert ret.is_return and ret.is_indirect


def test_instruction_memory_properties():
    load = Instruction(Opcode.LOAD, dst="r1", srcs=("r2",), imm=0)
    store = Instruction(Opcode.STORE, srcs=("r1", "r2"), imm=0)
    assert load.is_memory and load.is_load and not load.is_store
    assert store.is_memory and store.is_store and not store.is_load
    assert is_memory(load) and is_memory(store)


def test_writes_register():
    add = Instruction(Opcode.ADD, dst="r1", srcs=("r2",), imm=3)
    store = Instruction(Opcode.STORE, srcs=("r1", "r2"))
    halt = Instruction(Opcode.HALT)
    assert add.writes_register
    assert not store.writes_register
    assert not halt.writes_register


def test_with_crypto_and_with_imm_produce_copies():
    inst = Instruction(Opcode.JMP, imm=None)
    tagged = inst.with_crypto(True)
    resolved = tagged.with_imm(42)
    assert not inst.crypto
    assert tagged.crypto
    assert resolved.imm == 42 and resolved.crypto


def test_str_rendering_mentions_opcode():
    inst = Instruction(Opcode.XOR, dst="r1", srcs=("r1",), imm=90, crypto=True)
    assert "xor" in str(inst)
