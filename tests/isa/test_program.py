"""Unit tests for the Program container."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import CryptoRegion, Program


def _simple_program():
    return Program(
        [
            Instruction(Opcode.MOVI, dst="r1", imm=1),
            Instruction(Opcode.BEQZ, srcs=("r1",), imm=3, crypto=True),
            Instruction(Opcode.ADD, dst="r1", srcs=("r1",), imm=1),
            Instruction(Opcode.HALT),
        ],
        crypto_regions=[CryptoRegion(1, 2)],
        labels={"exit": 3},
        name="simple",
    )


def test_program_requires_instructions():
    with pytest.raises(ValueError):
        Program([])


def test_entry_bounds_checked():
    with pytest.raises(ValueError):
        Program([Instruction(Opcode.HALT)], entry=5)


def test_crypto_region_validation():
    with pytest.raises(ValueError):
        CryptoRegion(5, 2)


def test_fetch_and_bounds():
    program = _simple_program()
    assert program.fetch(0).opcode is Opcode.MOVI
    assert program.is_valid_pc(3)
    assert not program.is_valid_pc(4)
    with pytest.raises(IndexError):
        program.fetch(10)


def test_static_and_crypto_branches():
    program = _simple_program()
    assert program.static_branches() == [1]
    assert program.crypto_branches() == [1]
    assert program.is_crypto_pc(1)
    assert not program.is_crypto_pc(0)


def test_label_lookup():
    program = _simple_program()
    assert program.label_pc("exit") == 3
    with pytest.raises(KeyError):
        program.label_pc("missing")


def test_summary_and_disassembly():
    program = _simple_program()
    summary = program.summary()
    assert summary["instructions"] == 4
    assert summary["static_branches"] == 1
    listing = program.disassemble()
    assert "beqz" in listing and "exit:" in listing


def test_halt_pcs():
    program = _simple_program()
    assert program.halt_pcs() == [3]
