"""Unit tests for the program builder DSL."""

import pytest

from repro.isa.builder import BuilderError, ProgramBuilder
from repro.isa.instructions import Opcode


def test_empty_program_rejected():
    with pytest.raises(BuilderError):
        ProgramBuilder().build()


def test_trailing_halt_appended_automatically():
    b = ProgramBuilder()
    b.movi("r1", 5)
    program = b.build()
    assert program.fetch(len(program) - 1).opcode is Opcode.HALT


def test_unplaced_label_raises():
    b = ProgramBuilder()
    label = b.label("never")
    b.jmp(label)
    with pytest.raises(BuilderError):
        b.build()


def test_label_placed_twice_raises():
    b = ProgramBuilder()
    label = b.label("once")
    b.place(label)
    with pytest.raises(BuilderError):
        b.place(label)


def test_for_range_emits_loop_branch_and_executes():
    from repro.arch.executor import SequentialExecutor

    b = ProgramBuilder()
    acc = b.reg("acc")
    i = b.reg("i")
    b.movi(acc, 0)
    with b.for_range(i, 0, 5):
        b.add(acc, acc, 2)
    b.halt()
    program = b.build()
    result = SequentialExecutor().run(program)
    assert result.register(acc) == 10


def test_for_range_negative_step():
    from repro.arch.executor import SequentialExecutor

    b = ProgramBuilder()
    acc = b.reg("acc")
    i = b.reg("i")
    b.movi(acc, 0)
    with b.for_range(i, 5, 0, step=-1):
        b.add(acc, acc, 1)
    b.halt()
    result = SequentialExecutor().run(b.build())
    assert result.register(acc) == 5


def test_for_range_zero_step_rejected():
    b = ProgramBuilder()
    with pytest.raises(BuilderError):
        with b.for_range(b.reg("i"), 0, 5, step=0):
            pass


def test_if_then_executes_conditionally():
    from repro.arch.executor import SequentialExecutor

    b = ProgramBuilder()
    cond, out = b.regs("cond", "out")
    b.movi(cond, 0)
    b.movi(out, 1)
    with b.if_then(cond):
        b.movi(out, 99)
    b.halt()
    result = SequentialExecutor().run(b.build())
    assert result.register(out) == 1


def test_function_call_and_return():
    from repro.arch.executor import SequentialExecutor

    b = ProgramBuilder()
    with b.function("double") as double:
        b.add("x", "x", "x")
    b.movi("x", 21)
    b.call(double)
    b.halt()
    result = SequentialExecutor().run(b.build())
    assert result.register("x") == 42


def test_crypto_regions_from_tags():
    b = ProgramBuilder()
    b.movi("a", 1)
    with b.crypto():
        b.movi("b", 2)
        b.movi("c", 3)
    b.movi("d", 4)
    b.halt()
    program = b.build()
    assert len(program.crypto_regions) == 1
    region = program.crypto_regions[0]
    assert region.end - region.start == 2
    assert program.is_crypto_pc(region.start)
    assert not program.is_crypto_pc(0)


def test_alloc_secret_tracks_addresses():
    b = ProgramBuilder()
    secret = b.alloc_secret("key", [1, 2, 3])
    public = b.alloc("data", [4, 5])
    b.halt()
    program = b.build()
    assert {secret, secret + 1, secret + 2} <= set(program.secret_addresses)
    assert public not in program.secret_addresses
    assert b.symbol("key") == secret


def test_registers_are_unique():
    b = ProgramBuilder()
    assert b.reg("x") != b.reg("x")


def test_while_loop_executes_until_condition_clears():
    from repro.arch.executor import SequentialExecutor

    b = ProgramBuilder()
    count, cond = b.regs("count", "cond")
    b.movi(count, 0)
    b.movi(cond, 1)
    with b.while_loop(cond):
        b.add(count, count, 1)
        b.cmplt(cond, count, 7)
    b.halt()
    result = SequentialExecutor().run(b.build())
    assert result.register(count) == 7
