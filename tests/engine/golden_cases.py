"""The golden-source snapshot cases for the python and C kernel emitters.

Each case names one (spec × config × specialization-axes) point whose
emitted kernel source is pinned byte-for-byte under ``tests/engine/golden/``
— ``<name>.py.txt`` for the python emitter, ``<name>.c.txt`` for the C
emitter (both emitters lower the same specialized IR point).
The set is chosen so every specialization axis is visible in at least one
snapshot: BPU vs Cassandra vs lite kind, gate masks, forwarding off, an
active flush check, the residency-proved cache-free variants, the BTU
no-eviction elision, the stats-free warm-up body, and a non-power-of-two
ROB (generic ``%`` arithmetic where the default config folds to masks).

Regenerate after an *intentional* emitter change with::

    PYTHONPATH=src:tests python -m engine.golden_cases

and read the diff — that is the point of the snapshots.
"""

from pathlib import Path

from repro.engine.lowering import F_LEAK, F_LOAD, F_SECRET
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec

#: Directory holding the checked-in snapshot files.
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: name -> (spec, config, kernel_source keyword arguments)
GOLDEN_CASES = {
    "bpu-default": (EnginePolicySpec(kind="bpu"), GOLDEN_COVE_LIKE, {}),
    "bpu-gated-nofwd": (
        EnginePolicySpec(
            kind="bpu", gate_mask=F_LOAD | F_LEAK, allow_store_forwarding=False
        ),
        GOLDEN_COVE_LIKE,
        {},
    ),
    "bpu-rob300": (EnginePolicySpec(kind="bpu"), CoreConfig(rob_size=300), {}),
    "cassandra-default": (
        EnginePolicySpec(kind="cassandra"),
        GOLDEN_COVE_LIKE,
        {},
    ),
    "cassandra-flush": (
        EnginePolicySpec(kind="cassandra"),
        GOLDEN_COVE_LIKE,
        {"flush_active": True},
    ),
    "cassandra-resident-elide": (
        EnginePolicySpec(kind="cassandra"),
        GOLDEN_COVE_LIKE,
        {
            "icache_resident": True,
            "dcache_resident": True,
            "btu_elide": True,
        },
    ),
    "cassandra-lite-warm": (
        EnginePolicySpec(kind="cassandra", lite=True),
        GOLDEN_COVE_LIKE,
        {"collect_stats": False},
    ),
    "prospect-resident": (
        EnginePolicySpec(kind="bpu", gate_mask=F_SECRET),
        GOLDEN_COVE_LIKE,
        {"icache_resident": True, "dcache_resident": True},
    ),
}


def render_case(name: str) -> str:
    from repro.engine.kernels import kernel_source

    spec, config, kwargs = GOLDEN_CASES[name]
    kwargs = dict(kwargs)
    flush_active = kwargs.pop("flush_active", False)
    return kernel_source(spec, config, flush_active, **kwargs)


def render_c_case(name: str) -> str:
    from repro.engine.emit.c import c_kernel_source

    spec, config, kwargs = GOLDEN_CASES[name]
    kwargs = dict(kwargs)
    flush_active = kwargs.pop("flush_active", False)
    return c_kernel_source(spec, config, flush_active, **kwargs)


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_CASES:
        for suffix, render in ((".py.txt", render_case), (".c.txt", render_c_case)):
            path = GOLDEN_DIR / f"{name}{suffix}"
            path.write_text(render(name))
            print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
