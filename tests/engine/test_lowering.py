"""Invariants of the columnar lowering."""

import pytest

from repro.engine.lowering import (
    F_BRANCH,
    F_CRYPTO,
    F_LOAD,
    F_SECRET,
    F_STORE,
    F_TAKEN,
    LAT_ALU,
    LAT_BRANCH,
    LAT_DIV,
    LAT_MUL,
    LAT_STORE,
    B_NONE,
    bclass_of,
    lower_dynamic,
    lower_execution,
)
from repro.experiments.runner import prepare_workload
from repro.isa.instructions import Opcode


@pytest.fixture(scope="module")
def artifact():
    return prepare_workload("ChaCha20_ct")


def test_lowering_matches_dynamic_stream(artifact):
    dynamic = artifact.result.dynamic
    trace = lower_dynamic(dynamic, program_name="x")
    assert trace.n == len(dynamic)
    for column in trace.columns():
        assert len(column) == trace.n

    rename = {name: index for index, name in enumerate(trace.reg_names)}
    for i, dyn in enumerate(dynamic):
        assert trace.pcs[i] == dyn.pc
        assert trace.next_pcs[i] == dyn.next_pc
        fl = trace.flags[i]
        assert bool(fl & F_LOAD) == (dyn.is_load and dyn.mem_address is not None)
        assert bool(fl & F_STORE) == (dyn.is_store and dyn.mem_address is not None)
        assert bool(fl & F_BRANCH) == dyn.is_branch
        assert bool(fl & F_CRYPTO) == dyn.crypto
        assert bool(fl & F_SECRET) == dyn.secret_operand
        assert bool(fl & F_TAKEN) == bool(dyn.taken)
        if dyn.mem_address is not None:
            assert trace.mem[i] == dyn.mem_address
        else:
            assert trace.mem[i] == -1
        if dyn.dst is not None:
            assert trace.reg_names[trace.dst[i]] == dyn.dst
        else:
            assert trace.dst[i] == -1
        lowered_srcs = [
            s for s in (trace.src0[i], trace.src1[i], trace.src2[i]) if s >= 0
        ]
        assert tuple(trace.reg_names[s] for s in lowered_srcs) == dyn.srcs
        assert all(rename[name] == s for name, s in zip(dyn.srcs, lowered_srcs))
        assert trace.bclass[i] == bclass_of(dyn.opcode)
        if dyn.opcode is Opcode.MUL:
            assert trace.lat_class[i] == LAT_MUL
        elif dyn.opcode in (Opcode.DIV, Opcode.MOD):
            assert trace.lat_class[i] == LAT_DIV
        elif dyn.opcode is Opcode.STORE:
            assert trace.lat_class[i] == LAT_STORE
        elif dyn.is_branch:
            assert trace.lat_class[i] == LAT_BRANCH
        else:
            assert trace.lat_class[i] == LAT_ALU
    assert trace.max_pc == max(
        max(trace.pcs, default=0), max(trace.next_pcs, default=0)
    )


def test_lowering_is_deterministic(artifact):
    a = lower_dynamic(artifact.result.dynamic, "x")
    b = lower_dynamic(artifact.result.dynamic, "x")
    assert a.columns() == b.columns()
    assert a.reg_names == b.reg_names


def test_lower_execution_memoizes_on_result(artifact):
    result = artifact.result
    if hasattr(result, "_lowered_trace"):
        del result._lowered_trace
    first = lower_execution(result)
    assert lower_execution(result) is first


def test_non_branches_have_no_branch_class(artifact):
    trace = lower_execution(artifact.result)
    for fl, bc in zip(trace.flags, trace.bclass):
        if not fl & F_BRANCH:
            assert bc == B_NONE
