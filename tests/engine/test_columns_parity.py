"""Columns-tier parity and fallback: one NumPy walk ≡ per-config kernels.

Extends the parity chain one layer up: ``test_kernel_parity`` pins the
python kernels to ``run_trace`` and the reference loop; this suite pins the
columns tier to the python kernels — bit-for-bit over fuzz programs × a
config grid spanning every vectorized axis (ROB, widths, predictor
geometry, penalties, latencies, BTU sizing) — and locks the tier's
engagement rules: flushed/unwarmed points and configs failing an exactness
proof stay on the python kernels, the cohort-size threshold gates the
NumPy walk, and a missing NumPy degrades to the python tier silently.
"""

import itertools

import pytest

from engine.test_kernel_parity import build_fuzz_program
from repro.analysis.tracegen import generate_trace_bundle
from repro.arch.executor import SequentialExecutor
from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.emit import columns as emit_columns
from repro.engine.kernels import TIER_ENV
from repro.experiments.runner import DESIGN_BUILDERS
from repro.uarch.config import BtuConfig, CacheConfig, CoreConfig

ALL_DESIGNS = tuple(DESIGN_BUILDERS)
COLUMNS_MIN_ENV = emit_columns.COLUMNS_MIN_ENV

pytestmark = pytest.mark.skipif(
    not emit_columns.columns_available(), reason="NumPy not installed"
)

#: A grid exercising every per-config axis the columns walk vectorizes.
GRID = [
    CoreConfig(
        rob_size=rob,
        fetch_width=width,
        issue_width=width,
        commit_width=width,
        pht_bits=pht,
        global_history_bits=pht,
    )
    for rob, width, pht in itertools.product((512, 300), (8, 4), (14, 10))
] + [
    CoreConfig(mispredict_penalty=9, frontend_depth=5),
    CoreConfig(store_forward_latency=3, alu_latency=2, div_latency=20),
    CoreConfig(btu=BtuConfig(entries=4, elements_per_entry=8)),
    CoreConfig(btb_entries=512, rsb_entries=8),
]


@pytest.fixture(scope="module", params=(2024, 9000))
def fuzz_case(request):
    program, inputs = build_fuzz_program(request.param)
    result = SequentialExecutor().run(program, memory_overrides=inputs[0])
    bundle = generate_trace_bundle(program, inputs)
    return request.param, result, bundle


def _grid_points(bundle, design, configs=GRID, **kwargs):
    policy = DESIGN_BUILDERS[design](bundle)
    return [PointSpec(policy=policy, config=cfg, **kwargs) for cfg in configs]


def _run(result, bundle, points, monkeypatch, tier, columns_min=2):
    monkeypatch.setenv(TIER_ENV, tier)
    monkeypatch.setenv(COLUMNS_MIN_ENV, str(columns_min))
    stats = BatchStats()
    sims = simulate_batch(result, bundle, points, batch_stats=stats)
    return sims, stats


def _assert_identical(a_sims, b_sims, label):
    for a, b in zip(a_sims, b_sims):
        da, db = a.stats.as_dict(), b.stats.as_dict()
        diffs = {k: (da[k], db[k]) for k in da if da[k] != db[k]}
        assert not diffs, f"{label}/{a.policy_name}: {diffs}"


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_columns_match_python_kernels_across_grid(fuzz_case, monkeypatch, design):
    seed, result, bundle = fuzz_case
    points = _grid_points(bundle, design)
    python, _ = _run(result, bundle, points, monkeypatch, "python")
    columns, stats = _run(result, bundle, points, monkeypatch, "columns")
    # Every grid config holds the exactness proofs on these traces: the
    # whole batch must have come from cohort walks, not a silent fallback.
    assert stats.columns_points == len(points)
    assert stats.kernel_points == 0
    assert stats.columns_cohorts == 1
    assert stats.columns_seconds > 0.0
    _assert_identical(python, columns, f"seed={seed}/{design}")


def test_interp_tier_agrees_on_grid_sample(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _grid_points(bundle, "cassandra", configs=GRID[:3])
    columns, _ = _run(result, bundle, points, monkeypatch, "columns")
    interp, stats = _run(result, bundle, points, monkeypatch, "interp")
    assert stats.kernel_points == 0 and stats.columns_points == 0
    _assert_identical(columns, interp, f"seed={seed}/interp")


def test_flush_and_unwarmed_points_stay_on_python_kernels(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    flushed = _grid_points(bundle, "cassandra", btu_flush_interval=100)
    cold = _grid_points(bundle, "cassandra", warmup_passes=0)
    for points, label in ((flushed, "flush"), (cold, "cold")):
        python, _ = _run(result, bundle, points, monkeypatch, "python")
        columns, stats = _run(result, bundle, points, monkeypatch, "columns")
        assert stats.columns_points == 0, label
        assert stats.columns_cohorts == 0, label
        assert stats.kernel_points == len(points), label
        _assert_identical(python, columns, f"seed={seed}/{label}")


def test_ineligible_configs_fall_back_per_point(fuzz_case, monkeypatch):
    # A 1-line L1D can never be residency-proved: those points must run on
    # python kernels while the rest of the cohort still vectorizes.
    seed, result, bundle = fuzz_case
    tiny = CoreConfig(l1d=CacheConfig(64, 64, 1, 5, name="L1D"))
    configs = GRID + [tiny]
    points = _grid_points(bundle, "spt", configs=configs)
    python, _ = _run(result, bundle, points, monkeypatch, "python")
    columns, stats = _run(result, bundle, points, monkeypatch, "columns")
    assert stats.columns_points == len(GRID)
    assert stats.kernel_points == 1
    _assert_identical(python, columns, f"seed={seed}/mixed")


def test_cohort_threshold_gates_the_walk(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _grid_points(bundle, "cassandra", configs=GRID[:4])
    _, stats = _run(
        result, bundle, points, monkeypatch, "columns", columns_min=5
    )
    assert stats.columns_cohorts == 0
    assert stats.kernel_points == len(points)


def test_missing_numpy_degrades_to_python_tier(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _grid_points(bundle, "cassandra", configs=GRID[:4])
    python, _ = _run(result, bundle, points, monkeypatch, "python")
    monkeypatch.setattr(emit_columns, "_np", None)
    assert not emit_columns.columns_available()
    columns, stats = _run(result, bundle, points, monkeypatch, "columns")
    assert stats.columns_points == 0 and stats.columns_cohorts == 0
    assert stats.kernel_points == len(points)
    _assert_identical(python, columns, f"seed={seed}/no-numpy")


def test_duplicate_configs_share_the_cohort_result(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _grid_points(bundle, "cassandra", configs=GRID[:3] * 2)
    columns, stats = _run(result, bundle, points, monkeypatch, "columns")
    # Duplicates are columns points too (the cohort covered their config);
    # they are not python-tier dedups.
    assert stats.columns_points == len(points)
    assert stats.deduped_points == 0
    _assert_identical(columns[: len(GRID[:3])], columns[len(GRID[:3]) :], "dup")
