"""Kernel IR unit tests: node rendering, transforms, and their contracts.

The end-to-end guarantee (IR → python emitter ≡ historical generator) is
pinned by the golden snapshots and the fuzz parity suite; this module tests
the IR layer in isolation — each transform's pre/post conditions, the
feature-derivation rules, and the emitter's refusal to render unlowered
trees.
"""

import pytest

from repro.engine.emit.python import render
from repro.engine.ir import (
    FEATURES,
    Block,
    BitAnd,
    Div,
    Guard,
    KernelFeatures,
    L,
    Line,
    Mod,
    ScaledDiv,
    Shl,
    Shr,
    Stat,
    build_kernel_ir,
    clear_ir_cache,
    fold_pow2,
    foldable_sites,
    guard_features,
    has_stats,
    lines,
    lower_kernel,
    specialize,
    stat,
    strip_stats,
)
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec

BPU = EnginePolicySpec(kind="bpu")
CASSANDRA = EnginePolicySpec(kind="cassandra")
LITE = EnginePolicySpec(kind="cassandra", lite=True)


# --------------------------------------------------------------------------- #
# Expression nodes
# --------------------------------------------------------------------------- #
def test_expr_rendering():
    assert Mod("addr", 64).render() == "(addr % 64)"
    assert Mod("index", 512, bare=True).render() == "index % 512"
    assert Div("line", 128).render() == "(line // 128)"
    assert ScaledDiv("pc", 4, 64).render() == "((pc * 4) // 64)"
    assert BitAnd("addr", 63).render() == "(addr & 63)"
    assert BitAnd("index", 511, bare=True).render() == "index & 511"
    assert Shr("line", 7).render() == "(line >> 7)"
    assert Shl("set_index", 3).render() == "(set_index << 3)"


def test_fold_pow2_rewrites_only_power_of_two_sites():
    body = [
        L("a = ", Mod("addr", 64)),
        L("b = ", Div("line", 128)),
        L("c = ", Mod("addr", 100)),
        Block((L("d = ", ScaledDiv("pc", 4, 64)),), indent=1),
    ]
    folded = fold_pow2(body)
    assert render(folded) == (
        "a = (addr & 63)\n"
        "b = (line >> 7)\n"
        "c = (addr % 100)\n"
        "    d = (pc >> 4)\n"
    )
    # Only the non-power-of-two site survives as a division/modulo.
    assert len(foldable_sites(folded)) == 0


def test_scaled_div_folds_to_shift_var_or_scale():
    # scale < line_bytes: net right shift; equal: the variable itself;
    # greater: net left shift — all exact for powers of two.
    assert render(fold_pow2([L("x = ", ScaledDiv("pc", 4, 64))])) == "x = (pc >> 4)\n"
    assert render(fold_pow2([L("x = ", ScaledDiv("pc", 64, 64))])) == "x = pc\n"
    assert render(fold_pow2([L("x = ", ScaledDiv("pc", 128, 64))])) == "x = (pc << 1)\n"


# --------------------------------------------------------------------------- #
# Feature derivation
# --------------------------------------------------------------------------- #
def test_derive_flush_requires_traced_kernel():
    traced = KernelFeatures.derive(CASSANDRA, flush_active=True)
    assert traced.flush
    for spec in (BPU, LITE):
        assert not KernelFeatures.derive(spec, flush_active=True).flush


@pytest.mark.parametrize("spec", [BPU, LITE])
def test_derive_rejects_elide_without_trace(spec):
    with pytest.raises(ValueError, match="btu_elide"):
        KernelFeatures.derive(spec, flush_active=False, btu_elide=True)


def test_derive_rejects_elide_under_flush():
    with pytest.raises(ValueError, match="btu_elide"):
        KernelFeatures.derive(CASSANDRA, flush_active=True, btu_elide=True)


def test_guard_rejects_unknown_feature():
    with pytest.raises(ValueError, match="unknown kernel feature"):
        Guard("warp_drive", then=(L("pass"),))


# --------------------------------------------------------------------------- #
# Transforms: pre/post conditions
# --------------------------------------------------------------------------- #
def _guarded_tree():
    return [
        L("start"),
        Guard(
            "flush",
            then=lines("flush_check()"),
            orelse=lines("no_flush()"),
        ),
        Block(
            (Guard("stats", then=(stat("n += 1"),)),),
            indent=1,
        ),
    ]


def test_specialize_splices_selected_arms_and_removes_guards():
    features = {name: False for name in FEATURES}
    off = specialize(_guarded_tree(), features)
    assert guard_features(off) == []
    assert render(strip_stats(off, True)) == "start\nno_flush()\n"

    on = specialize(_guarded_tree(), dict(features, flush=True, stats=True))
    assert guard_features(on) == []
    assert render(strip_stats(on, True)) == "start\nflush_check()\n    n += 1\n"


def test_strip_stats_unwraps_or_drops():
    body = [L("work()"), stat("counter += 1")]
    assert has_stats(body)
    kept = strip_stats(body, True)
    assert not has_stats(kept)
    assert render(kept) == "work()\ncounter += 1\n"
    dropped = strip_stats(body, False)
    assert not has_stats(dropped)
    assert render(dropped) == "work()\n"


def test_emitter_refuses_unlowered_nodes():
    with pytest.raises(TypeError, match="unlowered Guard"):
        render([Guard("flush", then=(L("x"),))])
    with pytest.raises(TypeError, match="unlowered Stat"):
        render([stat("n += 1")])


def test_lower_kernel_output_is_fully_resolved():
    features = KernelFeatures.derive(CASSANDRA, flush_active=False, btu_elide=True)
    lowered = lower_kernel(build_kernel_ir(CASSANDRA, GOLDEN_COVE_LIKE), features)
    assert guard_features(lowered) == []
    assert not has_stats(lowered)
    assert foldable_sites(lowered) == []
    # The result is genuinely renderable and compilable.
    compile(render(lowered), "<ir-test>", "exec")


def test_non_pow2_geometry_keeps_arithmetic_sites():
    # GOLDEN_COVE_LIKE's L2/L3 set counts are not powers of two, so the raw
    # tree must carry foldable-probe-visible sites that fold_pow2 leaves as
    # real divisions — the probe only reports sites it *would* rewrite.
    tree = build_kernel_ir(BPU, GOLDEN_COVE_LIKE)
    features = KernelFeatures.derive(BPU, flush_active=False)
    source = render(lower_kernel(tree, features))
    assert "% 1280" in source  # L2 sets: 1280 is not a power of two
    assert "% 64" not in source  # line offsets folded to shifts/masks


# --------------------------------------------------------------------------- #
# The IR cache
# --------------------------------------------------------------------------- #
def test_build_kernel_ir_is_cached_per_spec_config():
    clear_ir_cache()
    a = build_kernel_ir(BPU, GOLDEN_COVE_LIKE)
    b = build_kernel_ir(BPU, GOLDEN_COVE_LIKE)
    assert a is b
    c = build_kernel_ir(BPU, CoreConfig(rob_size=300))
    assert c is not a
    clear_ir_cache()
    d = build_kernel_ir(BPU, GOLDEN_COVE_LIKE)
    assert d is not a


def test_lower_kernel_does_not_mutate_the_cached_tree():
    clear_ir_cache()
    tree = build_kernel_ir(CASSANDRA, GOLDEN_COVE_LIKE)
    before = render(strip_stats(specialize(tree, KernelFeatures.derive(
        CASSANDRA, flush_active=False).as_mapping()), True))
    lower_kernel(tree, KernelFeatures.derive(CASSANDRA, flush_active=True))
    after = render(strip_stats(specialize(tree, KernelFeatures.derive(
        CASSANDRA, flush_active=False).as_mapping()), True))
    assert before == after
