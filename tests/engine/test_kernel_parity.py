"""Randomized-program fuzz parity: kernels ≡ run_trace ≡ run_reference.

The quick-suite parity tests pin the kernels to the golden models on real
crypto workloads; this suite generates small *synthetic* programs from a
seeded RNG — random arithmetic chains, masked loads and stores, public
data-dependent branches, calls/returns, and crypto regions mixing
key-independent loops (BTU-traceable), single-target calls, and
secret-dependent branches (fetch-stall) — and asserts that for every seed
the three implementations agree bit-for-bit across all seven designs,
BTU-flush intervals, and warm-up counts.

The generator deliberately produces programs unlike the curated workloads:
odd loop trip counts, branch-dense regions, stores feeding loads (to
exercise forwarding and the store queue), and traces small enough that the
full design × flush × warm-up cross product stays cheap.
"""

import random

import pytest

from repro.analysis.tracegen import generate_trace_bundle
from repro.arch.executor import SequentialExecutor
from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.kernels import KERNELS_ENV
from repro.experiments.runner import DESIGN_BUILDERS
from repro.isa.builder import ProgramBuilder
from repro.uarch.core import CoreModel

ALL_DESIGNS = tuple(DESIGN_BUILDERS)
SEEDS = (2024, 7, 9000)


def build_fuzz_program(seed: int):
    """One random program plus two confidential-input variants."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz-{seed}")

    data_len = 16
    data = [rng.randrange(1, 255) for _ in range(data_len)]
    key_len = 8
    key_a = [rng.randrange(1, 1 << 30) for _ in range(key_len)]
    key_b = [rng.randrange(1, 1 << 30) for _ in range(key_len)]
    data_addr = b.alloc("data", data)
    key_addr = b.alloc_secret("key", key_a)
    out_addr = b.alloc("out", 8)

    pool = [b.reg(f"v{i}") for i in range(6)]
    addr, idx, cond = b.regs("addr", "idx", "cond")
    for i, reg in enumerate(pool):
        b.movi(reg, rng.randrange(1, 1000) + i)

    def rand_reg():
        return rng.choice(pool)

    def arith_run(n):
        for _ in range(n):
            op = rng.choice(("add", "sub", "mul", "xor", "and_", "shl", "div"))
            dst, a = rand_reg(), rand_reg()
            if op in ("shl",):
                getattr(b, op)(dst, a, rng.randrange(1, 5))
            elif op == "div":
                b.div(dst, a, rng.randrange(2, 9))
            elif rng.random() < 0.4:
                getattr(b, op)(dst, a, rng.randrange(1, 64))
            else:
                getattr(b, op)(dst, a, rand_reg())

    def memory_op(base, length, secret=False):
        b.and_(idx, rand_reg(), length - 1)
        b.movi(addr, base)
        b.add(addr, addr, idx)
        if secret or rng.random() < 0.7:
            b.load(rand_reg(), addr)
        else:
            b.store(rand_reg(), addr)

    # A helper function exercising CALL/RET and the RSB.
    with b.function("helper") as helper:
        arith_run(3)

    segments = rng.randrange(4, 8)
    for _ in range(segments):
        kind = rng.random()
        if kind < 0.3:
            arith_run(rng.randrange(2, 8))
        elif kind < 0.5:
            memory_op(data_addr, data_len)
        elif kind < 0.6:
            b.call(helper)
        elif kind < 0.75:
            # Public data-dependent branch (BPU territory).
            b.and_(cond, rand_reg(), 1)
            with b.if_then(cond):
                arith_run(2)
                memory_op(data_addr, data_len)
        else:
            # A crypto region: a constant-trip loop (key-independent →
            # traceable), sometimes with a secret-dependent branch inside
            # (input-dependent → fetch stall under Cassandra).
            with b.crypto():
                i = b.reg("ci")
                trips = rng.randrange(2, 7)
                with b.for_range(i, 0, trips):
                    arith_run(rng.randrange(1, 4))
                    if rng.random() < 0.5:
                        memory_op(key_addr, key_len, secret=True)
                    if rng.random() < 0.4:
                        b.and_(cond, rand_reg(), 1)
                        with b.if_then(cond):
                            arith_run(1)
                if rng.random() < 0.5:
                    b.declassify(pool[0])
                b.movi(addr, out_addr)
                b.store(pool[0], addr)
    b.halt()
    program = b.build()

    def overrides(values):
        mapping = {data_addr + i: v for i, v in enumerate(data)}
        mapping.update({key_addr + i: v for i, v in enumerate(values)})
        return mapping

    return program, [overrides(key_a), overrides(key_b)]


def reference_simulate(result, bundle, design, flush=None, warmups=1):
    core = CoreModel(
        policy=DESIGN_BUILDERS[design](bundle),
        bundle=bundle,
        btu_flush_interval=flush,
    )
    for _ in range(warmups):
        core.run_reference(result.dynamic)
        core.reset_stats()
    return core.run_reference(result.dynamic)


@pytest.fixture(scope="module", params=SEEDS)
def fuzz_case(request):
    program, inputs = build_fuzz_program(request.param)
    result = SequentialExecutor().run(program, memory_overrides=inputs[0])
    bundle = generate_trace_bundle(program, inputs)
    return request.param, result, bundle


def _assert_three_way(result, bundle, points, monkeypatch, label):
    monkeypatch.setenv(KERNELS_ENV, "on")
    kernel_stats = BatchStats()
    with_kernels = simulate_batch(result, bundle, points, batch_stats=kernel_stats)
    assert kernel_stats.fallback_points == 0
    assert kernel_stats.kernel_points == len(points)
    monkeypatch.setenv(KERNELS_ENV, "off")
    with_engine = simulate_batch(result, bundle, points)
    for point, kernel_sim, engine_sim in zip(points, with_kernels, with_engine):
        reference = reference_simulate(
            result,
            bundle,
            _design_of(point, bundle),
            flush=point.btu_flush_interval,
            warmups=point.warmup_passes,
        )
        ref = reference.stats.as_dict()
        diffs = {
            key: (ref[key], kernel_sim.stats.as_dict()[key])
            for key in ref
            if kernel_sim.stats.as_dict()[key] != ref[key]
        }
        assert not diffs, f"{label}/{kernel_sim.policy_name}: kernel vs reference {diffs}"
        assert engine_sim.stats.as_dict() == ref, f"{label}: engine vs reference"


def _design_of(point, bundle):
    for design in ALL_DESIGNS:
        if DESIGN_BUILDERS[design](bundle).name == point.policy.name:
            return design
    raise AssertionError(point.policy.name)


def test_all_designs_agree(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = [
        PointSpec(policy=DESIGN_BUILDERS[design](bundle)) for design in ALL_DESIGNS
    ]
    _assert_three_way(result, bundle, points, monkeypatch, f"seed={seed}")


@pytest.mark.parametrize("flush", [100, 1500])
def test_flush_intervals_agree(fuzz_case, monkeypatch, flush):
    seed, result, bundle = fuzz_case
    points = [
        PointSpec(policy=DESIGN_BUILDERS[design](bundle), btu_flush_interval=flush)
        for design in ALL_DESIGNS
    ]
    _assert_three_way(result, bundle, points, monkeypatch, f"seed={seed}/flush={flush}")


@pytest.mark.parametrize("warmups", [0, 2])
def test_warmup_counts_agree(fuzz_case, monkeypatch, warmups):
    seed, result, bundle = fuzz_case
    points = [
        PointSpec(policy=DESIGN_BUILDERS[design](bundle), warmup_passes=warmups)
        for design in ALL_DESIGNS
    ]
    _assert_three_way(result, bundle, points, monkeypatch, f"seed={seed}/w={warmups}")
