"""Randomized-program fuzz parity for the native tier.

Mirrors ``test_kernel_parity.py`` one rung up the specialization chain: for
every fuzz seed the compiled C kernels must agree bit-for-bit with the
python kernels across all seven designs, BTU-flush intervals, and warm-up
counts — and the python kernels are themselves pinned to ``run_trace`` and
``run_reference`` by the existing three-way suite.  Each case additionally
spot-checks one design directly against ``CoreModel.run_reference`` so a
simultaneous drift of both kernel tiers cannot hide.

The batch stats are asserted alongside the numbers: every point must
actually execute natively (``native_points == len(points)``, zero
fallbacks), otherwise a silently-degraded tier would vacuously "agree".
The degraded path gets the opposite pin: with an unresolvable
``REPRO_NATIVE_CC`` the tier must fall back onto the python kernels
point-by-point and still produce identical tables.
"""

import pytest

from engine.test_kernel_parity import (
    ALL_DESIGNS,
    SEEDS,
    _design_of,
    build_fuzz_program,
    reference_simulate,
)
from repro.analysis.tracegen import generate_trace_bundle
from repro.arch.executor import SequentialExecutor
from repro.engine import native
from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.kernels import TIER_ENV
from repro.experiments.runner import DESIGN_BUILDERS

pytestmark = pytest.mark.skipif(
    not native.compiler_available(), reason="no working C toolchain"
)


@pytest.fixture(scope="module", params=SEEDS)
def fuzz_case(request):
    program, inputs = build_fuzz_program(request.param)
    result = SequentialExecutor().run(program, memory_overrides=inputs[0])
    bundle = generate_trace_bundle(program, inputs)
    return request.param, result, bundle


def _points(bundle, **kwargs):
    return [
        PointSpec(policy=DESIGN_BUILDERS[design](bundle), **kwargs)
        for design in ALL_DESIGNS
    ]


def _assert_native_parity(result, bundle, points, monkeypatch, label):
    monkeypatch.setenv(TIER_ENV, "native")
    native_stats = BatchStats()
    with_native = simulate_batch(result, bundle, points, batch_stats=native_stats)
    assert native_stats.fallback_points == 0, label
    assert native_stats.native_points == len(points), (
        label,
        native_stats.native_points,
        native.last_error,
    )
    monkeypatch.setenv(TIER_ENV, "python")
    with_python = simulate_batch(result, bundle, points)
    for point, native_sim, python_sim in zip(points, with_native, with_python):
        expected = python_sim.stats.as_dict()
        got = native_sim.stats.as_dict()
        diffs = {key: (expected[key], got[key]) for key in expected if got[key] != expected[key]}
        assert not diffs, f"{label}/{native_sim.policy_name}: native vs python {diffs}"
    # One direct reference pin per case (the full cross product would just
    # repeat test_kernel_parity's reference sweep).
    point, native_sim = points[0], with_native[0]
    reference = reference_simulate(
        result,
        bundle,
        _design_of(point, bundle),
        flush=point.btu_flush_interval,
        warmups=point.warmup_passes,
    )
    assert native_sim.stats.as_dict() == reference.stats.as_dict(), (
        f"{label}/{native_sim.policy_name}: native vs reference"
    )


def test_all_designs_agree(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _points(bundle)
    _assert_native_parity(result, bundle, points, monkeypatch, f"seed={seed}")


@pytest.mark.parametrize("flush", [100, 1500])
def test_flush_intervals_agree(fuzz_case, monkeypatch, flush):
    seed, result, bundle = fuzz_case
    points = _points(bundle, btu_flush_interval=flush)
    _assert_native_parity(
        result, bundle, points, monkeypatch, f"seed={seed}/flush={flush}"
    )


@pytest.mark.parametrize("warmups", [0, 2])
def test_warmup_counts_agree(fuzz_case, monkeypatch, warmups):
    seed, result, bundle = fuzz_case
    points = _points(bundle, warmup_passes=warmups)
    _assert_native_parity(
        result, bundle, points, monkeypatch, f"seed={seed}/w={warmups}"
    )


def test_degraded_path_falls_back_per_point(fuzz_case, monkeypatch):
    seed, result, bundle = fuzz_case
    points = _points(bundle)
    monkeypatch.setenv(TIER_ENV, "native")
    monkeypatch.setenv(native.TOOLCHAIN_ENV, "/nonexistent/cc")
    stats = BatchStats()
    degraded = simulate_batch(result, bundle, points, batch_stats=stats)
    assert stats.native_points == 0
    assert stats.kernel_points == len(points)
    assert stats.fallback_points == 0
    monkeypatch.delenv(native.TOOLCHAIN_ENV)
    monkeypatch.setenv(TIER_ENV, "python")
    with_python = simulate_batch(result, bundle, points)
    for degraded_sim, python_sim in zip(degraded, with_python):
        assert degraded_sim.stats.as_dict() == python_sim.stats.as_dict(), seed
