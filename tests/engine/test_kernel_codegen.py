"""Static analysis of the generated kernel sources.

Two layers of pinning beneath the behavioural parity suites:

* **golden snapshots** — eight representative (spec × config × feature)
  corners rendered byte-for-byte against checked-in files (regenerate via
  ``PYTHONPATH=src:tests python -m engine.golden_cases`` after an
  *intentional* codegen change);
* **full-product compilability** — every kernel variant across the policy
  family × config × flush × residency × elide × stats product must parse
  (``ast.parse``) and byte-compile, and basic structural invariants of the
  specialization must hold (dead policy code absent, residency deleting
  cache models, stats variants dropping counters).
"""

import ast
import itertools

import pytest

from engine.golden_cases import GOLDEN_CASES, GOLDEN_DIR, render_case
from repro.engine.kernels import kernel_source
from repro.uarch.config import GOLDEN_COVE_LIKE, BtuConfig, CacheConfig, CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec

F_LOAD, F_SECRET, F_LEAK = 1, 16, 32

SPECS = {
    "unsafe": EnginePolicySpec(kind="bpu"),
    "spt": EnginePolicySpec(
        kind="bpu", gate_mask=F_LOAD | F_LEAK, allow_store_forwarding=False
    ),
    "prospect": EnginePolicySpec(kind="bpu", gate_mask=F_SECRET),
    "cassandra": EnginePolicySpec(kind="cassandra"),
    "cassandra-nofwd": EnginePolicySpec(
        kind="cassandra", allow_store_forwarding=False
    ),
    "cassandra-lite": EnginePolicySpec(kind="cassandra", lite=True),
    "cassandra+prospect": EnginePolicySpec(kind="cassandra", gate_mask=F_SECRET),
}

CONFIGS = {
    "golden-cove": GOLDEN_COVE_LIKE,
    "rob-300": CoreConfig(rob_size=300),
    "pht-10b": CoreConfig(pht_bits=10, global_history_bits=10),
    "btu-4x8": CoreConfig(btu=BtuConfig(entries=4, elements_per_entry=8)),
    "l1d-32k-8w": CoreConfig(l1d=CacheConfig(32 * 1024, 64, 8, 5, name="L1D")),
}


def _variants():
    for (sname, spec), (cname, config) in itertools.product(
        SPECS.items(), CONFIGS.items()
    ):
        traced = spec.kind == "cassandra" and not spec.lite
        for flush, ic, dc, elide, stats in itertools.product(
            (False, True), repeat=5
        ):
            if elide and (not traced or flush):
                continue  # rejected by KernelFeatures.derive
            yield sname, spec, cname, config, flush, ic, dc, elide, stats


def test_every_variant_parses_and_compiles():
    count = 0
    for sname, spec, cname, config, flush, ic, dc, elide, stats in _variants():
        source = kernel_source(
            spec,
            config,
            flush_active=flush,
            icache_resident=ic,
            dcache_resident=dc,
            btu_elide=elide,
            collect_stats=not stats,
        )
        label = f"{sname}/{cname} flush={flush} ic={ic} dc={dc} elide={elide}"
        tree = ast.parse(source)
        # Exactly one top-level function named `kernel`.
        assert [n.name for n in tree.body if isinstance(n, ast.FunctionDef)] == [
            "kernel"
        ], label
        compile(source, f"<codegen:{label}>", "exec")
        count += 1
    # The product is the suite's coverage claim; a silent shrink (e.g. a
    # variant axis wired to a constant) should fail loudly.  Per config:
    # 3 traced specs × 24 legal axis combos + 4 others × 16.
    assert count == (3 * 24 + 4 * 16) * len(CONFIGS)


@pytest.mark.parametrize("sname", ["unsafe", "spt", "prospect", "cassandra-lite"])
def test_dead_policy_code_is_absent(sname):
    spec = SPECS[sname]
    source = kernel_source(spec, GOLDEN_COVE_LIKE, flush_active=False)
    if spec.kind == "bpu":
        for needle in ("plan_cls[", "btu_pos", "n_integrity"):
            assert needle not in source, (sname, needle)
    if spec.lite:
        assert "btu_targets[" not in source
    if not spec.gate_mask:
        assert "window_resolve_cycle > ready" not in source
    if spec.allow_store_forwarding:
        assert "n_stl_blocked" not in source
    else:
        assert "n_forwards" not in source


def test_residency_deletes_cache_models():
    spec = SPECS["unsafe"]
    full = kernel_source(spec, GOLDEN_COVE_LIKE, flush_active=False)
    resident = kernel_source(
        spec,
        GOLDEN_COVE_LIKE,
        flush_active=False,
        icache_resident=True,
        dcache_resident=True,
    )
    for needle in ("l1i_index", "l2_sets", "l3_sets", "l1d_index"):
        assert needle in full
        assert needle not in resident
    assert '"l1d_miss": 0' in resident
    assert '"l1i_miss": 0' in resident


def test_warm_variant_drops_dynamic_counters():
    source = kernel_source(
        SPECS["cassandra"], GOLDEN_COVE_LIKE, flush_active=False, collect_stats=False
    )
    for needle in ("n_cond_mis", "squash_cycles +=", "n_btu_misses"):
        assert needle not in source
    assert "return None" in source


# --------------------------------------------------------------------------- #
# Golden snapshots
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_snapshot(name):
    path = GOLDEN_DIR / f"{name}.py.txt"
    assert path.exists(), (
        f"missing snapshot {path}; regenerate with "
        "PYTHONPATH=src:tests python -m engine.golden_cases"
    )
    assert render_case(name) == path.read_text(), (
        f"kernel codegen drifted for {name!r}; if intentional, regenerate "
        "snapshots with PYTHONPATH=src:tests python -m engine.golden_cases"
    )
