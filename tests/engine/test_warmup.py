"""Warm-up sharing: once per (workload × config), not once per policy.

These tests pin the PR-2 interpreter path's sharing machinery (component
walks, snapshot round-trips, the forwarding exactness guard), so they run
with ``REPRO_ENGINE_KERNELS=off``.  The generated-kernel path shares *more*
(residency proofs skip whole component walks and measured-pass dedup skips
whole points); its warm-up behaviour is asserted separately in
``tests/engine/test_engine_kernels.py``.
"""

import pytest

from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.kernels import KERNELS_ENV
from repro.engine.warmup import WarmStateBuilder
from repro.experiments.runner import DESIGN_BUILDERS, prepare_workload
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.caches import Cache, CacheHierarchy
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig


@pytest.fixture(autouse=True)
def _interpreter_path(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "off")

ALL_DESIGNS = tuple(DESIGN_BUILDERS)

#: A workload whose memory-access pattern makes the shared d-cache replay
#: provably exact under store forwarding (``forwarding_shareable() is
#: True``), so every policy shares every warm component.
SHAREABLE_WORKLOAD = "ModPow_i31"


@pytest.fixture(scope="module")
def artifact():
    art = prepare_workload(SHAREABLE_WORKLOAD)
    return art


def _fresh_batch(artifact, **point_kwargs):
    if hasattr(artifact.result, "_lowered_trace"):
        del artifact.result._lowered_trace
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](artifact.bundle), **point_kwargs)
        for design in ALL_DESIGNS
    ]
    batch_stats = BatchStats()
    simulate_batch(artifact.result, artifact.bundle, specs, batch_stats=batch_stats)
    return batch_stats


def test_warmup_runs_once_per_workload_and_config(artifact):
    """Seven policies, zero full warm-up passes, one walk per component class.

    The legacy path pays 7 full warm-up simulations (one per policy).  The
    batch warms each component once per (workload, config): one icache walk,
    one d-cache walk, one BPU walk per branch-subsequence class ("all" for
    the BPU policies, "noncrypto" for the Cassandra family), and one BTU
    replay walk — five trace walks total, shared by all seven measured
    passes.
    """
    stats = _fresh_batch(artifact)
    assert stats.points == len(ALL_DESIGNS)
    assert stats.measured_passes == len(ALL_DESIGNS)
    assert stats.full_warmup_passes == 0
    assert stats.forwarding_private_points == 0
    assert stats.warmup_component_walks == 5
    assert stats.lowerings == 1  # the trace was lowered exactly once


def test_warmup_zero_passes_builds_no_state(artifact):
    stats = _fresh_batch(artifact, warmup_passes=0)
    assert stats.full_warmup_passes == 0
    assert stats.warmup_component_walks == 0


def test_flush_interval_points_warm_privately(artifact):
    """Cycle-triggered BTU flushes make warm-up policy-private — but only
    for the policies that actually replay the BTU (cassandra, +stl,
    +prospect); everyone else still shares components."""
    stats = _fresh_batch(artifact, btu_flush_interval=500)
    assert stats.full_warmup_passes == 3
    # bpu-kind policies + lite still share: icache, dcache, bpu(all),
    # bpu(noncrypto) — no BTU replay walk is needed by any of them.
    assert stats.warmup_component_walks == 4


def test_second_batch_reuses_lowering(artifact):
    _fresh_batch(artifact)
    specs = [PointSpec(policy=DESIGN_BUILDERS["spt"](artifact.bundle))]
    stats = BatchStats()
    simulate_batch(artifact.result, artifact.bundle, specs, batch_stats=stats)
    assert stats.lowerings == 0  # memoized on the ExecutionResult


def test_component_walks_scale_with_warmup_passes(artifact):
    stats = _fresh_batch(artifact, warmup_passes=2)
    assert stats.full_warmup_passes == 0
    assert stats.warmup_component_walks == 10  # 5 classes x 2 passes


# --------------------------------------------------------------------------- #
# Snapshot / restore round-trips
# --------------------------------------------------------------------------- #
def test_cache_snapshot_roundtrip():
    cache = Cache(GOLDEN_COVE_LIKE.l1d)
    for address in (0, 64, 128, 4096, 64):
        cache.access(address)
    snap = cache.snapshot_state()
    probe_addresses = (0, 64, 128, 4096, 8192)
    expected = [cache.probe(a) for a in probe_addresses]

    other = Cache(GOLDEN_COVE_LIKE.l1d)
    other.restore_state(snap)
    assert [other.probe(a) for a in probe_addresses] == expected
    # The snapshot is a copy: mutating the restored cache must not leak back.
    other.access(8192)
    assert not cache.probe(8192)


def test_bpu_snapshot_roundtrip():
    from repro.engine.lowering import B_COND

    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    for taken in (True, True, False, True):
        predicted = bpu.predict_class(B_COND, 10, 20 if taken else 11)
        bpu.update_class(B_COND, 10, 20 if taken else 11, taken, predicted)
    snap = bpu.snapshot_state()

    other = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    other.restore_state(snap)
    assert other.predict_class(B_COND, 10, 20) == bpu.predict_class(B_COND, 10, 20)
    assert other._pht == bpu._pht
    assert other._history == bpu._history


def test_hierarchy_snapshot_covers_all_levels():
    config = CoreConfig()
    hierarchy = CacheHierarchy(config)
    hierarchy.load_latency(12345)  # misses all the way to memory
    snap = hierarchy.snapshot_state()
    other = CacheHierarchy(config)
    other.restore_state(snap)
    address = 12345 * config.word_bytes
    assert other.l1d.probe(address)
    assert other.l2.probe(address)
    assert other.l3.probe(address)


def test_builder_caches_component_snapshots(artifact):
    from repro.engine.lowering import lower_execution
    from repro.uarch.btu import BranchTraceUnit

    trace = lower_execution(artifact.result)
    hint_table = artifact.bundle.hint_table

    def btu_factory():
        return BranchTraceUnit(
            GOLDEN_COVE_LIKE.btu, artifact.bundle.hardware_traces(), hint_table
        )

    builder = WarmStateBuilder(trace, GOLDEN_COVE_LIKE, hint_table, btu_factory)
    first = builder._icache_state(1)
    assert builder._icache_state(1) is first
    assert builder.component_walks == 1
    builder._bpu_state("all", 1)
    builder._bpu_state("all", 1)
    assert builder.component_walks == 2


# --------------------------------------------------------------------------- #
# Store-forwarding exactness guard
# --------------------------------------------------------------------------- #
def _forwarding_divergent_execution():
    """A stream where skipping a forwarded load's d-cache access matters.

    L1D: 64 sets, 12 ways, 64-byte lines, 8-byte words -> word addresses
    512 apart share a set.  A long-latency DIV feeds a store, so the load
    of the same address right after it forwards (and skips its cache
    access) in the reference warm-up; an interleaved same-set load between
    them makes that skip change the set's LRU order, and eleven more
    same-set lines overflow the 12 ways by exactly one, so the two orders
    evict *different* victims and the measured pass diverges.
    """
    from repro.arch.executor import SequentialExecutor
    from repro.isa.builder import ProgramBuilder

    base = 4096  # word address; (4096 // 8) % 64 == 0 -> set 0
    b = ProgramBuilder("fwd-divergent")
    x, y, v, addr = b.regs("x", "y", "v", "addr")
    b.movi(x, 7)
    b.movi(y, 3)
    b.div(v, x, y)  # long latency: keeps the store in flight
    b.movi(addr, base)
    b.store(v, addr)  # store A
    b.movi(addr, base + 512)
    b.load(v, addr)  # load B: intervening access to A's set
    b.movi(addr, base)
    b.load(v, addr)  # load A: forwarded -> reference skips the access
    for line in range(2, 13):  # eleven more lines overflow the 12 ways by one
        b.movi(addr, base + 512 * line)
        b.load(v, addr)
    # The warm pass now ends with either A's or B's line evicted depending
    # on whether load A's access was skipped; the measured pass re-runs the
    # same stream and its load B hits or misses accordingly.
    b.halt()
    program = b.build()
    return program, SequentialExecutor().run(program)


def test_forwarding_divergent_stream_is_detected_and_stays_bit_identical():
    from repro.engine.lowering import lower_execution
    from repro.uarch.core import CoreModel
    from repro.uarch.defenses.unsafe import UnsafeBaseline

    program, result = _forwarding_divergent_execution()
    trace = lower_execution(result)
    builder = WarmStateBuilder(trace, GOLDEN_COVE_LIKE)
    assert builder.forwarding_shareable() is False

    # The shared no-skip replay genuinely diverges from the reference
    # warm-up here: the guard is load-bearing, not just conservative.
    reference_core = CoreModel(policy=UnsafeBaseline())
    reference_core.run_reference(result.dynamic)
    assert builder._dcache_state(1) != reference_core.caches.snapshot_state()

    # simulate_batch must therefore warm this point privately and still
    # reproduce the reference path bit-for-bit.
    batch_stats = BatchStats()
    simulations = simulate_batch(
        result, None, [PointSpec(policy=UnsafeBaseline())], batch_stats=batch_stats
    )
    assert batch_stats.forwarding_private_points == 1
    assert batch_stats.full_warmup_passes == 1

    reference_core.reset_stats()
    reference = reference_core.run_reference(result.dynamic)
    assert simulations[0].stats.as_dict() == reference.stats.as_dict()


def test_no_forwarding_policies_always_share_despite_divergent_stream():
    from repro.experiments.runner import prepare_workload as _unused  # noqa: F401

    _program, result = _forwarding_divergent_execution()
    batch_stats = BatchStats()
    simulate_batch(
        result,
        None,
        [PointSpec(policy=DESIGN_BUILDERS["spt"](None))],
        batch_stats=batch_stats,
    )
    # SPT never forwards, so every load hits the cache in its warm-up too:
    # the shared replay stays exact and no private pass is needed.
    assert batch_stats.forwarding_private_points == 0
    assert batch_stats.full_warmup_passes == 0
    assert batch_stats.warmup_component_walks == 3  # icache + dcache + bpu
