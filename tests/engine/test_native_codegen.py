"""Static analysis + compilability of the generated C kernel sources.

Mirrors ``test_kernel_codegen.py`` for the native tier's emitter:

* **golden snapshots** — the same eight representative corners rendered to C
  and pinned byte-for-byte (``tests/engine/golden/<name>.c.txt``; regenerate
  with ``PYTHONPATH=src:tests python -m engine.golden_cases``);
* **full-product emit** — every variant of the policy family × config ×
  flush × residency × elide × stats product must render (this leg needs no
  compiler, so it also guards the stdlib-only environments);
* **full-product syntax sweep** — the unique translation units of that
  product must pass ``cc -fsyntax-only`` (the parity suite exercises real
  compiles; this pins the long tail of variants no fuzz case selects);
* the **degraded path** (an unresolvable ``REPRO_NATIVE_CC`` must disable
  the tier without raising) and the ``clear_kernel_cache`` chain.
"""

import subprocess

import pytest

from engine.golden_cases import GOLDEN_CASES, GOLDEN_DIR, render_c_case
from engine.test_kernel_codegen import CONFIGS, SPECS, _variants
from repro.engine import native
from repro.engine.emit import c as emit_c
from repro.engine.emit.c import ARG, c_kernel_source, source_digest
from repro.engine.kernels import clear_kernel_cache, get_kernel
from repro.uarch.config import GOLDEN_COVE_LIKE

needs_compiler = pytest.mark.skipif(
    not native.compiler_available(), reason="no working C toolchain"
)


def _render(spec, config, flush, ic, dc, elide, stats):
    return c_kernel_source(
        spec,
        config,
        flush_active=flush,
        icache_resident=ic,
        dcache_resident=dc,
        btu_elide=elide,
        collect_stats=not stats,
    )


def test_every_variant_renders():
    count = 0
    for sname, spec, cname, config, flush, ic, dc, elide, stats in _variants():
        source = _render(spec, config, flush, ic, dc, elide, stats)
        label = f"{sname}/{cname} flush={flush} ic={ic} dc={dc} elide={elide}"
        assert "int64_t kernel(int64_t *a)" in source, label
        assert source.count("int64_t kernel") == 1, label
        count += 1
    # Same coverage claim as the python sweep: a silent shrink of the
    # variant product should fail loudly.
    assert count == (3 * 24 + 4 * 16) * len(CONFIGS)


@needs_compiler
def test_every_variant_syntax_checks(tmp_path):
    # Distinct variants can fold to identical translation units (e.g. the
    # flush axis is forced off for non-traced specs), so the compiler only
    # sees each unique source once.
    unique = {}
    for _sname, spec, _cname, config, flush, ic, dc, elide, stats in _variants():
        source = _render(spec, config, flush, ic, dc, elide, stats)
        unique.setdefault(source_digest(source), source)
    paths = []
    for i, source in enumerate(unique.values()):
        path = tmp_path / f"k{i}.c"
        path.write_text(source)
        paths.append(str(path))
    toolchain = native.find_toolchain()
    for start in range(0, len(paths), 64):
        chunk = paths[start : start + 64]
        proc = subprocess.run(
            [toolchain.path, "-fsyntax-only", "-w", *chunk],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


@pytest.mark.parametrize("sname", ["unsafe", "spt", "prospect", "cassandra-lite"])
def test_dead_policy_code_is_absent(sname):
    spec = SPECS[sname]
    source = c_kernel_source(spec, GOLDEN_COVE_LIKE, flush_active=False)
    if spec.kind == "bpu":
        for needle in ("plan_cls", "btu_pos", "n_integrity"):
            assert needle not in source, (sname, needle)
    if spec.lite:
        assert "tgt_off" not in source
        assert "tgt_data" not in source
    if not spec.gate_mask:
        assert "window_resolve_cycle > ready" not in source
    if spec.allow_store_forwarding:
        assert "n_stl_blocked" not in source
    else:
        assert "n_forwards" not in source


def test_residency_deletes_cache_models():
    spec = SPECS["unsafe"]
    full = c_kernel_source(spec, GOLDEN_COVE_LIKE, flush_active=False)
    resident = c_kernel_source(
        spec,
        GOLDEN_COVE_LIKE,
        flush_active=False,
        icache_resident=True,
        dcache_resident=True,
    )
    for needle in ("seg_find(l1i", "seg_find(l1d", "l2_set", "l3_set"):
        assert needle in full
        assert needle not in resident
    # The residency-proved variants still zero their miss counter slots.
    assert f"a[{ARG['counter_l1i_miss']}] = 0;" in resident
    assert f"a[{ARG['counter_l1d_miss']}] = 0;" in resident


def test_warm_variant_drops_counter_writes():
    warm = c_kernel_source(
        SPECS["cassandra"], GOLDEN_COVE_LIKE, flush_active=False, collect_stats=False
    )
    stats = c_kernel_source(SPECS["cassandra"], GOLDEN_COVE_LIKE, flush_active=False)
    for name in ("counter_cycles", "counter_squash_cycles", "counter_btu_misses"):
        slot = f"a[{ARG[name]}] ="
        assert slot in stats, name
        assert slot not in warm, name
    # ... but keeps the persistent-state writebacks the next pass chains on.
    for name in ("history", "btb_head", "rsb_head", "loop_n"):
        assert f"a[{ARG[name]}] =" in warm, name


def test_source_digest_tracks_abi_and_content():
    a = c_kernel_source(SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False)
    b = c_kernel_source(SPECS["cassandra"], GOLDEN_COVE_LIKE, flush_active=False)
    assert source_digest(a) == source_digest(a)
    assert source_digest(a) != source_digest(b)


def test_degraded_path_without_compiler(monkeypatch):
    monkeypatch.setenv(native.TOOLCHAIN_ENV, "/nonexistent/cc")
    assert native.find_toolchain() is None
    assert not native.compiler_available()
    kernel = native.get_native_kernel(
        SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False
    )
    assert kernel is None
    assert native.last_error


@needs_compiler
def test_native_kernel_memo_and_artifact_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_kernel_cache()
    before = native.compile_count
    first = native.get_native_kernel(
        SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False
    )
    assert first is not None
    assert native.compile_count == before + 1
    # Same point again: served from the in-process memo, no new compile.
    again = native.get_native_kernel(
        SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False
    )
    assert again is first
    assert native.compile_count == before + 1
    # Memo cleared but the .so bytes are still content-addressed on disk:
    # the reload counts as a cache hit, not a compile.
    hits = native.cache_hits
    native.clear_native_memo()
    warm = native.get_native_kernel(
        SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False
    )
    assert warm is not None
    assert native.compile_count == before + 1
    assert native.cache_hits == hits + 1


def test_clear_kernel_cache_chains_every_layer():
    from repro.engine import ir, kernels

    get_kernel(SPECS["unsafe"], GOLDEN_COVE_LIKE, flush_active=False)
    emit_c.build_c_kernel_ir(SPECS["unsafe"], GOLDEN_COVE_LIKE)
    native._KERNEL_MEMO[("sentinel",)] = None
    assert kernels._KERNEL_CACHE and ir._IR_CACHE and emit_c._C_IR_CACHE
    clear_kernel_cache()
    assert not kernels._KERNEL_CACHE
    assert not ir._IR_CACHE
    assert not emit_c._C_IR_CACHE
    assert not native._KERNEL_MEMO


# --------------------------------------------------------------------------- #
# Golden snapshots
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_c_golden_snapshot(name):
    path = GOLDEN_DIR / f"{name}.c.txt"
    assert path.exists(), (
        f"missing snapshot {path}; regenerate with "
        "PYTHONPATH=src:tests python -m engine.golden_cases"
    )
    assert render_c_case(name) == path.read_text(), (
        f"C kernel codegen drifted for {name!r}; if intentional, regenerate "
        "snapshots with PYTHONPATH=src:tests python -m engine.golden_cases"
    )
