"""Generated-kernel machinery: tier switch, specialization, dedup, state.

``tests/engine/test_parity.py`` pins the kernels' *results* to the golden
models across the quick suite; this module pins the machinery itself — the
``REPRO_ENGINE_TIER`` switch (and its legacy ``REPRO_ENGINE_KERNELS``
spellings), the per-(spec × config) compilation cache, the dead-code and
residency specialization of the generated source, the measured-pass dedup,
the per-tier batch accounting, and the flat-state conversions.
"""

import pytest

from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.kernels import (
    ENGINE_TIERS,
    KERNELS_ENV,
    TIER_ENV,
    engine_tier,
    get_kernel,
    kernel_source,
    kernels_enabled,
)
from repro.engine.state import (
    FlatState,
    flat_bpu_from_snapshot,
    flat_btu_from_snapshot,
    flat_cache_from_sets,
    flat_cache_to_sets,
)
from repro.experiments.runner import DESIGN_BUILDERS, prepare_workload
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.core import CoreModel
from repro.uarch.defenses.base import EnginePolicySpec

ALL_DESIGNS = tuple(DESIGN_BUILDERS)


@pytest.fixture(scope="module")
def artifact():
    return prepare_workload("ModPow_i31")


def _batch(artifact, **point_kwargs):
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](artifact.bundle), **point_kwargs)
        for design in ALL_DESIGNS
    ]
    stats = BatchStats()
    sims = simulate_batch(artifact.result, artifact.bundle, specs, batch_stats=stats)
    return sims, stats


# --------------------------------------------------------------------------- #
# The REPRO_ENGINE_KERNELS escape hatch
# --------------------------------------------------------------------------- #
def test_escape_hatch_disables_kernels_and_preserves_results(artifact, monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "on")
    assert kernels_enabled()
    with_kernels, stats_on = _batch(artifact)
    assert stats_on.kernel_points == len(ALL_DESIGNS)

    monkeypatch.setenv(KERNELS_ENV, "off")
    assert not kernels_enabled()
    without, stats_off = _batch(artifact)
    # The fallback really is the PR-2 run_trace path: no kernel ran...
    assert stats_off.kernel_points == 0
    assert stats_off.deduped_points == 0
    assert stats_off.measured_passes == len(ALL_DESIGNS)
    # ...and the results are bit-identical either way.
    for a, b in zip(with_kernels, without):
        assert a.stats.as_dict() == b.stats.as_dict()
        assert a.policy_name == b.policy_name


@pytest.mark.parametrize("value", ["off", "0", "false", "no", " OFF "])
def test_escape_hatch_values(monkeypatch, value):
    monkeypatch.delenv(TIER_ENV, raising=False)
    monkeypatch.setenv(KERNELS_ENV, value)
    assert engine_tier() == "interp"
    assert not kernels_enabled()


@pytest.mark.parametrize("value", ["on", "1", "true", "yes", "anything"])
def test_legacy_on_spellings_pin_the_python_tier(monkeypatch, value):
    monkeypatch.delenv(TIER_ENV, raising=False)
    monkeypatch.setenv(KERNELS_ENV, value)
    assert engine_tier() == "python"
    assert kernels_enabled()


def test_kernels_enabled_by_default(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    monkeypatch.delenv(TIER_ENV, raising=False)
    assert engine_tier() == "columns"
    assert kernels_enabled()


@pytest.mark.parametrize("tier", ENGINE_TIERS)
def test_tier_env_explicit_values(monkeypatch, tier):
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    monkeypatch.setenv(TIER_ENV, tier)
    assert engine_tier() == tier
    monkeypatch.setenv(TIER_ENV, f"  {tier.upper()}  ")
    assert engine_tier() == tier
    assert kernels_enabled() == (tier != "interp")


def test_tier_env_rejects_unknown_values(monkeypatch):
    monkeypatch.setenv(TIER_ENV, "turbo")
    with pytest.raises(ValueError, match=TIER_ENV):
        engine_tier()


def test_tier_env_takes_precedence_over_legacy(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "off")
    monkeypatch.setenv(TIER_ENV, "python")
    assert engine_tier() == "python"
    monkeypatch.setenv(KERNELS_ENV, "on")
    monkeypatch.setenv(TIER_ENV, "interp")
    assert engine_tier() == "interp"


def test_batch_attribution_counters_per_tier(artifact, monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)

    monkeypatch.setenv(TIER_ENV, "python")
    _, python_stats = _batch(artifact)
    assert python_stats.kernel_points == len(ALL_DESIGNS)
    assert python_stats.columns_points == 0
    assert python_stats.columns_cohorts == 0

    monkeypatch.setenv(TIER_ENV, "interp")
    _, interp_stats = _batch(artifact)
    assert interp_stats.kernel_points == 0
    assert interp_stats.columns_points == 0

    # Every tier's accounting ends up in the wire/bench dict.
    for key in ("kernel_points", "columns_points", "columns_cohorts",
                "columns_seconds"):
        assert key in python_stats.as_dict()


# --------------------------------------------------------------------------- #
# Compilation cache and source specialization
# --------------------------------------------------------------------------- #
def test_kernel_cache_returns_same_callable():
    spec = EnginePolicySpec(kind="bpu")
    first = get_kernel(spec, GOLDEN_COVE_LIKE, False)
    assert get_kernel(spec, GOLDEN_COVE_LIKE, False) is first
    assert "def kernel(" in first.__repro_source__
    # A different config digest compiles (and caches) a different kernel.
    other = get_kernel(spec, CoreConfig(rob_size=128), False)
    assert other is not first


def test_dead_policy_code_is_dropped_at_generation_time():
    bpu = kernel_source(EnginePolicySpec(kind="bpu"), GOLDEN_COVE_LIKE, False)
    assert "btu_pos" not in bpu  # no Cassandra fetch flow at all
    assert "plan_cls[pc]" not in bpu
    assert "window_resolve_cycle > ready" not in bpu  # no gate test
    gated = kernel_source(
        EnginePolicySpec(kind="bpu", gate_mask=16), GOLDEN_COVE_LIKE, False
    )
    assert "window_resolve_cycle > ready" in gated
    no_fwd = kernel_source(
        EnginePolicySpec(kind="bpu", allow_store_forwarding=False),
        GOLDEN_COVE_LIKE,
        False,
    )
    assert "n_stl_blocked" in no_fwd and "n_forwards" not in no_fwd
    lite = kernel_source(
        EnginePolicySpec(kind="cassandra", lite=True), GOLDEN_COVE_LIKE, False
    )
    assert "btu_targets" not in lite  # lite never replays traces


def test_residency_proofs_delete_cache_models():
    spec = EnginePolicySpec(kind="bpu")
    full = kernel_source(spec, GOLDEN_COVE_LIKE, False)
    assert "state.l1i" in full and "state.l1d" in full
    resident = kernel_source(
        spec, GOLDEN_COVE_LIKE, False, icache_resident=True, dcache_resident=True
    )
    assert "state.l1i" not in resident
    assert "state.l1d" not in resident
    assert "l2_sets" not in resident
    assert "except ValueError" not in resident  # no cache probe remains


def test_flush_check_compiled_only_when_active():
    spec = EnginePolicySpec(kind="cassandra")
    without = kernel_source(spec, GOLDEN_COVE_LIKE, False)
    assert "next_btu_flush" not in without
    with_flush = kernel_source(spec, GOLDEN_COVE_LIKE, True)
    assert "next_btu_flush" in with_flush


def test_btu_elide_requires_traced_flushless_kernel():
    with pytest.raises(ValueError):
        kernel_source(
            EnginePolicySpec(kind="bpu"), GOLDEN_COVE_LIKE, False, btu_elide=True
        )
    with pytest.raises(ValueError):
        kernel_source(
            EnginePolicySpec(kind="cassandra"), GOLDEN_COVE_LIKE, True, btu_elide=True
        )


def test_warm_kernels_carry_no_counters():
    warm = kernel_source(
        EnginePolicySpec(kind="cassandra"), GOLDEN_COVE_LIKE, False, collect_stats=False
    )
    assert "return None" in warm
    assert "n_btu_misses" not in warm
    assert "squash_cycles" not in warm


# --------------------------------------------------------------------------- #
# Kernel-path warm-up sharing (stronger than the PR-2 interpreter's)
# --------------------------------------------------------------------------- #
def test_residency_skips_cache_component_walks(artifact, monkeypatch):
    """ModPow fits both L1s, so only the BPU/BTU replays run at all."""
    monkeypatch.setenv(KERNELS_ENV, "on")
    if hasattr(artifact.result, "_lowered_trace"):
        del artifact.result._lowered_trace
    _sims, stats = _batch(artifact)
    assert stats.full_warmup_passes == 0
    # bpu(all) + bpu(noncrypto) + btu(replay); no icache/dcache walks.
    assert stats.warmup_component_walks == 3
    assert stats.kernel_points == len(ALL_DESIGNS)


def test_flush_points_still_warm_privately_on_kernels(artifact, monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "on")
    _sims, stats = _batch(artifact, btu_flush_interval=500)
    # The three trace-replaying designs (cassandra, +stl, +prospect) need
    # cycle-exact private warm-up, on the kernels too.
    assert stats.full_warmup_passes == 3


def test_zero_flush_interval_means_disabled_on_both_paths(artifact, monkeypatch):
    """Regression: the reference loop treats a falsy interval as "no
    flushing"; an early kernel build compiled the flush check in for
    interval 0 and flushed the BTU every instruction."""
    monkeypatch.setenv(KERNELS_ENV, "on")
    zero, stats_zero = _batch(artifact, btu_flush_interval=0)
    disabled, _ = _batch(artifact, btu_flush_interval=None)
    for a, b in zip(zero, disabled):
        assert a.stats.as_dict() == b.stats.as_dict()
    assert stats_zero.full_warmup_passes == 0  # nothing is cycle-dependent
    monkeypatch.setenv(KERNELS_ENV, "off")
    interpreter, _ = _batch(artifact, btu_flush_interval=0)
    for a, b in zip(zero, interpreter):
        assert a.stats.as_dict() == b.stats.as_dict()


# --------------------------------------------------------------------------- #
# Measured-pass dedup via spec canonicalization
# --------------------------------------------------------------------------- #
def _storeless_execution():
    """A program with loads but no stores: forwarding provably irrelevant."""
    from repro.arch.executor import SequentialExecutor
    from repro.isa.builder import ProgramBuilder

    b = ProgramBuilder("storeless")
    data = b.alloc("data", [3, 1, 4, 1, 5, 9, 2, 6])
    i, addr, val, acc = b.regs("i", "addr", "val", "acc")
    b.movi(acc, 0)
    with b.for_range(i, 0, 8):
        b.movi(addr, data)
        b.add(addr, addr, i)
        b.load(val, addr)
        b.add(acc, acc, val)
        b.mul(acc, acc, 3)
    b.halt()
    program = b.build()
    return program, SequentialExecutor().run(program)


def test_storeless_trace_dedups_forwarding_and_gate_variants(monkeypatch):
    monkeypatch.setenv(KERNELS_ENV, "on")
    _program, result = _storeless_execution()
    assert not any(dyn.is_store for dyn in result.dynamic)
    # spt differs from unsafe only through forwarding (irrelevant: no
    # stores) and its load/leak issue gate... which loads *do* make
    # relevant, so spt stays its own point; prospect's F_SECRET gate
    # matches nothing here and dedups onto the unsafe baseline.
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](None))
        for design in ("unsafe-baseline", "prospect", "spt")
    ]
    stats = BatchStats()
    sims = simulate_batch(result, None, specs, batch_stats=stats)
    assert stats.deduped_points == 1
    assert sims[0].stats.as_dict() == sims[1].stats.as_dict()
    assert sims[1].policy_name == "prospect"
    # The deduped result is still bit-identical to the reference loop.
    for design, sim in zip(("unsafe-baseline", "prospect", "spt"), sims):
        core = CoreModel(policy=DESIGN_BUILDERS[design](None))
        core.run_reference(result.dynamic)
        core.reset_stats()
        reference = core.run_reference(result.dynamic)
        assert sim.stats.as_dict() == reference.stats.as_dict(), design


# --------------------------------------------------------------------------- #
# Flat-state conversions
# --------------------------------------------------------------------------- #
def test_flat_cache_roundtrip_preserves_lru_order():
    sets = {0: [7, 3, 9], 5: [1], 63: [2, 4]}
    flat = flat_cache_from_sets(sets, num_sets=64, associativity=4)
    assert flat_cache_to_sets(flat, 64, 4) == sets
    # LRU→MRU order is right-aligned in each segment, padding on the left.
    assert list(flat[0:4]) == [-1, 7, 3, 9]
    assert list(flat[5 * 4 : 5 * 4 + 4]) == [-1, -1, -1, 1]


def test_flat_cache_rejects_overfull_set():
    with pytest.raises(ValueError):
        flat_cache_from_sets({0: [1, 2, 3]}, num_sets=4, associativity=2)


def test_flat_bpu_and_btu_snapshot_conversions():
    from repro.engine.lowering import B_COND
    from repro.uarch.bpu import BranchPredictionUnit

    bpu = BranchPredictionUnit(GOLDEN_COVE_LIKE)
    for taken in (True, True, False):
        predicted = bpu.predict_class(B_COND, 10, 20 if taken else 11)
        bpu.update_class(B_COND, 10, 20 if taken else 11, taken, predicted)
    pht, history, btb, rsb, loops = flat_bpu_from_snapshot(bpu.snapshot_state())
    assert history == bpu._history
    assert btb == bpu._btb
    assert loops[10] == [
        bpu._loops[10].current_run,
        bpu._loops[10].last_trip,
        bpu._loops[10].confidence,
    ]

    positions = {4: (3, 2), 9: (0, 0)}
    pos, committed, resident = flat_btu_from_snapshot((positions, [4]))
    assert pos == {4: 3, 9: 0}
    assert committed == {4: 2, 9: 0}
    assert resident == [4]


def test_flat_state_fresh_shapes():
    state = FlatState(GOLDEN_COVE_LIKE)
    cfg = GOLDEN_COVE_LIKE
    assert len(state.l1i) == cfg.l1i.num_sets * cfg.l1i.associativity
    assert len(state.l1d) == cfg.l1d.num_sets * cfg.l1d.associativity
    assert set(state.l1i) == {-1}
    assert len(state.pht) == 1 << cfg.pht_bits
    assert state.btu_occupancy() == 0
