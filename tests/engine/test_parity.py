"""Golden parity: the batch paths vs the object-based reference loop.

The hard acceptance criterion of the engine layer: ``simulate_batch`` must
reproduce the seed model's cycles / IPC / statistic counters **bit-for-bit**
for every (workload × policy × flush-interval) of the quick suite.  The
legacy side here is driven exclusively through
:meth:`CoreModel.run_reference` — the original per-``DynamicInstruction``
loop — with per-policy warm-up passes, exactly like the seed ``simulate()``.

Every batch-driven test runs twice: once on the generated-kernel path (the
default) and once with ``REPRO_ENGINE_KERNELS=off`` on the PR-2
``run_trace`` interpreter, so both layers of the specialization chain stay
pinned to the golden model.
"""

import pytest

from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.kernels import KERNELS_ENV
from repro.experiments.runner import (
    DESIGN_BUILDERS,
    QUICK_WORKLOADS,
    DesignPoint,
    prepare_workload,
)
from repro.uarch.config import CoreConfig
from repro.uarch.core import CoreModel

ALL_DESIGNS = tuple(DESIGN_BUILDERS)


@pytest.fixture(autouse=True, params=["kernels", "interpreter"])
def engine_path(request, monkeypatch):
    """Exercise both rungs of the chain: generated kernels and run_trace."""
    monkeypatch.setenv(KERNELS_ENV, "on" if request.param == "kernels" else "off")
    return request.param


@pytest.fixture(scope="module")
def quick_artifacts():
    return {name: prepare_workload(name) for name in QUICK_WORKLOADS}


def legacy_simulate(art, design, config=None, flush=None, warmup_passes=1):
    """The seed per-point path: reference loop, per-policy warm-up."""
    kwargs = {"config": config} if config is not None else {}
    core = CoreModel(
        policy=DESIGN_BUILDERS[design](art.bundle),
        bundle=art.bundle,
        btu_flush_interval=flush,
        **kwargs,
    )
    for _ in range(warmup_passes):
        core.run_reference(art.result.dynamic)
        core.reset_stats()
    simulation = core.run_reference(art.result.dynamic)
    simulation.program_name = art.kernel.program.name
    return simulation


def assert_bit_identical(reference, simulation, label):
    __tracebackhint__ = True
    ref = reference.stats.as_dict()
    got = simulation.stats.as_dict()
    diffs = {key: (ref[key], got[key]) for key in ref if ref[key] != got[key]}
    assert not diffs, f"{label}: engine diverges from reference on {diffs}"
    assert simulation.cycles == reference.cycles, label
    assert simulation.ipc == reference.ipc, label
    assert simulation.policy_name == reference.policy_name, label
    assert simulation.program_name == reference.program_name, label


@pytest.mark.parametrize("name", QUICK_WORKLOADS)
def test_batch_matches_reference_for_every_design(quick_artifacts, name):
    """One batch call per workload covers all seven designs bit-for-bit."""
    art = quick_artifacts[name]
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](art.bundle)) for design in ALL_DESIGNS
    ]
    batch_stats = BatchStats()
    simulations = simulate_batch(
        art.result,
        art.bundle,
        specs,
        program_name=art.kernel.program.name,
        batch_stats=batch_stats,
    )
    for design, simulation in zip(ALL_DESIGNS, simulations):
        reference = legacy_simulate(art, design)
        assert_bit_identical(reference, simulation, f"{name}/{design}")
    # Every point ran on the engine; none fell back to the object loop.
    assert batch_stats.fallback_points == 0
    assert batch_stats.measured_passes == len(ALL_DESIGNS)


@pytest.mark.parametrize("flush", [200, 2000])
@pytest.mark.parametrize("name", QUICK_WORKLOADS[:2])
def test_batch_matches_reference_under_btu_flush(quick_artifacts, name, flush):
    """Flush-interval points (cycle-dependent warm-up) stay bit-identical."""
    art = quick_artifacts[name]
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](art.bundle), btu_flush_interval=flush)
        for design in ALL_DESIGNS
    ]
    simulations = simulate_batch(
        art.result, art.bundle, specs, program_name=art.kernel.program.name
    )
    for design, simulation in zip(ALL_DESIGNS, simulations):
        reference = legacy_simulate(art, design, flush=flush)
        assert_bit_identical(reference, simulation, f"{name}/{design}/flush={flush}")


@pytest.mark.parametrize("warmups", [0, 2])
def test_batch_matches_reference_for_warmup_counts(quick_artifacts, warmups):
    art = quick_artifacts[QUICK_WORKLOADS[0]]
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](art.bundle), warmup_passes=warmups)
        for design in ALL_DESIGNS
    ]
    simulations = simulate_batch(
        art.result, art.bundle, specs, program_name=art.kernel.program.name
    )
    for design, simulation in zip(ALL_DESIGNS, simulations):
        reference = legacy_simulate(art, design, warmup_passes=warmups)
        assert_bit_identical(reference, simulation, f"{design}/warmups={warmups}")


def test_batch_matches_reference_on_non_default_config(quick_artifacts):
    art = quick_artifacts[QUICK_WORKLOADS[0]]
    small = CoreConfig(rob_size=64, fetch_width=4, issue_width=4, commit_width=4)
    specs = [
        PointSpec(policy=DESIGN_BUILDERS[design](art.bundle), config=small)
        for design in ALL_DESIGNS
    ]
    simulations = simulate_batch(
        art.result, art.bundle, specs, program_name=art.kernel.program.name
    )
    for design, simulation in zip(ALL_DESIGNS, simulations):
        reference = legacy_simulate(art, design, config=small)
        assert_bit_identical(reference, simulation, f"{design}/small-config")


def test_artifact_simulate_routes_through_engine_and_matches(quick_artifacts):
    """The memoized WorkloadArtifacts path returns the same bits."""
    art = quick_artifacts[QUICK_WORKLOADS[1]]
    points = [DesignPoint(design=design) for design in ALL_DESIGNS]
    results = art.simulate_batch(points)
    for point in points:
        reference = legacy_simulate(art, point.design)
        assert_bit_identical(
            reference, results[point.key()], f"artifact/{point.design}"
        )
        # And the per-point accessor is a memo hit with identical identity.
        assert art.simulate(point.design) is results[point.key()]


def test_custom_policy_subclass_falls_back_to_reference(quick_artifacts):
    """A policy without an engine spec must still simulate correctly."""
    from repro.uarch.defenses.unsafe import UnsafeBaseline

    class NoisyBaseline(UnsafeBaseline):
        """Overrides nothing structural, but is not the exact type."""

    art = quick_artifacts[QUICK_WORKLOADS[0]]
    assert NoisyBaseline().engine_spec() is None
    batch_stats = BatchStats()
    simulations = simulate_batch(
        art.result,
        art.bundle,
        [PointSpec(policy=NoisyBaseline())],
        program_name=art.kernel.program.name,
        batch_stats=batch_stats,
    )
    assert batch_stats.fallback_points == 1
    reference = legacy_simulate(art, "unsafe-baseline")
    ref = reference.stats.as_dict()
    got = simulations[0].stats.as_dict()
    assert ref == got
