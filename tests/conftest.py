"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.analysis.tracegen import generate_trace_bundle
from repro.arch.executor import SequentialExecutor
from repro.isa.builder import ProgramBuilder


def build_toy_crypto_program(blocks: int = 2, rounds: int = 3):
    """A small constant-time kernel with loops, calls, and returns.

    Mirrors the paper's Toy-AES-2 example: a per-block loop calling an
    encryption routine with a fixed round count.  Returns (program, key
    address, output address).
    """
    b = ProgramBuilder("toy_crypto")
    key_addr = b.alloc_secret("key", [7, 11, 13, 17][:blocks] or [7])
    out_addr = b.alloc("out", blocks)
    with b.crypto():
        with b.function("sbox") as sbox:
            b.xor("q", "q", 0x5A)
            b.add("q", "q", 1)
        with b.function("encrypt") as encrypt:
            i = b.reg("round")
            with b.for_range(i, 0, rounds):
                b.call(sbox)
        block, addr = b.regs("block", "addr")
        with b.for_range(block, 0, blocks):
            b.movi(addr, key_addr)
            b.add(addr, addr, block)
            b.load("q", addr)
            b.call(encrypt)
            b.declassify("q")
            b.movi(addr, out_addr)
            b.add(addr, addr, block)
            b.store("q", addr)
    b.halt()
    return b.build(), key_addr, out_addr


@pytest.fixture(scope="session")
def toy_program():
    program, key_addr, out_addr = build_toy_crypto_program()
    return program


@pytest.fixture(scope="session")
def toy_program_parts():
    return build_toy_crypto_program()


@pytest.fixture(scope="session")
def toy_execution(toy_program):
    return SequentialExecutor().run(toy_program)


@pytest.fixture(scope="session")
def toy_bundle(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    return generate_trace_bundle(program, [{key_addr: 3, key_addr + 1: 9}, {key_addr: 200, key_addr + 1: 77}])


@pytest.fixture(scope="session")
def chacha_artifact():
    """One fast prepared workload, shared by every test that needs artifacts."""
    from repro.experiments.runner import prepare_workload

    return prepare_workload("ChaCha20_ct")


@pytest.fixture()
def artifact_cache(tmp_path):
    """A disk-backed artifact cache rooted in a per-test temp directory."""
    from repro.pipeline import ArtifactCache

    return ArtifactCache(root=str(tmp_path / "artifact-cache"))
