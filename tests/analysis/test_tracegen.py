"""Tests for Algorithm 2 (trace generation), hints, and Table 1 statistics."""

import pytest

from repro.analysis.hints import BranchHint, HintTable
from repro.analysis.stats import analyze_program, combine_stats, stats_from_bundle, stats_from_bundle_scaled
from repro.analysis.tracegen import generate_trace_bundle
from repro.isa.builder import ProgramBuilder


def test_bundle_classifies_branches(toy_program_parts, toy_bundle):
    program, _key, _out = toy_program_parts
    counts = toy_bundle.counts()
    assert counts["branches"] == len(toy_bundle.branches)
    assert counts["single_target"] >= 1
    assert counts["with_trace"] >= 1
    assert counts["input_dependent"] == 0
    # Every analysed branch is a crypto branch of the program.
    assert all(program.is_crypto_pc(pc) for pc in toy_bundle.branches)


def test_bundle_hardware_traces_replay_the_raw_traces(toy_bundle):
    for pc, hardware in toy_bundle.hardware_traces().items():
        raw = toy_bundle.branches[pc].raw
        assert hardware.replay() == list(raw.targets)


def test_requires_two_inputs(toy_program):
    with pytest.raises(ValueError):
        generate_trace_bundle(toy_program, [{}])


def test_input_dependent_branch_detected():
    """A branch whose trip count depends on the input must not get a trace."""
    b = ProgramBuilder("variable-loop")
    n_addr = b.alloc_secret("n", [4])
    with b.crypto():
        i, n, addr = b.regs("i", "n", "addr")
        b.movi(addr, n_addr)
        b.load(n, addr)
        with b.for_range(i, 0, n):
            b.nop()
    b.halt()
    program = b.build()
    bundle = generate_trace_bundle(program, [{n_addr: 4}, {n_addr: 9}])
    assert len(bundle.input_dependent_branches()) >= 1
    for pc in bundle.input_dependent_branches():
        assert bundle.branches[pc].hardware is None
        assert bundle.hint_table.lookup(pc).input_dependent


def test_hint_encoding_roundtrip():
    hint = BranchHint(branch_pc=12, single_target=True, short_trace=True, trace_address_delta=0x2A)
    decoded = BranchHint.decode(12, hint.encode())
    assert decoded.single_target and decoded.short_trace
    assert decoded.trace_address_delta == 0x2A


def test_hint_table_crypto_range_check(toy_program_parts, toy_bundle):
    program, _key, _out = toy_program_parts
    table = toy_bundle.hint_table
    region = program.crypto_regions[0]
    assert table.is_crypto_pc(region.start)
    assert not table.is_crypto_pc(len(program) - 1)
    assert 0.0 <= table.single_target_fraction() <= 1.0


def test_stats_exclude_single_target_branches(toy_bundle):
    stats = stats_from_bundle(toy_bundle)
    assert stats.branch_count == len(toy_bundle.branches)
    assert stats.single_target_count >= 1
    assert all(not row.single_target for row in stats.analyzed_rows)
    row = stats.as_table_row()
    assert row["vanilla_avg"] >= 1


def test_scaled_stats_increase_compression(toy_bundle):
    base = stats_from_bundle(toy_bundle)
    scaled = stats_from_bundle_scaled(toy_bundle, invocations=64)
    assert scaled.vanilla_avg > base.vanilla_avg
    assert scaled.compression_avg > base.compression_avg


def test_analyze_program_and_combine(toy_program_parts):
    program, key_addr, _out = toy_program_parts
    stats = analyze_program(program, [{key_addr: 1}, {key_addr: 2}])
    combined = combine_stats([stats, stats])
    assert combined.branch_count == 2 * stats.branch_count


def test_timings_recorded(toy_bundle):
    timings = toy_bundle.timings.as_dict()
    assert set(timings) == {
        "A_detect_static_branches",
        "B_collect_raw_traces",
        "C_vanilla_traces",
        "D_dna_encoding",
        "E_kmers_compression",
    }
    assert all(value >= 0.0 for value in timings.values())
