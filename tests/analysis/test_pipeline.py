"""Unit and property-based tests for the branch-analysis pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dna import encode_vanilla_trace
from repro.analysis.kmers import (
    compact_pattern_store,
    compress_sequence,
    count_kmers,
    replace_non_overlapping,
)
from repro.analysis.raw_trace import RawTrace, collect_raw_traces
from repro.analysis.representation import (
    BTU_ENTRY_ELEMENTS,
    PatternElement,
    TraceElement,
    build_hardware_trace,
)
from repro.analysis.vanilla import VanillaElement, run_length_encode, to_vanilla_trace


# --------------------------------------------------------------------------- #
# Vanilla traces (run-length encoding)
# --------------------------------------------------------------------------- #
def test_run_length_encode_paper_example():
    # Raw trace PC1 PC1 PC1 PC1 PC0 -> PC1 x 4 . PC0 x 1
    elements = run_length_encode([1, 1, 1, 1, 0])
    assert elements == (VanillaElement(1, 4), VanillaElement(0, 1))


def test_vanilla_trace_metrics():
    raw = RawTrace(branch_pc=5, targets=(7, 7, 9, 9, 9, 7))
    vanilla = to_vanilla_trace(raw)
    assert len(vanilla) == 3
    assert vanilla.total_executions == 6
    assert vanilla.unique_targets == (7, 9)
    assert not vanilla.is_single_target
    assert vanilla.expand() == list(raw.targets)


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
def test_rle_roundtrip_property(targets):
    raw = RawTrace(branch_pc=0, targets=tuple(targets))
    vanilla = to_vanilla_trace(raw)
    assert vanilla.expand() == targets
    # RLE never has two adjacent elements with the same target.
    for first, second in zip(vanilla.elements, vanilla.elements[1:]):
        assert first.target != second.target


# --------------------------------------------------------------------------- #
# DNA encoding
# --------------------------------------------------------------------------- #
def test_dna_encoding_paper_example():
    # PC0x2 . PC1x5 . PC0x2 . PC1x5 . PC2x3  ->  A C A C G
    raw = RawTrace(branch_pc=0, targets=(0, 0, 1, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2))
    vanilla = to_vanilla_trace(raw)
    sequence = encode_vanilla_trace(vanilla)
    assert sequence.symbols == [0, 1, 0, 1, 2]
    assert sequence.to_string() == "ACACG"
    assert sequence.decode() == list(vanilla.elements)


# --------------------------------------------------------------------------- #
# k-mers counting and compression
# --------------------------------------------------------------------------- #
def test_count_kmers_non_overlapping():
    counts = count_kmers([1, 1, 1, 1, 1], 2)
    assert counts[(1, 1)] == 2


def test_replace_non_overlapping():
    assert replace_non_overlapping([0, 1, 0, 1, 2], (0, 1), 9) == [9, 9, 2]


def test_compress_repeating_sequence():
    raw = RawTrace(branch_pc=0, targets=tuple(([1] * 4 + [0]) * 50))
    vanilla = to_vanilla_trace(raw)
    result = compress_sequence(encode_vanilla_trace(vanilla))
    # The compressed representation must expand back to the original.
    assert result.expand() == list(result.source.symbols)
    # And must be much smaller than the vanilla trace.
    assert result.size < len(vanilla) / 4
    assert result.compression_rate > 4


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=6),
)
def test_kmers_expand_matches_source_property(pattern, repeats):
    targets = tuple(pattern * repeats)
    vanilla = to_vanilla_trace(RawTrace(branch_pc=0, targets=targets))
    sequence = encode_vanilla_trace(vanilla)
    result = compress_sequence(sequence)
    assert result.expand() == list(sequence.symbols)
    assert result.size >= 1


def test_compact_pattern_store_merges_overlaps():
    a = (VanillaElement(1, 2), VanillaElement(2, 3), VanillaElement(3, 1))
    b = (VanillaElement(2, 3), VanillaElement(3, 1), VanillaElement(1, 2))
    store, windows = compact_pattern_store([a, b])
    assert len(store) < len(a) + len(b)
    for pattern, (offset, length) in zip([a, b], windows):
        assert tuple(store[offset : offset + length]) == pattern


# --------------------------------------------------------------------------- #
# Hardware representation
# --------------------------------------------------------------------------- #
def test_pattern_element_encoding_roundtrip():
    element = PatternElement(target_offset=-5, repetitions=200)
    assert PatternElement.decode(element.encode()) == element


def test_pattern_element_rejects_bad_repetitions():
    import pytest

    with pytest.raises(ValueError):
        PatternElement(target_offset=0, repetitions=0)
    with pytest.raises(ValueError):
        PatternElement(target_offset=0, repetitions=300)


def test_trace_element_end_marker():
    marker = TraceElement.end_marker()
    assert marker.end_of_trace


def test_hardware_trace_replay_roundtrip():
    targets = tuple(([12] * 7 + [20]) * 9)
    vanilla = to_vanilla_trace(RawTrace(branch_pc=10, targets=targets))
    result = compress_sequence(encode_vanilla_trace(vanilla))
    hardware = build_hardware_trace(result)
    assert hardware.replay() == list(targets)
    # Replaying twice wraps around, as the BTU does after End-of-Trace.
    assert hardware.replay(repetitions=2) == list(targets) * 2


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.sampled_from([3, 4, 9]), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
)
def test_hardware_replay_property(pattern, repeats):
    targets = tuple(pattern * repeats)
    vanilla = to_vanilla_trace(RawTrace(branch_pc=2, targets=targets))
    hardware = build_hardware_trace(compress_sequence(encode_vanilla_trace(vanilla)))
    assert hardware.replay() == list(targets)


def test_short_trace_classification():
    short = build_hardware_trace(
        compress_sequence(
            encode_vanilla_trace(to_vanilla_trace(RawTrace(0, tuple([1] * 3 + [0]))))
        )
    )
    assert short.is_short_trace
    assert short.trace_length <= BTU_ENTRY_ELEMENTS


# --------------------------------------------------------------------------- #
# Raw trace collection
# --------------------------------------------------------------------------- #
def test_collect_raw_traces_crypto_only(toy_program, toy_execution):
    crypto_traces = collect_raw_traces(toy_program, result=toy_execution)
    all_traces = collect_raw_traces(toy_program, result=toy_execution, crypto_only=False)
    assert set(crypto_traces) <= set(all_traces)
    assert all(toy_program.is_crypto_pc(pc) for pc in crypto_traces)
    assert crypto_traces, "the toy program has crypto branches"
