"""Content-addressed on-disk artifact cache with in-memory memoization.

The expensive per-workload work — sequential execution and Algorithm 2 trace
generation — is pure: it depends only on the program content, the
confidential-input set, and the trace parameters.  The cache therefore keys
each stored artifact on a digest of exactly those inputs plus a format
version, so a kernel edit, a new input set, or a serialization change each
miss cleanly instead of returning stale data.

Layout on disk::

    <root>/v<FORMAT>/<kind>/<workload-slug>-<digest>.pkl

Writes are atomic (``os.replace`` of a temp file) so concurrent worker
processes can warm the same cache without corrupting entries; a half-written
entry is never visible under its final name.  Corrupt or unreadable entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import logging
import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

logger = logging.getLogger(__name__)

#: Bump whenever the pickled payload layout changes incompatibly.
CACHE_FORMAT_VERSION = 1

#: Fault-injection hook (see :mod:`repro.testing.faults`).  ``None`` in
#: production; when armed it is called around the atomic-store window.
FAULT_HOOK = None

#: Entries already reported as quarantined, so each corrupt file logs once
#: per process instead of once per read.
_QUARANTINE_LOGGED: Set[str] = set()

#: Environment variable that switches the default disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-cassandra``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-cassandra")


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", text)


@dataclass
class CacheStats:
    """Hit/miss counters, exposed by the CLI's ``--stats`` report."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memo_hits: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "disk_hits": self.hits,
            "disk_misses": self.misses,
            "disk_stores": self.stores,
            "memo_hits": self.memo_hits,
            "quarantined": self.quarantined,
        }


@dataclass
class ArtifactCache:
    """A two-level (memory, disk) cache for pickled pipeline artifacts.

    Parameters
    ----------
    root:
        Directory for persisted entries.  ``None`` disables the disk level;
        the in-memory memo still works, which is what pure in-process
        sharing (tests, single experiment runs) needs.
    """

    root: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memo: Dict[str, Any] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Key/path plumbing
    # ------------------------------------------------------------------ #
    def path_for(self, kind: str, name: str, digest: str) -> Optional[str]:
        if self.root is None:
            return None
        directory = os.path.join(self.root, f"v{CACHE_FORMAT_VERSION}", _slug(kind))
        return os.path.join(directory, f"{_slug(name)}-{digest}.pkl")

    @staticmethod
    def _memo_key(kind: str, name: str, digest: str) -> str:
        return f"{kind}/{name}/{digest}"

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, kind: str, name: str, digest: str) -> Any:
        """Return the cached object or ``None`` on a miss."""
        memo_key = self._memo_key(kind, name, digest)
        if memo_key in self._memo:
            self.stats.memo_hits += 1
            return self._memo[memo_key]
        path = self.path_for(kind, name, digest)
        if path is None or not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception as error:
            # A corrupt / truncated / incompatible entry is a miss — but
            # left in place it would be re-read and re-missed every run, so
            # quarantine it aside (the recompute re-puts at the same path).
            self._quarantine(path, error)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._memo[memo_key] = payload
        return payload

    def _quarantine(self, path: str, error: Exception) -> None:
        """Move a corrupt entry to ``<path>.corrupt`` and log once."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            return
        self.stats.quarantined += 1
        if path not in _QUARANTINE_LOGGED:
            _QUARANTINE_LOGGED.add(path)
            logger.warning(
                "artifact cache: quarantined corrupt entry %s -> %s.corrupt (%s)",
                path,
                os.path.basename(path),
                error,
            )

    def memoize(self, kind: str, name: str, digest: str, payload: Any) -> None:
        """Seed only the in-memory level (e.g. with a payload a worker
        process already persisted to the shared disk directory)."""
        self._memo[self._memo_key(kind, name, digest)] = payload

    def put(self, kind: str, name: str, digest: str, payload: Any) -> None:
        """Store ``payload`` under the key, atomically when disk-backed."""
        self._memo[self._memo_key(kind, name, digest)] = payload
        path = self.path_for(kind, name, digest)
        if path is None:
            return
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            if FAULT_HOOK is not None:
                # The crash window atomicity protects: temp written, not
                # yet visible under its final name.
                FAULT_HOOK("cache-put", path=path, temp_path=temp_path)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        if FAULT_HOOK is not None:
            FAULT_HOOK("cache-stored", path=path)
        self.stats.stores += 1

    def load_or_compute(self, kind: str, name: str, digest: str, compute) -> Any:
        """``get`` falling back to ``compute()`` + ``put``."""
        payload = self.get(kind, name, digest)
        if payload is None:
            payload = compute()
            self.put(kind, name, digest, payload)
        return payload

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear_memory(self) -> None:
        """Drop the in-memory level (the disk level survives)."""
        self._memo.clear()

    def entry_count(self) -> int:
        """Number of entries currently on disk (0 when memory-only)."""
        if self.root is None:
            return 0
        count = 0
        version_dir = os.path.join(self.root, f"v{CACHE_FORMAT_VERSION}")
        for _dirpath, _dirnames, filenames in os.walk(version_dir):
            count += sum(1 for filename in filenames if filename.endswith(".pkl"))
        return count
