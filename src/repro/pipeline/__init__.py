"""Shared experiment pipeline: disk-cached artifacts + parallel simulation.

The subsystem every experiment, benchmark, and test goes through to obtain
workload artifacts and simulation results:

* :mod:`repro.pipeline.hashing` — stable content fingerprints for programs,
  input sets, and configurations (cache-key material).
* :mod:`repro.pipeline.artifacts` — the content-addressed on-disk cache (with
  in-memory memoization) persisting ``ExecutionResult``/``TraceBundle``
  pairs across processes.
* :mod:`repro.pipeline.parallel` — multiprocessing fan-out for workload
  preparation and for independent (workload × design × config) points.
* :mod:`repro.pipeline.pipeline` — :class:`ExperimentPipeline`, the
  preparation/cache/worker-budget layer the public
  :class:`~repro.api.service.SimulationService` facade wraps (the CLI,
  benchmarks, and experiments all enter through :mod:`repro.api`).
"""

from repro.pipeline.artifacts import (
    CACHE_DIR_ENV,
    CACHE_FORMAT_VERSION,
    ArtifactCache,
    CacheStats,
    default_cache_dir,
)
from repro.pipeline.hashing import (
    inputs_fingerprint,
    program_fingerprint,
    stable_digest,
)
from repro.pipeline.parallel import (
    SimulationPoint,
    default_jobs,
    prepare_workloads_parallel,
    simulate_points,
)
from repro.pipeline.pipeline import (
    ExperimentPipeline,
    build_pipeline,
    resolve_workload_names,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "default_cache_dir",
    "default_jobs",
    "stable_digest",
    "program_fingerprint",
    "inputs_fingerprint",
    "SimulationPoint",
    "prepare_workloads_parallel",
    "simulate_points",
    "ExperimentPipeline",
    "build_pipeline",
    "resolve_workload_names",
]
