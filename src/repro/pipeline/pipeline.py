"""The shared experiment pipeline: one preparation, many consumers.

:class:`ExperimentPipeline` is the preparation/cache/worker-budget layer
behind the public :class:`~repro.api.service.SimulationService` facade
(the CLI, the benchmarks, the examples, and multi-experiment scripts all
enter through :mod:`repro.api`).  It ties together the three layers below
it:

1. the content-addressed :class:`~repro.pipeline.artifacts.ArtifactCache`
   persisting ``(ExecutionResult, TraceBundle)`` pairs across processes;
2. the :mod:`~repro.pipeline.parallel` fan-out preparing workloads and
   running independent simulation points over worker processes; and
3. the config-aware per-artifact simulation memo on
   :class:`~repro.experiments.runner.WorkloadArtifacts`.

Within one pipeline, each workload's sequential execution and trace
generation happen at most once no matter how many experiments consume the
artifacts — and at most once *ever* when a disk cache is attached.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crypto.workloads import workload_names
from repro.experiments.runner import (
    QUICK_WORKLOADS,
    WorkloadArtifacts,
    prepare_workload,
)
from repro.pipeline.artifacts import ArtifactCache, default_cache_dir
from repro.pipeline.parallel import (
    SimulationPoint,
    default_jobs,
    prepare_workloads_parallel,
    simulate_points,
)


def resolve_workload_names(selector: Optional[str]) -> List[str]:
    """Map a CLI-style selector to workload names.

    ``None``/``"all"``/``"full"`` → the full 22-workload suite;
    ``"quick"`` → the representative quick subset; anything else is a
    comma-separated list of workload names (validated against the registry).
    """
    if selector is None or selector in ("all", "full"):
        return workload_names()
    if selector == "quick":
        return list(QUICK_WORKLOADS)
    chosen = [name.strip() for name in selector.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in chosen if name not in known]
    if unknown:
        raise KeyError(f"unknown workload(s): {unknown!r}; known: {sorted(known)!r}")
    return chosen


class ExperimentPipeline:
    """Prepare once, simulate in parallel, share everywhere."""

    def __init__(
        self,
        names: Optional[Sequence[str]] = None,
        cache: Optional[ArtifactCache] = None,
        jobs: int = 1,
    ) -> None:
        self.names: List[str] = list(names) if names is not None else workload_names()
        self.cache = cache
        self.jobs = jobs if jobs > 0 else default_jobs()
        self._artifacts: Dict[str, WorkloadArtifacts] = {}
        #: Wall-clock seconds spent preparing (0.0 until :meth:`artifacts`).
        self.prepare_seconds: float = 0.0
        #: Simulation points computed through :meth:`prefetch` so far.
        self.points_simulated: int = 0

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #
    def artifacts(self) -> List[WorkloadArtifacts]:
        """The prepared artifacts for every workload, in pipeline order."""
        self._prepare([name for name in self.names if name not in self._artifacts])
        return [self._artifacts[name] for name in self.names]

    def artifact(self, name: str) -> WorkloadArtifacts:
        """One workload's artifacts, preparing only that workload if needed."""
        return self.artifacts_for([name])[0]

    def artifacts_for(self, names: Sequence[str]) -> List[WorkloadArtifacts]:
        """Artifacts for exactly ``names``, preparing only the missing ones.

        Unlike :meth:`artifacts` this never prepares the rest of the
        pipeline's workload set, so a request-driven caller (the
        :class:`~repro.api.service.SimulationService`) pays only for the
        workloads its requests actually name.  Names outside the pipeline's
        set are added to it.
        """
        for name in names:
            if name not in self.names:
                self.names.append(name)
        self._prepare([name for name in names if name not in self._artifacts])
        return [self._artifacts[name] for name in names]

    def adopt(self, artifacts: Iterable[WorkloadArtifacts]) -> None:
        """Register artifacts prepared elsewhere as this pipeline's own.

        Lets a caller that already paid for preparation (a benchmark
        harness, a test fixture) wrap the prepared objects in a pipeline —
        and hence a service — without re-preparing them; subsequent
        :meth:`artifact`/:meth:`artifacts` calls return the same objects,
        so simulation memos and lowering caches are shared.
        """
        for artifact in artifacts:
            if artifact.name not in self.names:
                self.names.append(artifact.name)
            self._artifacts[artifact.name] = artifact

    def _prepare(self, missing: Sequence[str]) -> None:
        if not missing:
            return
        start = time.perf_counter()
        if self.jobs > 1 and len(missing) > 1:
            prepared = prepare_workloads_parallel(missing, cache=self.cache, jobs=self.jobs)
        else:
            prepared = [prepare_workload(name, cache=self.cache) for name in missing]
        for artifact in prepared:
            self._artifacts[artifact.name] = artifact
        self.prepare_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------ #
    # Simulations
    # ------------------------------------------------------------------ #
    def prefetch(self, points: Iterable[SimulationPoint]) -> int:
        """Fan the given simulation points out over the worker pool.

        Returns the number of points actually simulated (already-memoized
        points are skipped).  After this, experiment code hitting
        ``artifact.simulate(...)`` for any prefetched point is a pure memo
        lookup.
        """
        computed = simulate_points(self.artifacts(), points, jobs=self.jobs)
        self.points_simulated += computed
        return computed

    def prefetch_designs(
        self, designs: Sequence[str], names: Optional[Sequence[str]] = None
    ) -> int:
        """Convenience: prefetch ``designs`` for every (or the given) workload."""
        chosen = list(names) if names is not None else self.names
        return self.prefetch(
            SimulationPoint(workload=name, design=design)
            for name in chosen
            for design in designs
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "workloads": len(self.names),
            "prepared": len(self._artifacts),
            "prepare_seconds": round(self.prepare_seconds, 3),
            "points_simulated": self.points_simulated,
            "jobs": self.jobs,
        }
        if self.cache is not None:
            report["cache_dir"] = self.cache.root
            report.update(self.cache.stats.as_dict())
        return report


def build_pipeline(
    workloads: Optional[str] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    jobs: int = 0,
) -> ExperimentPipeline:
    """Construct a pipeline from CLI-style options."""
    cache = None
    if use_cache:
        cache = ArtifactCache(root=cache_dir or default_cache_dir())
    return ExperimentPipeline(
        names=resolve_workload_names(workloads),
        cache=cache,
        jobs=jobs if jobs > 0 else default_jobs(),
    )
