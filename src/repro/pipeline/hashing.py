"""Stable content hashing for pipeline cache keys.

The on-disk artifact cache must key on *content*, not object identity:
rebuilding a workload in another process yields new ``Program`` objects that
must map to the same cache entry, while any change to the program (a kernel
edit between repo revisions) must miss.  Everything here therefore hashes
plain-value projections of the inputs, never ``hash()`` (randomized per
process for strings) or ``pickle`` (not canonical across versions).
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Sequence

import repro
from repro.isa.program import Program


def stable_digest(*parts: object) -> str:
    """SHA-256 over the reprs of ``parts``; first 24 hex chars.

    Every part must have a deterministic ``repr`` (ints, strings, tuples,
    frozen dataclasses of the same).
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()[:24]


def program_fingerprint(program: Program) -> str:
    """Content hash of a program: instructions, data, entry, and regions."""
    instruction_part = tuple(
        (
            instruction.opcode.name,
            instruction.dst,
            instruction.srcs,
            instruction.imm,
            instruction.crypto,
        )
        for instruction in program.instructions
    )
    memory_part = tuple(sorted(program.initial_memory.items()))
    region_part = tuple((region.start, region.end) for region in program.crypto_regions)
    secret_part = tuple(sorted(program.secret_addresses))
    return stable_digest(
        program.name,
        program.entry,
        instruction_part,
        memory_part,
        region_part,
        secret_part,
    )


def inputs_fingerprint(inputs: Sequence[Mapping[int, int]]) -> str:
    """Content hash of the confidential-input set used to diff traces."""
    normalized = tuple(tuple(sorted(mapping.items())) for mapping in inputs)
    return stable_digest(normalized)


def fingerprint_memory(memory: Dict[int, int]) -> str:
    return stable_digest(tuple(sorted(memory.items())))


def combine_digests(digests: Iterable[str]) -> str:
    return stable_digest(tuple(digests))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of the ``repro`` package's own source tree.

    Folded into every artifact digest so that editing the simulator, a
    defense policy, or the Algorithm 2 tracer invalidates the warm disk
    cache instead of silently serving results computed by the old code.
    Deliberately coarse (any ``.py`` edit under ``src/repro`` misses):
    recomputing is cheap and correctness beats cache retention here.
    """
    root = os.path.dirname(os.path.abspath(repro.__file__))
    paths = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(name for name in dirnames if name != "__pycache__")
        paths.extend(
            os.path.join(dirpath, filename)
            for filename in filenames
            if filename.endswith(".py")
        )
    hasher = hashlib.sha256()
    for path in sorted(paths):
        hasher.update(os.path.relpath(path, root).encode("utf-8"))
        with open(path, "rb") as handle:
            hasher.update(handle.read())
    return hasher.hexdigest()[:24]
