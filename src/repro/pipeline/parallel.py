"""Multiprocessing fan-out for workload preparation and simulation points.

Two axes parallelize independently:

* **Preparation** — each workload's sequential execution + trace generation
  is pure and isolated, so workers compute ``(ExecutionResult, TraceBundle)``
  payloads and ship them back pickled (the ``KernelProgram`` itself holds
  unpicklable verify closures and is rebuilt in the parent, which is cheap).
  Preparation covers both the 22-workload registry *and* non-registry
  kernels described by a :class:`KernelSpec` — e.g. the Figure 8 synthetic
  (primitive, mix) grid — so workers build the kernel from its spec instead
  of the parent serializing an unpicklable program object.
* **Simulation** — every (workload × design × config × flush × warmup) point
  is independent.  Workers are forked *after* the parent has prepared the
  artifacts, so they inherit the prepared state by copy-on-write; the parent
  additionally lowers each workload once and publishes the columnar trace as
  preserialized bytes (:meth:`LoweredTrace.to_bytes`), so workers
  materialize the columns with one C-level unpickle instead of re-walking
  the per-instruction object stream, and only the small task tuples and
  ``SimulationResult`` payloads cross process boundaries.

Both paths fall back to serial execution when ``jobs <= 1``, when there is
only one task, or when the platform lacks the ``fork`` start method — results
are bit-identical either way, which ``tests/pipeline`` asserts.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.tracegen import TraceParameters
from repro.crypto.workloads import workload_names
from repro.engine.lowering import LoweredTrace
from repro.experiments.runner import (
    DesignPoint,
    SimulationKey,
    WorkloadArtifacts,
    artifacts_for_kernel,
    prepare_workload,
    simulation_key,
)
from repro.pipeline.artifacts import ArtifactCache
from repro.pipeline.hashing import (
    code_fingerprint,
    inputs_fingerprint,
    program_fingerprint,
    stable_digest,
)
from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE
from repro.uarch.core import SimulationResult


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped to keep fork cheap."""
    return max(1, min(os.cpu_count() or 1, 8))


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def workload_artifact_digest(kernel, params: TraceParameters) -> str:
    """The content digest a prepared workload is cached under.

    Covers the program content, the confidential-input set, the trace
    parameters, and the ``repro`` source tree itself — a code edit is a
    cache miss, never a stale hit.  Simulation digests derive from this one,
    so they inherit the same invalidation.
    """
    return stable_digest(
        program_fingerprint(kernel.program),
        inputs_fingerprint(kernel.inputs),
        params.identity(),
        code_fingerprint(),
    )


# --------------------------------------------------------------------------- #
# Parallel preparation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelSpec:
    """A picklable description of how to (re)build one kernel program.

    ``KernelProgram`` objects hold unpicklable verify closures, so the
    parallel preparation ships *specs* instead: each worker rebuilds the
    kernel from the spec (cheap), then runs the expensive execution +
    Algorithm 2 tracing.  ``kind`` selects a builder from
    :data:`KERNEL_BUILDERS`; ``args`` are its positional arguments.

    * ``KernelSpec("registry", "SHA-256")`` — a registry workload;
    * ``KernelSpec("synthetic", "synthetic-chacha20-90s/10c",
      args=("chacha20", "90s/10c"))`` — a Figure 8 (primitive, mix) point.
    """

    kind: str
    name: str
    args: Tuple = ()
    suite: str = ""

    def build(self):
        try:
            builder = KERNEL_BUILDERS[self.kind]
        except KeyError:
            raise KeyError(
                f"unknown kernel spec kind {self.kind!r}; "
                f"known: {sorted(KERNEL_BUILDERS)}"
            ) from None
        return builder(self)


def _build_registry_kernel(spec: KernelSpec):
    from repro.crypto.workloads import get_workload

    return get_workload(spec.name).kernel()


def _build_synthetic_kernel(spec: KernelSpec):
    from repro.crypto.synthetic import build_synthetic

    return build_synthetic(*spec.args)


KERNEL_BUILDERS: Dict[str, Callable[[KernelSpec], object]] = {
    "registry": _build_registry_kernel,
    "synthetic": _build_synthetic_kernel,
}


def _prepare_kernel_task(task: Tuple[KernelSpec, Optional[str], TraceParameters]):
    spec, cache_root, params = task
    cache = ArtifactCache(root=cache_root) if cache_root else None
    artifact = _prepare_from_spec(spec, cache=cache, params=params)
    return spec.name, artifact.result, artifact.bundle


def _prepare_from_spec(
    spec: KernelSpec,
    cache: Optional[ArtifactCache],
    params: TraceParameters,
) -> WorkloadArtifacts:
    """Build + execute + trace one spec through the shared cache path."""
    if spec.kind == "registry":
        return prepare_workload(spec.name, cache=cache, trace_params=params)
    return artifacts_for_kernel(
        spec.build(),
        suite=spec.suite or spec.kind,
        name=spec.name,
        cache=cache,
        trace_params=params,
    )


def prepare_kernels_parallel(
    specs: Sequence[KernelSpec],
    cache: Optional[ArtifactCache] = None,
    jobs: int = 0,
    trace_params: Optional[TraceParameters] = None,
) -> List[WorkloadArtifacts]:
    """Prepare arbitrary kernel specs across worker processes.

    Workers build each kernel from its spec, run the sequential execution
    and Algorithm 2 tracing, warm the shared disk cache (when one is
    configured), and return the ``(result, bundle)`` payloads; the parent
    seeds its own cache with them and assembles the final
    :class:`WorkloadArtifacts` — including the per-workload correctness
    check — through the exact same serial code path.
    """
    specs = list(specs)
    by_name = {spec.name: spec for spec in specs}
    if len(by_name) != len(specs):
        # Worker payloads come back keyed by name; a duplicate would seed
        # one spec's artifacts under another spec's digest without error.
        raise ValueError("kernel specs must have unique names")
    params = trace_params or TraceParameters()
    jobs = jobs or default_jobs()
    context = _fork_context()
    if jobs <= 1 or len(specs) <= 1 or context is None:
        return [_prepare_from_spec(spec, cache=cache, params=params) for spec in specs]

    cache_root = cache.root if cache is not None else None
    tasks = [(spec, cache_root, params) for spec in specs]
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        payloads = pool.map(_prepare_kernel_task, tasks, chunksize=1)

    # Seed the parent's in-memory memo so assembly below never recomputes;
    # workers already persisted the payloads when the cache is disk-backed,
    # so a second disk write here would be pure waste.
    parent_cache = cache if cache is not None else ArtifactCache(root=None)
    for name, result, bundle in payloads:
        kernel = by_name[name].build()
        digest = workload_artifact_digest(kernel, params)
        parent_cache.memoize("workload-artifacts", name, digest, (result, bundle))
    return [
        _prepare_from_spec(spec, cache=parent_cache, params=params) for spec in specs
    ]


def prepare_workloads_parallel(
    names: Optional[Sequence[str]] = None,
    cache: Optional[ArtifactCache] = None,
    jobs: int = 0,
    trace_params: Optional[TraceParameters] = None,
) -> List[WorkloadArtifacts]:
    """Prepare registry workloads across worker processes.

    A thin wrapper over :func:`prepare_kernels_parallel` with
    ``registry``-kind specs, kept for the existing call sites.
    """
    chosen = list(names) if names is not None else workload_names()
    return prepare_kernels_parallel(
        [KernelSpec(kind="registry", name=name) for name in chosen],
        cache=cache,
        jobs=jobs,
        trace_params=trace_params,
    )


# --------------------------------------------------------------------------- #
# Parallel simulation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimulationPoint(DesignPoint):
    """One (workload × design × config × flush × warmup) simulation task.

    Extends the workload-agnostic :class:`~repro.experiments.runner.DesignPoint`
    (whose fields and :meth:`~repro.experiments.runner.DesignPoint.key` it
    inherits) with the workload it belongs to.  ``workload`` is
    keyword-only in practice: it defaults only so the inherited defaulted
    fields can precede it, and an empty workload is rejected.
    """

    workload: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("SimulationPoint requires a workload name")


#: Artifacts visible to forked simulation workers (set only around the pool).
_FORK_ARTIFACTS: Dict[str, WorkloadArtifacts] = {}

#: One worker task: every pending point of one workload — so the worker's
#: ``simulate_batch`` shares one lowering across them all (and warm-up state
#: within each config) — plus the workload's columnar trace preserialized by
#: the parent.  Shipping the lowered columns as bytes means a worker's batch
#: starts from one C-level unpickle instead of re-lowering the
#: ``DynamicInstruction`` object stream per worker.  The fully
#: self-contained version of this payload shape — no fork inheritance at
#: all — is :class:`repro.api.shard.ShardTask`, which the subprocess shard
#: backend ships over pipes and the multi-host direction will ship over
#: sockets.
_BatchTask = Tuple[str, Tuple[SimulationPoint, ...], bytes]


def _simulate_batch_task(task: _BatchTask) -> Tuple[str, List[Tuple[SimulationKey, SimulationResult]]]:
    name, points, trace_payload = task
    artifact = _FORK_ARTIFACTS[name]
    artifact.result._lowered_trace = LoweredTrace.from_bytes(trace_payload)  # type: ignore[attr-defined]
    results = _run_batch(artifact, points)
    return name, results


def _run_batch(
    artifact: WorkloadArtifacts, points: Sequence[SimulationPoint]
) -> List[Tuple[SimulationKey, SimulationResult]]:
    """The batch body both execution modes share."""
    return list(artifact.simulate_batch(points).items())


def _group_tasks(
    groups: Dict[str, List[SimulationPoint]],
    by_name: Dict[str, WorkloadArtifacts],
) -> List[_BatchTask]:
    """Worker tasks from per-workload groups: one lowering per task.

    The engine's ``simulate_batch`` keys its warm-state builders by config
    internally, so a single per-workload task still shares warm-up within
    each config while computing the (config-independent) lowering once —
    in the parent, whose preserialized columns every worker reuses.
    """
    return [
        (
            workload,
            tuple(points),
            by_name[workload].lowered_trace().to_bytes(),
        )
        for workload, points in groups.items()
    ]


def simulate_points(
    artifacts: Sequence[WorkloadArtifacts],
    points: Iterable[SimulationPoint],
    jobs: int = 0,
) -> int:
    """Run simulation points, seeding each artifact's in-memory memo.

    Points already present in a memo are skipped.  Returns the number of
    points actually simulated.  Pending points are grouped by workload and
    each group runs through :meth:`WorkloadArtifacts.simulate_batch`, so
    the columnar lowering is computed once per group and the warm-up
    component snapshots are shared across every design and flush-interval
    within each config.  With ``jobs > 1`` the groups fan out over
    forked workers that inherit the prepared artifacts read-only; the
    resulting ``SimulationResult``s are stored back on the parent's
    artifacts, so subsequent :meth:`WorkloadArtifacts.simulate` calls are
    memo hits regardless of which mode computed them.
    """
    by_name = {artifact.name: artifact for artifact in artifacts}
    pending: List[SimulationPoint] = []
    seen = set()
    for point in points:
        if point.workload not in by_name:
            raise KeyError(f"no prepared artifact for workload {point.workload!r}")
        identity = (point.workload, point.key())
        if identity in seen or point.key() in by_name[point.workload].simulations:
            continue
        seen.add(identity)
        pending.append(point)
    if not pending:
        return 0

    jobs = jobs or default_jobs()
    context = _fork_context()
    groups: Dict[str, List[SimulationPoint]] = {}
    for point in pending:
        groups.setdefault(point.workload, []).append(point)
    if jobs <= 1 or len(groups) <= 1 or context is None:
        for name, group in groups.items():
            for key, result in _run_batch(by_name[name], group):
                by_name[name].store_simulation(key, result)
        return len(pending)

    tasks = _group_tasks(groups, by_name)
    global _FORK_ARTIFACTS
    _FORK_ARTIFACTS = dict(by_name)
    try:
        with context.Pool(processes=min(jobs, len(tasks))) as pool:
            outcomes = pool.map(_simulate_batch_task, tasks, chunksize=1)
    finally:
        _FORK_ARTIFACTS = {}
    for name, results in outcomes:
        for key, result in results:
            by_name[name].store_simulation(key, result)
    return len(pending)
