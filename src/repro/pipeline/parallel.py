"""Multiprocessing fan-out for workload preparation and simulation points.

Two axes parallelize independently:

* **Preparation** — each workload's sequential execution + trace generation
  is pure and isolated, so workers compute ``(ExecutionResult, TraceBundle)``
  payloads and ship them back pickled (the ``KernelProgram`` itself holds
  unpicklable verify closures and is rebuilt in the parent, which is cheap).
* **Simulation** — every (workload × design × config × flush × warmup) point
  is independent.  Workers are forked *after* the parent has prepared the
  artifacts, so they inherit the prepared state by copy-on-write and only the
  small task tuples and ``SimulationResult`` payloads cross process
  boundaries.

Both paths fall back to serial execution when ``jobs <= 1``, when there is
only one task, or when the platform lacks the ``fork`` start method — results
are bit-identical either way, which ``tests/pipeline`` asserts.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.tracegen import TraceParameters
from repro.crypto.workloads import workload_names
from repro.experiments.runner import (
    DesignPoint,
    SimulationKey,
    WorkloadArtifacts,
    prepare_workload,
    simulation_key,
)
from repro.pipeline.artifacts import ArtifactCache
from repro.pipeline.hashing import (
    code_fingerprint,
    inputs_fingerprint,
    program_fingerprint,
    stable_digest,
)
from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE
from repro.uarch.core import SimulationResult


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped to keep fork cheap."""
    return max(1, min(os.cpu_count() or 1, 8))


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def workload_artifact_digest(kernel, params: TraceParameters) -> str:
    """The content digest a prepared workload is cached under.

    Covers the program content, the confidential-input set, the trace
    parameters, and the ``repro`` source tree itself — a code edit is a
    cache miss, never a stale hit.  Simulation digests derive from this one,
    so they inherit the same invalidation.
    """
    return stable_digest(
        program_fingerprint(kernel.program),
        inputs_fingerprint(kernel.inputs),
        params.identity(),
        code_fingerprint(),
    )


# --------------------------------------------------------------------------- #
# Parallel preparation
# --------------------------------------------------------------------------- #
def _prepare_task(task: Tuple[str, Optional[str], TraceParameters]):
    name, cache_root, params = task
    cache = ArtifactCache(root=cache_root) if cache_root else None
    artifact = prepare_workload(name, cache=cache, trace_params=params)
    return name, artifact.result, artifact.bundle


def prepare_workloads_parallel(
    names: Optional[Sequence[str]] = None,
    cache: Optional[ArtifactCache] = None,
    jobs: int = 0,
    trace_params: Optional[TraceParameters] = None,
) -> List[WorkloadArtifacts]:
    """Prepare workloads across worker processes.

    Workers warm the shared disk cache (when one is configured) and return
    the ``(result, bundle)`` payloads; the parent seeds its own cache with
    them and assembles the final :class:`WorkloadArtifacts` — including the
    per-workload correctness check — through the exact same
    :func:`prepare_workload` code path the serial mode uses.
    """
    chosen = list(names) if names is not None else workload_names()
    params = trace_params or TraceParameters()
    jobs = jobs or default_jobs()
    context = _fork_context()
    if jobs <= 1 or len(chosen) <= 1 or context is None:
        return [prepare_workload(name, cache=cache, trace_params=params) for name in chosen]

    cache_root = cache.root if cache is not None else None
    tasks = [(name, cache_root, params) for name in chosen]
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        payloads = pool.map(_prepare_task, tasks, chunksize=1)

    # Seed the parent's in-memory memo so assembly below never recomputes;
    # workers already persisted the payloads when the cache is disk-backed,
    # so a second disk write here would be pure waste.
    parent_cache = cache if cache is not None else ArtifactCache(root=None)
    from repro.crypto.workloads import get_workload

    for name, result, bundle in payloads:
        kernel = get_workload(name).kernel()
        digest = workload_artifact_digest(kernel, params)
        parent_cache.memoize("workload-artifacts", name, digest, (result, bundle))
    return [prepare_workload(name, cache=parent_cache, trace_params=params) for name in chosen]


# --------------------------------------------------------------------------- #
# Parallel simulation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimulationPoint(DesignPoint):
    """One (workload × design × config × flush × warmup) simulation task.

    Extends the workload-agnostic :class:`~repro.experiments.runner.DesignPoint`
    (whose fields and :meth:`~repro.experiments.runner.DesignPoint.key` it
    inherits) with the workload it belongs to.  ``workload`` is
    keyword-only in practice: it defaults only so the inherited defaulted
    fields can precede it, and an empty workload is rejected.
    """

    workload: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("SimulationPoint requires a workload name")


#: Artifacts visible to forked simulation workers (set only around the pool).
_FORK_ARTIFACTS: Dict[str, WorkloadArtifacts] = {}

#: One worker task: every pending point of one workload, so the worker's
#: ``simulate_batch`` shares one lowering across them all (and warm-up state
#: within each config).
_BatchTask = Tuple[str, Tuple[SimulationPoint, ...]]


def _simulate_batch_task(task: _BatchTask) -> Tuple[str, List[Tuple[SimulationKey, SimulationResult]]]:
    name, points = task
    results = _run_batch(_FORK_ARTIFACTS[name], points)
    return name, results


def _run_batch(
    artifact: WorkloadArtifacts, points: Sequence[SimulationPoint]
) -> List[Tuple[SimulationKey, SimulationResult]]:
    """The batch body both execution modes share."""
    return list(artifact.simulate_batch(points).items())


def _group_points(pending: Sequence[SimulationPoint]) -> List[_BatchTask]:
    """Group points by workload: one lowering per task, mixed configs inside.

    The engine's ``simulate_batch`` keys its warm-state builders by config
    internally, so a single per-workload task still shares warm-up within
    each config while computing the (config-independent) lowering once.
    """
    groups: Dict[str, List[SimulationPoint]] = {}
    for point in pending:
        groups.setdefault(point.workload, []).append(point)
    return [(workload, tuple(points)) for workload, points in groups.items()]


def simulate_points(
    artifacts: Sequence[WorkloadArtifacts],
    points: Iterable[SimulationPoint],
    jobs: int = 0,
) -> int:
    """Run simulation points, seeding each artifact's in-memory memo.

    Points already present in a memo are skipped.  Returns the number of
    points actually simulated.  Pending points are grouped by workload and
    each group runs through :meth:`WorkloadArtifacts.simulate_batch`, so
    the columnar lowering is computed once per group and the warm-up
    component snapshots are shared across every design and flush-interval
    within each config.  With ``jobs > 1`` the groups fan out over
    forked workers that inherit the prepared artifacts read-only; the
    resulting ``SimulationResult``s are stored back on the parent's
    artifacts, so subsequent :meth:`WorkloadArtifacts.simulate` calls are
    memo hits regardless of which mode computed them.
    """
    by_name = {artifact.name: artifact for artifact in artifacts}
    pending: List[SimulationPoint] = []
    seen = set()
    for point in points:
        if point.workload not in by_name:
            raise KeyError(f"no prepared artifact for workload {point.workload!r}")
        identity = (point.workload, point.key())
        if identity in seen or point.key() in by_name[point.workload].simulations:
            continue
        seen.add(identity)
        pending.append(point)
    if not pending:
        return 0

    jobs = jobs or default_jobs()
    context = _fork_context()
    tasks = _group_points(pending)
    if jobs <= 1 or len(tasks) <= 1 or context is None:
        for name, group in tasks:
            for key, result in _run_batch(by_name[name], group):
                by_name[name].store_simulation(key, result)
        return len(pending)

    global _FORK_ARTIFACTS
    _FORK_ARTIFACTS = dict(by_name)
    try:
        with context.Pool(processes=min(jobs, len(tasks))) as pool:
            outcomes = pool.map(_simulate_batch_task, tasks, chunksize=1)
    finally:
        _FORK_ARTIFACTS = {}
    for name, results in outcomes:
        for key, result in results:
            by_name[name].store_simulation(key, result)
    return len(pending)
