"""Bit-packed hardware trace representation (Figure 4 / Section 5.2).

Three element formats are defined, mirroring the BTU's storage layout:

* **Pattern element** — 12-bit signed target offset (target PC minus branch
  PC) plus an 8-bit repetition count.  Vanilla elements with more than 255
  repetitions are split across multiple pattern elements whose counts sum to
  the original value.
* **Trace element** — 4-bit pattern index and 8-bit pattern size selecting a
  window of the branch's pattern store, a 16-bit pattern counter (the total
  repetitions inside one traversal of the pattern) and a 4-bit trace counter
  (how many times the pattern repeats before the trace advances).
* **Checkpoint element** — the committed replay position used to recover from
  BTU evictions, interrupts, and pipeline squashes.

:func:`build_hardware_trace` converts a :class:`~repro.analysis.kmers.KmersResult`
into this representation and :meth:`HardwareTrace.replay` decompresses it back
to the raw target sequence, which the test-suite uses as the round-trip
correctness criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.kmers import KmersResult, compact_pattern_store
from repro.analysis.vanilla import VanillaElement

PATTERN_OFFSET_BITS = 12
PATTERN_REPS_BITS = 8
TRACE_PATTERN_INDEX_BITS = 4
TRACE_PATTERN_SIZE_BITS = 8
TRACE_PATTERN_COUNTER_BITS = 16
TRACE_COUNTER_BITS = 4

MAX_PATTERN_REPS = (1 << PATTERN_REPS_BITS) - 1
MAX_TRACE_COUNTER = (1 << TRACE_COUNTER_BITS) - 1
MAX_PATTERN_COUNTER = (1 << TRACE_PATTERN_COUNTER_BITS) - 1
MAX_PATTERN_INDEX = (1 << TRACE_PATTERN_INDEX_BITS) - 1

#: Number of elements per BTU entry (Pattern Table / Trace Cache).
BTU_ENTRY_ELEMENTS = 16


@dataclass(frozen=True)
class PatternElement:
    """One element of a branch's pattern store."""

    target_offset: int
    repetitions: int

    def __post_init__(self) -> None:
        if not (1 <= self.repetitions <= MAX_PATTERN_REPS):
            raise ValueError(
                f"pattern element repetitions {self.repetitions} outside 1..{MAX_PATTERN_REPS}"
            )

    @property
    def storage_bits(self) -> int:
        return PATTERN_OFFSET_BITS + PATTERN_REPS_BITS

    def target_pc(self, branch_pc: int) -> int:
        return branch_pc + self.target_offset

    def encode(self) -> int:
        """Pack into an integer (offset in two's complement, then count)."""
        offset = self.target_offset & ((1 << PATTERN_OFFSET_BITS) - 1)
        return (offset << PATTERN_REPS_BITS) | self.repetitions

    @classmethod
    def decode(cls, word: int) -> "PatternElement":
        repetitions = word & ((1 << PATTERN_REPS_BITS) - 1)
        offset = word >> PATTERN_REPS_BITS
        if offset >= 1 << (PATTERN_OFFSET_BITS - 1):
            offset -= 1 << PATTERN_OFFSET_BITS
        return cls(target_offset=offset, repetitions=repetitions)


@dataclass(frozen=True)
class TraceElement:
    """One element of a branch's compressed trace."""

    pattern_index: int
    pattern_size: int
    pattern_counter: int
    trace_counter: int
    end_of_trace: bool = False

    @property
    def storage_bits(self) -> int:
        return (
            TRACE_PATTERN_INDEX_BITS
            + TRACE_PATTERN_SIZE_BITS
            + TRACE_PATTERN_COUNTER_BITS
            + TRACE_COUNTER_BITS
        )

    @classmethod
    def end_marker(cls) -> "TraceElement":
        """The special End-of-Trace marker used to wrap around."""
        return cls(
            pattern_index=0,
            pattern_size=0,
            pattern_counter=0,
            trace_counter=0,
            end_of_trace=True,
        )


@dataclass
class CheckpointElement:
    """Committed replay progress for one branch (Figure 4(c))."""

    trace_index: int = 0
    latest_pattern_counter: int = 0
    latest_trace_counter: int = 0
    original_pattern_counter: int = 0
    original_trace_counter: int = 0

    def copy(self) -> "CheckpointElement":
        return CheckpointElement(
            trace_index=self.trace_index,
            latest_pattern_counter=self.latest_pattern_counter,
            latest_trace_counter=self.latest_trace_counter,
            original_pattern_counter=self.original_pattern_counter,
            original_trace_counter=self.original_trace_counter,
        )


@dataclass
class HardwareTrace:
    """The complete hardware-ready trace of one static branch."""

    branch_pc: int
    pattern_store: List[PatternElement]
    trace_elements: List[TraceElement]
    offset_overflow: bool = False

    @property
    def trace_length(self) -> int:
        """Number of trace elements, excluding the End-of-Trace marker."""
        return sum(1 for element in self.trace_elements if not element.end_of_trace)

    @property
    def is_short_trace(self) -> bool:
        """Whether the trace fits in a single Trace Cache entry (Section 5.2)."""
        return self.trace_length <= BTU_ENTRY_ELEMENTS

    @property
    def pattern_overflow(self) -> bool:
        """Whether the pattern store exceeds one Pattern Table entry."""
        return len(self.pattern_store) > BTU_ENTRY_ELEMENTS

    @property
    def storage_bits(self) -> int:
        pattern_bits = sum(element.storage_bits for element in self.pattern_store)
        trace_bits = sum(element.storage_bits for element in self.trace_elements)
        return pattern_bits + trace_bits

    def pattern_window(self, element: TraceElement) -> List[PatternElement]:
        """The pattern-store slice a trace element refers to."""
        return self.pattern_store[
            element.pattern_index : element.pattern_index + element.pattern_size
        ]

    def replay(self, repetitions: int = 1) -> List[int]:
        """Decompress the trace back into target PCs (round-trip check).

        ``repetitions`` replays the whole trace multiple times, mirroring the
        BTU restarting from the beginning after the End-of-Trace marker.
        """
        targets: List[int] = []
        for _ in range(repetitions):
            for element in self.trace_elements:
                if element.end_of_trace:
                    continue
                window = self.pattern_window(element)
                for _trace_iter in range(element.trace_counter):
                    for pattern_element in window:
                        targets.extend(
                            [pattern_element.target_pc(self.branch_pc)]
                            * pattern_element.repetitions
                        )
        return targets

    def iter_targets(self) -> Iterator[int]:
        """Infinite target generator, replaying the trace forever."""
        while True:
            produced = False
            for target in self.replay():
                produced = True
                yield target
            if not produced:  # pragma: no cover - defensive for empty traces
                return


def _split_repetitions(count: int) -> List[int]:
    """Split a repetition count into chunks that fit the 8-bit field."""
    chunks: List[int] = []
    remaining = count
    while remaining > MAX_PATTERN_REPS:
        chunks.append(MAX_PATTERN_REPS)
        remaining -= MAX_PATTERN_REPS
    if remaining > 0:
        chunks.append(remaining)
    return chunks


def _pattern_to_elements(
    pattern: Sequence[VanillaElement], branch_pc: int
) -> Tuple[Tuple[PatternElement, ...], bool]:
    """Convert vanilla elements to pattern elements, splitting large counts."""
    elements: List[PatternElement] = []
    overflow = False
    for vanilla in pattern:
        offset = vanilla.target - branch_pc
        if not (-(1 << (PATTERN_OFFSET_BITS - 1)) <= offset < (1 << (PATTERN_OFFSET_BITS - 1))):
            overflow = True
        for chunk in _split_repetitions(vanilla.count):
            elements.append(PatternElement(target_offset=offset, repetitions=chunk))
    return tuple(elements), overflow


def build_hardware_trace(result: KmersResult) -> HardwareTrace:
    """Lower a k-mers compression result into the BTU's storage format."""
    branch_pc = result.branch_pc
    kmers_trace = result.kmers_trace
    pattern_set = result.pattern_set

    # Convert each pattern to hardware pattern elements.
    hardware_patterns: Dict[int, Tuple[PatternElement, ...]] = {}
    offset_overflow = False
    for symbol, vanilla_elements in pattern_set.items():
        elements, overflow = _pattern_to_elements(vanilla_elements, branch_pc)
        hardware_patterns[symbol] = elements
        offset_overflow = offset_overflow or overflow

    # Compact the pattern store so overlapping patterns share elements.
    ordered_symbols = [symbol for symbol, _count in kmers_trace]
    unique_symbols = sorted(set(ordered_symbols))
    store, windows = compact_pattern_store(
        [hardware_patterns[symbol] for symbol in unique_symbols]
    )
    window_by_symbol = dict(zip(unique_symbols, windows))

    trace_elements: List[TraceElement] = []
    for symbol, count in kmers_trace:
        offset, length = window_by_symbol[symbol]
        pattern_counter = sum(
            element.repetitions for element in store[offset : offset + length]
        )
        pattern_counter = min(pattern_counter, MAX_PATTERN_COUNTER)
        remaining = count
        while remaining > 0:
            chunk = min(remaining, MAX_TRACE_COUNTER)
            trace_elements.append(
                TraceElement(
                    pattern_index=offset,
                    pattern_size=length,
                    pattern_counter=pattern_counter,
                    trace_counter=chunk,
                )
            )
            remaining -= chunk
    trace_elements.append(TraceElement.end_marker())

    return HardwareTrace(
        branch_pc=branch_pc,
        pattern_store=list(store),
        trace_elements=trace_elements,
        offset_overflow=offset_overflow,
    )
