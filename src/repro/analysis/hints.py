"""Per-branch hint information embedded in the binary (Section 5.2).

The paper embeds fourteen bits of hint information per static branch using
re-purposed instruction prefix bytes: a *single-target* mark (1 bit), a
12-bit virtual-address offset pointing at the branch's traces in a data page,
and a *short-trace* mark (1 bit).  We model the same information at the
granularity of the program's static branches, plus an ``input_dependent``
flag for branches whose traces change between runs (Algorithm 2 refuses to
record those; the BTU stalls fetch until they resolve).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.isa.program import Program

#: Bits available in the hint encoding (single-target + 12-bit delta + short-trace).
HINT_BITS = 14
TRACE_DELTA_BITS = 12


@dataclass(frozen=True)
class BranchHint:
    """Hint metadata for one static branch."""

    branch_pc: int
    single_target: bool = False
    single_target_pc: Optional[int] = None
    short_trace: bool = False
    trace_address_delta: int = 0
    input_dependent: bool = False
    has_trace: bool = False

    def encode(self) -> int:
        """Pack the hint into its 14-bit binary encoding."""
        delta = self.trace_address_delta & ((1 << TRACE_DELTA_BITS) - 1)
        return (
            (int(self.single_target) << (TRACE_DELTA_BITS + 1))
            | (delta << 1)
            | int(self.short_trace)
        )

    @classmethod
    def decode(cls, branch_pc: int, word: int) -> "BranchHint":
        short_trace = bool(word & 1)
        delta = (word >> 1) & ((1 << TRACE_DELTA_BITS) - 1)
        single_target = bool(word >> (TRACE_DELTA_BITS + 1))
        return cls(
            branch_pc=branch_pc,
            single_target=single_target,
            short_trace=short_trace,
            trace_address_delta=delta,
        )


class HintTable:
    """All hints for a program plus its crypto PC ranges.

    This is the software-visible product of the trace-generation procedure:
    the *Crypto PC Ranges* status register is initialised from
    :attr:`crypto_ranges`, and the fetch unit consults :meth:`lookup` when a
    crypto branch misses in the BTU.
    """

    def __init__(self, program: Program, hints: Optional[Dict[int, BranchHint]] = None) -> None:
        self.program_name = program.name
        self.crypto_ranges: Tuple[Tuple[int, int], ...] = tuple(
            (region.start, region.end) for region in program.crypto_regions
        )
        self._hints: Dict[int, BranchHint] = dict(hints or {})

    def add(self, hint: BranchHint) -> None:
        self._hints[hint.branch_pc] = hint

    def lookup(self, branch_pc: int) -> Optional[BranchHint]:
        return self._hints.get(branch_pc)

    def __contains__(self, branch_pc: int) -> bool:
        return branch_pc in self._hints

    def __len__(self) -> int:
        return len(self._hints)

    def __iter__(self) -> Iterator[BranchHint]:
        return iter(self._hints.values())

    def is_crypto_pc(self, pc: int) -> bool:
        """The integrity check used by the non-crypto fetch flow (Section 5.3)."""
        return any(start <= pc < end for start, end in self.crypto_ranges)

    # ------------------------------------------------------------------ #
    # Summary statistics used in reports and tests
    # ------------------------------------------------------------------ #
    def single_target_fraction(self) -> float:
        """Fraction of hinted branches marked single-target (Q3 discussion)."""
        if not self._hints:
            return 0.0
        single = sum(1 for hint in self._hints.values() if hint.single_target)
        return single / len(self._hints)

    def counts(self) -> Dict[str, int]:
        return {
            "branches": len(self._hints),
            "single_target": sum(1 for h in self._hints.values() if h.single_target),
            "short_trace": sum(1 for h in self._hints.values() if h.short_trace),
            "input_dependent": sum(1 for h in self._hints.values() if h.input_dependent),
            "with_trace": sum(1 for h in self._hints.values() if h.has_trace),
        }
