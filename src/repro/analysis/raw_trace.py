"""Raw branch trace collection (step 1 of the paper's Figure 1).

A *raw trace* of a static branch is the sequence of target PCs observed each
time the branch executes, in execution order; for not-taken conditional
branches the fall-through PC (branch PC + 1) is logged, exactly as the paper
does with Intel Pin.  Here the role of Pin is played by the sequential
executor, which already records one ``next_pc`` per dynamic branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.executor import ExecutionResult, SequentialExecutor
from repro.isa.program import Program


@dataclass(frozen=True)
class RawTrace:
    """The raw outcome trace of one static branch."""

    branch_pc: int
    targets: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.targets)

    @property
    def unique_targets(self) -> tuple[int, ...]:
        """Distinct target PCs, in first-appearance order."""
        seen: Dict[int, None] = {}
        for target in self.targets:
            seen.setdefault(target, None)
        return tuple(seen.keys())

    @property
    def is_single_target(self) -> bool:
        """True when the branch always resolves to the same target."""
        return len(self.unique_targets) <= 1


def collect_raw_traces(
    program: Program,
    result: Optional[ExecutionResult] = None,
    memory_overrides: Optional[Dict[int, int]] = None,
    crypto_only: bool = True,
    executor: Optional[SequentialExecutor] = None,
) -> Dict[int, RawTrace]:
    """Collect raw traces for every static branch that executed.

    Parameters
    ----------
    program:
        The program to analyse.
    result:
        A pre-computed sequential run; when omitted the program is executed
        here (optionally with ``memory_overrides`` applied).
    crypto_only:
        When True (the default, matching the paper) only branches inside
        crypto PC ranges are returned.
    """
    if result is None:
        executor = executor or SequentialExecutor()
        result = executor.run(program, memory_overrides=memory_overrides)

    traces: Dict[int, RawTrace] = {}
    for branch_pc, targets in result.branch_outcomes.items():
        if crypto_only and not program.is_crypto_pc(branch_pc):
            continue
        traces[branch_pc] = RawTrace(branch_pc=branch_pc, targets=tuple(targets))
    return traces


def executed_static_branches(
    program: Program,
    result: Optional[ExecutionResult] = None,
    crypto_only: bool = True,
) -> List[int]:
    """PCs of static branches that executed at least once (Algorithm 2, step A)."""
    traces = collect_raw_traces(program, result=result, crypto_only=crypto_only)
    return sorted(traces.keys())
