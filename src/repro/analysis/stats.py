"""Aggregate branch-analysis statistics (the numbers behind Table 1).

For each program, Table 1 reports the average and maximum vanilla trace
size, the average and maximum k-mers size, and the average and maximum
compression rate, computed over static branches that are *not* single target
(their vanilla trace size is already 1 and the paper excludes them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.tracegen import TraceBundle, generate_trace_bundle
from repro.arch.executor import SequentialExecutor
from repro.isa.program import Program


@dataclass
class BranchRow:
    """Per-branch metrics that feed the aggregation."""

    branch_pc: int
    vanilla_size: int
    kmers_size: int
    compression_rate: float
    single_target: bool
    input_dependent: bool


@dataclass
class BranchAnalysisStats:
    """Aggregated analysis statistics for one program (a Table 1 row)."""

    program_name: str
    rows: List[BranchRow] = field(default_factory=list)

    @property
    def analyzed_rows(self) -> List[BranchRow]:
        """Rows the paper includes: multi-target branches only."""
        return [row for row in self.rows if not row.single_target]

    @property
    def branch_count(self) -> int:
        return len(self.rows)

    @property
    def single_target_count(self) -> int:
        return sum(1 for row in self.rows if row.single_target)

    @property
    def vanilla_avg(self) -> float:
        rows = self.analyzed_rows
        return sum(row.vanilla_size for row in rows) / len(rows) if rows else 0.0

    @property
    def vanilla_max(self) -> int:
        rows = self.analyzed_rows
        return max((row.vanilla_size for row in rows), default=0)

    @property
    def kmers_avg(self) -> float:
        rows = self.analyzed_rows
        return sum(row.kmers_size for row in rows) / len(rows) if rows else 0.0

    @property
    def kmers_max(self) -> int:
        rows = self.analyzed_rows
        return max((row.kmers_size for row in rows), default=0)

    @property
    def compression_avg(self) -> float:
        rows = self.analyzed_rows
        return sum(row.compression_rate for row in rows) / len(rows) if rows else 0.0

    @property
    def compression_max(self) -> float:
        rows = self.analyzed_rows
        return max((row.compression_rate for row in rows), default=0.0)

    def as_table_row(self) -> Dict[str, float]:
        """The Table 1 row for this program."""
        return {
            "program": self.program_name,
            "vanilla_avg": self.vanilla_avg,
            "vanilla_max": self.vanilla_max,
            "kmers_avg": self.kmers_avg,
            "kmers_max": self.kmers_max,
            "compression_avg": self.compression_avg,
            "compression_max": self.compression_max,
            "branches": self.branch_count,
            "single_target": self.single_target_count,
        }


def stats_from_bundle(bundle: TraceBundle) -> BranchAnalysisStats:
    """Build Table 1 metrics from an existing trace bundle."""
    stats = BranchAnalysisStats(program_name=bundle.program.name)
    for branch_pc, data in sorted(bundle.branches.items()):
        vanilla_size = len(data.vanilla)
        if data.kmers is not None:
            kmers_size = data.kmers.size
            rate = data.kmers.compression_rate
        else:
            kmers_size = 1
            rate = float(vanilla_size)
        stats.rows.append(
            BranchRow(
                branch_pc=branch_pc,
                vanilla_size=vanilla_size,
                kmers_size=kmers_size,
                compression_rate=rate,
                single_target=data.is_single_target,
                input_dependent=data.is_input_dependent,
            )
        )
    return stats


def analyze_program(
    program: Program,
    inputs: Sequence[Mapping[int, int]],
    crypto_only: bool = True,
    executor: Optional[SequentialExecutor] = None,
) -> BranchAnalysisStats:
    """Run the full trace-generation procedure and aggregate Table 1 metrics."""
    bundle = generate_trace_bundle(
        program, inputs, crypto_only=crypto_only, executor=executor
    )
    return stats_from_bundle(bundle)


def stats_from_bundle_scaled(bundle: TraceBundle, invocations: int) -> BranchAnalysisStats:
    """Table 1 metrics for ``invocations`` back-to-back runs of the program.

    The paper's Table 1 traces come from full benchmark executions that
    invoke each primitive a large number of times (vanilla traces of up to
    90 M elements), whereas the timing experiments use short, simulable
    inputs.  Repeated invocations of a constant-time primitive simply repeat
    each branch's raw trace, so the scaled statistics are computed by tiling
    the recorded raw traces ``invocations`` times and re-running the
    vanilla/DNA/k-mers pipeline — which is exactly what a longer profiling
    run would have produced for these branches.
    """
    from repro.analysis.raw_trace import RawTrace
    from repro.analysis.tracegen import generate_kmers_trace

    if invocations < 1:
        raise ValueError("invocations must be >= 1")
    stats = BranchAnalysisStats(program_name=bundle.program.name)
    for branch_pc, data in sorted(bundle.branches.items()):
        if data.is_single_target:
            stats.rows.append(
                BranchRow(
                    branch_pc=branch_pc,
                    vanilla_size=1,
                    kmers_size=1,
                    compression_rate=1.0,
                    single_target=True,
                    input_dependent=False,
                )
            )
            continue
        tiled = RawTrace(branch_pc=branch_pc, targets=data.raw.targets * invocations)
        vanilla, kmers = generate_kmers_trace(tiled)
        stats.rows.append(
            BranchRow(
                branch_pc=branch_pc,
                vanilla_size=len(vanilla),
                kmers_size=kmers.size,
                compression_rate=kmers.compression_rate,
                single_target=False,
                input_dependent=data.is_input_dependent,
            )
        )
    return stats


def combine_stats(all_stats: Sequence[BranchAnalysisStats]) -> BranchAnalysisStats:
    """Pool branches from several programs (the Table 1 ``All`` row)."""
    combined = BranchAnalysisStats(program_name="All")
    for stats in all_stats:
        combined.rows.extend(stats.rows)
    return combined
