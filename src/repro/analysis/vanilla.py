"""Vanilla traces: run-length encoded raw traces (step 2 of Figure 1).

A vanilla trace replaces runs of the same branch outcome with a single
``(target, repetitions)`` element, e.g. the raw trace ``PC1 PC1 PC1 PC1 PC0``
becomes ``PC1 x 4 . PC0 x 1``.  Vanilla traces are the paper's baseline for
the compression study: Table 1 reports their element counts before and after
k-mers compression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.analysis.raw_trace import RawTrace


@dataclass(frozen=True)
class VanillaElement:
    """One run-length encoded element of a vanilla trace."""

    target: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("vanilla element count must be positive")

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PC{self.target} x {self.count}"


@dataclass(frozen=True)
class VanillaTrace:
    """The vanilla (run-length encoded) trace of a single static branch."""

    branch_pc: int
    elements: Tuple[VanillaElement, ...]

    def __len__(self) -> int:
        """The *size* of the trace as counted by the paper (element count)."""
        return len(self.elements)

    def __iter__(self) -> Iterator[VanillaElement]:
        return iter(self.elements)

    @property
    def total_executions(self) -> int:
        """Number of dynamic branch executions the trace represents."""
        return sum(element.count for element in self.elements)

    @property
    def unique_targets(self) -> Tuple[int, ...]:
        seen = {}
        for element in self.elements:
            seen.setdefault(element.target, None)
        return tuple(seen.keys())

    @property
    def is_single_target(self) -> bool:
        return len(self.unique_targets) <= 1

    def expand(self) -> List[int]:
        """Inverse of the run-length encoding: the original raw target list."""
        raw: List[int] = []
        for element in self.elements:
            raw.extend([element.target] * element.count)
        return raw


def run_length_encode(targets: Sequence[int]) -> Tuple[VanillaElement, ...]:
    """Run-length encode a sequence of branch targets."""
    elements: List[VanillaElement] = []
    current: int | None = None
    count = 0
    for target in targets:
        if target == current:
            count += 1
        else:
            if current is not None:
                elements.append(VanillaElement(current, count))
            current = target
            count = 1
    if current is not None:
        elements.append(VanillaElement(current, count))
    return tuple(elements)


def to_vanilla_trace(raw: RawTrace) -> VanillaTrace:
    """Aggregate a raw trace into its vanilla (RLE) form."""
    return VanillaTrace(branch_pc=raw.branch_pc, elements=run_length_encode(raw.targets))
