"""DNA encoding of vanilla traces (step 3 of Figure 1).

The paper maps each distinct vanilla element (a ``target x count`` pair) to a
letter of a DNA-like alphabet so that off-the-shelf k-mers counting tools can
be applied.  Because our k-mers implementation is symbol-agnostic we use an
open-ended integer alphabet: base symbols ``0..n-1`` encode the distinct
vanilla elements, and the compression algorithm mints fresh symbols (the
"unused letters" of Algorithm 1) above that range when it substitutes
patterns.

A printable view using the familiar ``A C G T ...`` letters is provided for
small alphabets, which keeps doctests and reports readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.vanilla import VanillaElement, VanillaTrace

#: Letters used for the printable rendering of small alphabets.
PRINTABLE_ALPHABET = "ACGTUVWXYZBDEFHIJKLMNOPQRS"


@dataclass
class DnaSequence:
    """A symbolic sequence plus the mapping back to vanilla elements.

    Attributes
    ----------
    symbols:
        The encoded sequence; each entry is an integer symbol.
    alphabet:
        Mapping from base symbol to the vanilla element it encodes.
    branch_pc:
        The static branch this sequence belongs to.
    """

    symbols: List[int]
    alphabet: Dict[int, VanillaElement]
    branch_pc: int = -1

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self):
        return iter(self.symbols)

    @property
    def base_alphabet_size(self) -> int:
        return len(self.alphabet)

    def decode(self, symbols: Sequence[int] | None = None) -> List[VanillaElement]:
        """Map symbols back to vanilla elements (base symbols only)."""
        chosen = self.symbols if symbols is None else list(symbols)
        try:
            return [self.alphabet[symbol] for symbol in chosen]
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(
                f"symbol {exc.args[0]} is not part of the base alphabet; "
                "expand compression patterns before decoding"
            ) from exc

    def to_string(self) -> str:
        """Readable rendering; falls back to ``<n>`` tokens for big alphabets."""
        parts = []
        for symbol in self.symbols:
            if symbol < len(PRINTABLE_ALPHABET):
                parts.append(PRINTABLE_ALPHABET[symbol])
            else:
                parts.append(f"<{symbol}>")
        return "".join(parts)


def encode_vanilla_trace(trace: VanillaTrace) -> DnaSequence:
    """Encode a vanilla trace as a DNA-like symbolic sequence.

    Identical ``target x count`` elements map to the same symbol, exactly as
    in the paper's example where ``PC0 x 2 . PC1 x 5 . PC0 x 2 . PC1 x 5 .
    PC2 x 3`` becomes ``ACACG`` (with ``A = PC0 x 2``, ``C = PC1 x 5``,
    ``G = PC2 x 3``).
    """
    mapping: Dict[VanillaElement, int] = {}
    alphabet: Dict[int, VanillaElement] = {}
    symbols: List[int] = []
    for element in trace.elements:
        if element not in mapping:
            symbol = len(mapping)
            mapping[element] = symbol
            alphabet[symbol] = element
        symbols.append(mapping[element])
    return DnaSequence(symbols=symbols, alphabet=alphabet, branch_pc=trace.branch_pc)
