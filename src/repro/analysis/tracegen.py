"""Automatic trace generation (Algorithm 2 of the paper).

The procedure runs the program with two different inputs, generates k-mers
traces per static branch for each run, and only keeps traces for branches
whose compressed trace is identical across the inputs — other branches are
marked *input dependent* and the hardware stalls fetch for them until they
resolve (the paper's stream-loop case).  The output is a
:class:`TraceBundle`: per-branch hardware traces, the hint table, and timing
of every analysis step (used to reproduce the Section 7.5 runtime breakdown).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dna import encode_vanilla_trace
from repro.analysis.hints import BranchHint, HintTable
from repro.analysis.kmers import KmersResult, compress_sequence
from repro.analysis.raw_trace import RawTrace, collect_raw_traces
from repro.analysis.representation import HardwareTrace, build_hardware_trace
from repro.analysis.vanilla import VanillaTrace, to_vanilla_trace
from repro.arch.executor import ExecutionResult, SequentialExecutor
from repro.isa.program import Program

MemoryInput = Mapping[int, int]


@dataclass(frozen=True)
class TraceParameters:
    """The knobs of Algorithm 2 that change what a :class:`TraceBundle` holds.

    Bundles generated with different parameters are different artifacts; the
    pipeline's on-disk cache keys on this record (plus the program content)
    so a parameter change never returns a stale bundle.
    """

    crypto_only: bool = True
    max_k: int = 16

    def identity(self) -> tuple:
        return (self.crypto_only, self.max_k)


@dataclass
class BranchTraceData:
    """Everything the analysis produced for one static branch."""

    branch_pc: int
    raw: RawTrace
    vanilla: VanillaTrace
    kmers: Optional[KmersResult]
    hardware: Optional[HardwareTrace]
    hint: BranchHint

    @property
    def is_single_target(self) -> bool:
        return self.hint.single_target

    @property
    def is_input_dependent(self) -> bool:
        return self.hint.input_dependent


@dataclass
class StepTimings:
    """Wall-clock runtime of each step of Algorithm 2 (Section 7.5)."""

    detect_branches_s: float = 0.0
    collect_raw_s: float = 0.0
    vanilla_s: float = 0.0
    dna_s: float = 0.0
    kmers_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "A_detect_static_branches": self.detect_branches_s,
            "B_collect_raw_traces": self.collect_raw_s,
            "C_vanilla_traces": self.vanilla_s,
            "D_dna_encoding": self.dna_s,
            "E_kmers_compression": self.kmers_s,
        }


@dataclass
class TraceBundle:
    """The full product of the trace generation procedure for one program."""

    program: Program
    branches: Dict[int, BranchTraceData]
    hint_table: HintTable
    timings: StepTimings = field(default_factory=StepTimings)
    params: TraceParameters = field(default_factory=TraceParameters)

    def hardware_traces(self) -> Dict[int, HardwareTrace]:
        """Traces the BTU can load, keyed by branch PC."""
        return {
            pc: data.hardware
            for pc, data in self.branches.items()
            if data.hardware is not None
        }

    def multi_target_branches(self) -> List[int]:
        return [pc for pc, data in self.branches.items() if not data.is_single_target]

    def input_dependent_branches(self) -> List[int]:
        return [pc for pc, data in self.branches.items() if data.is_input_dependent]

    def counts(self) -> Dict[str, int]:
        summary = self.hint_table.counts()
        summary["analyzed_branches"] = len(self.branches)
        return summary


def generate_kmers_trace(raw: RawTrace) -> Tuple[VanillaTrace, KmersResult]:
    """Steps C-E of Algorithm 2 for a single branch's raw trace."""
    vanilla = to_vanilla_trace(raw)
    sequence = encode_vanilla_trace(vanilla)
    return vanilla, compress_sequence(sequence)


def _kmers_signature(kmers: KmersResult) -> Tuple:
    """A comparable summary of a k-mers trace (the ``diff`` of Algorithm 2).

    Two runs are considered to agree when their compressed traces expand to
    the same pattern structure: same RLE'd trace of pattern expansions.
    """
    trace = []
    for symbol, count in kmers.kmers_trace:
        expansion = tuple(
            (element.target, element.count) for element in kmers.pattern_elements(symbol)
        )
        trace.append((expansion, count))
    return tuple(trace)


def generate_trace_bundle(
    program: Program,
    inputs: Sequence[MemoryInput],
    crypto_only: bool = True,
    executor: Optional[SequentialExecutor] = None,
    max_k: int = 16,
) -> TraceBundle:
    """Algorithm 2: produce hardware traces and hints for a program.

    Parameters
    ----------
    program:
        The constant-time program to analyse.
    inputs:
        At least two memory-override mappings providing different
        confidential inputs.  Branches whose compressed traces differ across
        the inputs are marked input-dependent and get no recorded trace.
    crypto_only:
        Restrict the analysis to branches inside crypto PC ranges.
    """
    if len(inputs) < 2:
        raise ValueError("Algorithm 2 requires at least two inputs to diff traces")
    executor = executor or SequentialExecutor()
    timings = StepTimings()

    # Step A: detect static branches by running with the first input.
    start = time.perf_counter()
    results: List[ExecutionResult] = [
        executor.run(program, memory_overrides=dict(input_map)) for input_map in inputs
    ]
    raw_per_input: List[Dict[int, RawTrace]] = [
        collect_raw_traces(program, result=result, crypto_only=crypto_only)
        for result in results
    ]
    branch_pcs = sorted(raw_per_input[0].keys())
    timings.detect_branches_s = time.perf_counter() - start

    branches: Dict[int, BranchTraceData] = {}
    hint_table = HintTable(program)

    for branch_pc in branch_pcs:
        # Step B: raw traces (already collected per input above).
        start = time.perf_counter()
        raws = [per_input.get(branch_pc) for per_input in raw_per_input]
        timings.collect_raw_s += time.perf_counter() - start
        primary_raw = raws[0]
        assert primary_raw is not None

        # Single-target branches need no trace at all, only the hint.
        if primary_raw.is_single_target and all(
            raw is not None and raw.is_single_target and raw.unique_targets == primary_raw.unique_targets
            for raw in raws
        ):
            vanilla = to_vanilla_trace(primary_raw)
            hint = BranchHint(
                branch_pc=branch_pc,
                single_target=True,
                single_target_pc=primary_raw.unique_targets[0] if primary_raw.unique_targets else None,
                short_trace=True,
                has_trace=False,
            )
            hint_table.add(hint)
            branches[branch_pc] = BranchTraceData(
                branch_pc=branch_pc,
                raw=primary_raw,
                vanilla=vanilla,
                kmers=None,
                hardware=None,
                hint=hint,
            )
            continue

        # Steps C-E per input: vanilla -> DNA -> k-mers.
        per_input_kmers: List[KmersResult] = []
        primary_vanilla: Optional[VanillaTrace] = None
        for raw in raws:
            if raw is None:
                continue
            start = time.perf_counter()
            vanilla = to_vanilla_trace(raw)
            timings.vanilla_s += time.perf_counter() - start
            if primary_vanilla is None:
                primary_vanilla = vanilla
            start = time.perf_counter()
            sequence = encode_vanilla_trace(vanilla)
            timings.dna_s += time.perf_counter() - start
            start = time.perf_counter()
            per_input_kmers.append(compress_sequence(sequence, max_k=max_k))
            timings.kmers_s += time.perf_counter() - start
        assert primary_vanilla is not None

        # The diff of Algorithm 2: branches whose traces change with the
        # input are input-dependent and get no recorded trace.
        signatures = {_kmers_signature(kmers) for kmers in per_input_kmers}
        input_dependent = len(signatures) != 1 or len(per_input_kmers) != len(raws)

        if input_dependent:
            hint = BranchHint(
                branch_pc=branch_pc,
                single_target=False,
                input_dependent=True,
                has_trace=False,
            )
            hint_table.add(hint)
            branches[branch_pc] = BranchTraceData(
                branch_pc=branch_pc,
                raw=primary_raw,
                vanilla=primary_vanilla,
                kmers=per_input_kmers[0],
                hardware=None,
                hint=hint,
            )
            continue

        kmers = per_input_kmers[0]
        hardware = build_hardware_trace(kmers)
        hint = BranchHint(
            branch_pc=branch_pc,
            single_target=False,
            short_trace=hardware.is_short_trace,
            trace_address_delta=branch_pc & ((1 << 12) - 1),
            has_trace=True,
        )
        hint_table.add(hint)
        branches[branch_pc] = BranchTraceData(
            branch_pc=branch_pc,
            raw=primary_raw,
            vanilla=primary_vanilla,
            kmers=kmers,
            hardware=hardware,
            hint=hint,
        )

    return TraceBundle(
        program=program,
        branches=branches,
        hint_table=hint_table,
        timings=timings,
        params=TraceParameters(crypto_only=crypto_only, max_k=max_k),
    )
