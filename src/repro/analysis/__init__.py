"""Branch analysis and trace compression (the paper's Section 4).

The pipeline mirrors Figure 1 of the paper:

1. *Raw traces* — per static branch, the sequence of target PCs observed
   during a sequential run (:mod:`repro.analysis.raw_trace`).
2. *Vanilla traces* — run-length encoded raw traces
   (:mod:`repro.analysis.vanilla`).
3. *DNA encoding* — vanilla traces mapped onto a symbolic alphabet
   (:mod:`repro.analysis.dna`).
4. *k-mers compression* — Algorithm 1: repeated substitution of the most
   frequent k-mer until the sequence stops shrinking
   (:mod:`repro.analysis.kmers`).
5. *Hardware representation* — bit-packed pattern / trace / checkpoint
   elements and per-branch hints (Figure 4, Section 5.2)
   (:mod:`repro.analysis.representation`, :mod:`repro.analysis.hints`).
6. *Automatic trace generation* — Algorithm 2: run with two inputs, detect
   input-dependent branches, and bundle everything the hardware needs
   (:mod:`repro.analysis.tracegen`).
"""

from repro.analysis.raw_trace import RawTrace, collect_raw_traces
from repro.analysis.vanilla import VanillaElement, VanillaTrace, to_vanilla_trace
from repro.analysis.dna import DnaSequence, encode_vanilla_trace
from repro.analysis.kmers import KmersResult, compress_sequence, count_kmers
from repro.analysis.representation import (
    CheckpointElement,
    PatternElement,
    TraceElement,
    HardwareTrace,
    build_hardware_trace,
)
from repro.analysis.hints import BranchHint, HintTable
from repro.analysis.tracegen import (
    BranchTraceData,
    TraceBundle,
    generate_kmers_trace,
    generate_trace_bundle,
)
from repro.analysis.stats import BranchAnalysisStats, analyze_program

__all__ = [
    "RawTrace",
    "collect_raw_traces",
    "VanillaElement",
    "VanillaTrace",
    "to_vanilla_trace",
    "DnaSequence",
    "encode_vanilla_trace",
    "KmersResult",
    "compress_sequence",
    "count_kmers",
    "CheckpointElement",
    "PatternElement",
    "TraceElement",
    "HardwareTrace",
    "build_hardware_trace",
    "BranchHint",
    "HintTable",
    "BranchTraceData",
    "TraceBundle",
    "generate_kmers_trace",
    "generate_trace_bundle",
    "BranchAnalysisStats",
    "analyze_program",
]
