"""k-mers counting and trace compression (Algorithm 1 of the paper).

The compression repeatedly finds the most *covering* repeated k-mer in the
symbolic sequence, records it as a pattern, and substitutes every
(non-overlapping) occurrence with a freshly minted symbol — the equivalent of
the "unused letters" in the paper's DNA formulation.  The loop stops when the
sequence stops shrinking.

The output is the compressed sequence ``K`` plus the pattern set ``P``.  The
paper reports the *k-mers trace size* as the size of the run-length encoded
compressed trace plus the size of its pattern set; :class:`KmersResult`
exposes exactly that metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.dna import DnaSequence
from repro.analysis.vanilla import VanillaElement

Symbol = int
Kmer = Tuple[Symbol, ...]


def count_kmers(symbols: Sequence[Symbol], k: int) -> Dict[Kmer, int]:
    """Count non-overlapping occurrences of every k-mer of length ``k``.

    Non-overlapping (left-to-right greedy) counts are used so that a k-mer
    with count > 1 is guaranteed to shrink the sequence when substituted,
    which keeps Algorithm 1's termination argument straightforward.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    counts: Dict[Kmer, int] = {}
    if k > len(symbols):
        return counts
    # First pass: overlapping candidate discovery.
    candidates: Dict[Kmer, None] = {}
    seq = tuple(symbols)
    for i in range(len(seq) - k + 1):
        candidates.setdefault(seq[i : i + k], None)
    # Second pass: greedy non-overlapping count per candidate.
    for kmer in candidates:
        count = 0
        i = 0
        while i <= len(seq) - k:
            if seq[i : i + k] == kmer:
                count += 1
                i += k
            else:
                i += 1
        counts[kmer] = count
    return counts


def replace_non_overlapping(
    symbols: Sequence[Symbol], kmer: Kmer, replacement: Symbol
) -> List[Symbol]:
    """Replace left-to-right non-overlapping occurrences of ``kmer``."""
    k = len(kmer)
    seq = tuple(symbols)
    out: List[Symbol] = []
    i = 0
    while i < len(seq):
        if i <= len(seq) - k and seq[i : i + k] == kmer:
            out.append(replacement)
            i += k
        else:
            out.append(seq[i])
            i += 1
    return out


@dataclass
class KmersResult:
    """Output of the k-mers compression for one static branch."""

    branch_pc: int
    compressed: List[Symbol]
    patterns: Dict[Symbol, Kmer]
    source: DnaSequence
    iterations: int = 0

    # ------------------------------------------------------------------ #
    # Expansion back to base symbols / vanilla elements
    # ------------------------------------------------------------------ #
    def expand_symbol(self, symbol: Symbol) -> Tuple[Symbol, ...]:
        """Recursively expand a symbol into base-alphabet symbols."""
        if symbol not in self.patterns:
            return (symbol,)
        expanded: List[Symbol] = []
        for child in self.patterns[symbol]:
            expanded.extend(self.expand_symbol(child))
        return tuple(expanded)

    def expand(self) -> List[Symbol]:
        """The fully decompressed base-symbol sequence (must equal the source)."""
        out: List[Symbol] = []
        for symbol in self.compressed:
            out.extend(self.expand_symbol(symbol))
        return out

    def pattern_elements(self, symbol: Symbol) -> List[VanillaElement]:
        """A symbol's expansion as vanilla (``target x count``) elements."""
        return self.source.decode(self.expand_symbol(symbol))

    # ------------------------------------------------------------------ #
    # The paper's size metrics
    # ------------------------------------------------------------------ #
    @property
    def kmers_trace(self) -> List[Tuple[Symbol, int]]:
        """Run-length encoded compressed trace, e.g. ``[(p0, 2), (p1, 1)]``."""
        trace: List[Tuple[Symbol, int]] = []
        for symbol in self.compressed:
            if trace and trace[-1][0] == symbol:
                trace[-1] = (symbol, trace[-1][1] + 1)
            else:
                trace.append((symbol, 1))
        return trace

    @property
    def pattern_set(self) -> Dict[Symbol, List[VanillaElement]]:
        """Vanilla-element expansion of every symbol used by the trace."""
        used = {symbol for symbol, _count in self.kmers_trace}
        return {symbol: self.pattern_elements(symbol) for symbol in sorted(used)}

    @property
    def pattern_set_size(self) -> int:
        """Total number of vanilla elements across the pattern set."""
        return sum(len(elements) for elements in self.pattern_set.values())

    @property
    def trace_size(self) -> int:
        """Number of entries in the run-length encoded compressed trace."""
        return len(self.kmers_trace)

    @property
    def size(self) -> int:
        """The paper's k-mers size: trace size plus pattern-set size."""
        return self.trace_size + self.pattern_set_size

    @property
    def compression_rate(self) -> float:
        """Vanilla size divided by k-mers size (Table 1's ``compression rate``)."""
        if self.size == 0:
            return 0.0
        return len(self.source) / self.size


def compress_sequence(sequence: DnaSequence, max_k: int = 16) -> KmersResult:
    """Algorithm 1: compress a DNA-encoded vanilla trace with k-mers counting.

    Parameters
    ----------
    sequence:
        The symbolic sequence produced by :func:`repro.analysis.dna.encode_vanilla_trace`.
    max_k:
        Upper bound on considered pattern length, mirroring the paper's knob
        that favours short, frequent patterns (and bounds storage needs).
    """
    seq: List[Symbol] = list(sequence.symbols)
    patterns: Dict[Symbol, Kmer] = {}
    next_symbol = (max(seq) + 1) if seq else sequence.base_alphabet_size
    next_symbol = max(next_symbol, sequence.base_alphabet_size)
    iterations = 0

    current_len = float("inf")
    while len(seq) < current_len:
        current_len = len(seq)
        coverage: Dict[Kmer, float] = {}
        upper_k = min(max_k, len(seq) // 2 if len(seq) >= 4 else len(seq))
        for k in range(2, upper_k + 1):
            for kmer, freq in count_kmers(seq, k).items():
                if freq <= 1 or len(kmer) > max_k:
                    continue
                if len(set(kmer)) == 1:
                    # Runs of a single symbol are already captured by the
                    # run-length encoding of the final k-mers trace; turning
                    # them into nested patterns would only grow the pattern
                    # set (the trace element's trace counter repeats a
                    # pattern for free).
                    continue
                coverage[kmer] = (k * freq) / len(seq)
        if not coverage:
            break
        # Deterministic tie-breaking: highest coverage, then shortest pattern,
        # then lexicographically smallest.
        best = max(coverage.items(), key=lambda item: (item[1], -len(item[0]), tuple(-s for s in item[0])))[0]
        patterns[next_symbol] = best
        seq = replace_non_overlapping(seq, best, next_symbol)
        next_symbol += 1
        iterations += 1

    return KmersResult(
        branch_pc=sequence.branch_pc,
        compressed=seq,
        patterns=patterns,
        source=sequence,
        iterations=iterations,
    )


def compact_pattern_store(
    patterns: Sequence[Tuple[VanillaElement, ...]],
) -> Tuple[List[VanillaElement], List[Tuple[int, int]]]:
    """Merge overlapping patterns into one compact store (Section 5.2).

    The paper stores patterns in a compact form where overlapping patterns
    share elements (``ACT`` and ``CTA`` stored as ``ACTA``).  This helper
    returns the flattened store plus each input pattern's ``(offset, length)``
    window within it.  A simple greedy superstring heuristic is used: contained
    patterns are dropped, then the pair with the largest suffix/prefix overlap
    is merged until no overlap remains.
    """
    unique: List[Tuple[VanillaElement, ...]] = []
    for pattern in patterns:
        if pattern and pattern not in unique:
            unique.append(pattern)

    # Drop patterns fully contained in another pattern.
    def contains(haystack: Tuple[VanillaElement, ...], needle: Tuple[VanillaElement, ...]) -> bool:
        if len(needle) > len(haystack):
            return False
        return any(
            haystack[i : i + len(needle)] == needle
            for i in range(len(haystack) - len(needle) + 1)
        )

    survivors = [
        p
        for p in unique
        if not any(p is not q and contains(q, p) for q in unique)
    ]

    def overlap(a: Tuple[VanillaElement, ...], b: Tuple[VanillaElement, ...]) -> int:
        max_len = min(len(a), len(b))
        for length in range(max_len, 0, -1):
            if a[len(a) - length :] == b[:length]:
                return length
        return 0

    merged = list(survivors)
    while len(merged) > 1:
        best_pair = None
        best_overlap = 0
        for i, a in enumerate(merged):
            for j, b in enumerate(merged):
                if i == j:
                    continue
                o = overlap(a, b)
                if o > best_overlap:
                    best_overlap = o
                    best_pair = (i, j)
        if best_pair is None or best_overlap == 0:
            break
        i, j = best_pair
        a, b = merged[i], merged[j]
        combined = a + b[best_overlap:]
        merged = [p for idx, p in enumerate(merged) if idx not in (i, j)]
        merged.append(combined)

    store: List[VanillaElement] = []
    for chunk in merged:
        store.extend(chunk)

    windows: List[Tuple[int, int]] = []
    store_tuple = tuple(store)
    for pattern in patterns:
        if not pattern:
            windows.append((0, 0))
            continue
        found = -1
        for i in range(len(store_tuple) - len(pattern) + 1):
            if store_tuple[i : i + len(pattern)] == pattern:
                found = i
                break
        if found < 0:  # pragma: no cover - defensive; should always be found
            found = len(store)
            store.extend(pattern)
            store_tuple = tuple(store)
        windows.append((found, len(pattern)))
    return store, windows
