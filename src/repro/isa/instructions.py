"""Instruction definitions for the reproduction ISA.

Every instruction is a small immutable record.  Register operands are
identified by string names (``"r0"`` .. ``"r31"`` plus ``"sp"``), memory is a
flat word-addressed address space, and immediates are arbitrary Python
integers (the architectural executor masks to 64 bits).

The opcodes deliberately cover the constructs of the paper's muAsm language
(assignments, loads, stores, conditional branches, calls, returns) plus the
arithmetic needed by real cryptographic kernels (add/sub/mul, logical ops,
rotates, shifts) and a handful of reproduction-specific markers
(``DECLASSIFY``, ``LEAK``, ``HINT``) used by the security experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Opcode(enum.Enum):
    """Operation codes understood by the executor and the OoO core."""

    # Arithmetic / logic (dst, src_a, src_b-or-imm)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ROTL = "rotl"  # 32-bit rotate left
    ROTR = "rotr"  # 32-bit rotate right
    ROTL64 = "rotl64"
    ROTR64 = "rotr64"
    # Comparisons produce 0/1 in dst.
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Constant-time conditional select: dst = a if cond != 0 else b.
    CSEL = "csel"
    # Data movement
    MOV = "mov"
    MOVI = "movi"
    # Memory
    LOAD = "load"
    STORE = "store"
    # Control flow
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    JMPI = "jmpi"  # indirect jump through a register
    CALL = "call"
    CALLI = "calli"  # indirect call through a register
    RET = "ret"
    # Markers / misc
    NOP = "nop"
    HALT = "halt"
    DECLASSIFY = "declassify"  # marks a register's content as public
    LEAK = "leak"  # models an attacker-visible transmitter (e.g. a cache access)
    FENCE = "fence"
    HINT = "hint"  # carries Cassandra hint metadata; decoded but not executed


#: Conditional branches: exactly two possible outcomes (taken / fall-through).
CONDITIONAL_BRANCH_OPCODES = frozenset({Opcode.BEQZ, Opcode.BNEZ})

#: Direct unconditional control transfers.
DIRECT_JUMP_OPCODES = frozenset({Opcode.JMP, Opcode.CALL})

#: Indirect control transfers (target comes from a register or the stack).
INDIRECT_OPCODES = frozenset({Opcode.JMPI, Opcode.CALLI, Opcode.RET})

#: All control-flow instructions the branch analysis considers "branches".
BRANCH_OPCODES = CONDITIONAL_BRANCH_OPCODES | DIRECT_JUMP_OPCODES | INDIRECT_OPCODES

#: Everything that changes the program counter non-sequentially.
CONTROL_FLOW_OPCODES = BRANCH_OPCODES

#: Memory-accessing opcodes (produce ``load``/``store`` observations).
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes whose result can be forwarded/needed by dependents.
WRITEBACK_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.ROTL,
        Opcode.ROTR,
        Opcode.ROTL64,
        Opcode.ROTR64,
        Opcode.CMPEQ,
        Opcode.CMPNE,
        Opcode.CMPLT,
        Opcode.CMPLE,
        Opcode.CMPGT,
        Opcode.CMPGE,
        Opcode.CSEL,
        Opcode.MOV,
        Opcode.MOVI,
        Opcode.LOAD,
    }
)


@dataclass(frozen=True)
class Instruction:
    """A single ISA instruction.

    Attributes
    ----------
    opcode:
        The operation to perform.
    dst:
        Destination register name, if the instruction writes a register.
    srcs:
        Source register names, in operand order.
    imm:
        Immediate operand (constant value, branch target PC, address offset,
        or call target, depending on the opcode).
    label:
        Optional symbolic label attached at this instruction's address.
    crypto:
        ``True`` when the instruction belongs to a crypto (``@kappa``) region.
    comment:
        Free-form text used by the builder for debugging and disassembly.
    """

    opcode: Opcode
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = field(default_factory=tuple)
    imm: Optional[int] = None
    label: Optional[str] = None
    crypto: bool = False
    comment: str = ""

    def with_crypto(self, crypto: bool) -> "Instruction":
        """Return a copy of this instruction with the crypto tag set."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=self.srcs,
            imm=self.imm,
            label=self.label,
            crypto=crypto,
            comment=self.comment,
        )

    def with_imm(self, imm: int) -> "Instruction":
        """Return a copy of this instruction with a resolved immediate."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=self.srcs,
            imm=imm,
            label=self.label,
            crypto=self.crypto,
            comment=self.comment,
        )

    @property
    def is_branch(self) -> bool:
        """Whether the branch analysis treats this instruction as a branch."""
        return self.opcode in BRANCH_OPCODES

    @property
    def is_conditional(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCH_OPCODES

    @property
    def is_indirect(self) -> bool:
        return self.opcode in INDIRECT_OPCODES

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.CALLI)

    @property
    def is_return(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def writes_register(self) -> bool:
        return self.dst is not None and self.opcode in WRITEBACK_OPCODES

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        parts = [self.opcode.value]
        if self.dst is not None:
            parts.append(self.dst)
        parts.extend(self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        text = " ".join(parts)
        tag = "@k" if self.crypto else ""
        if self.comment:
            return f"{text}{tag}  ; {self.comment}"
        return f"{text}{tag}"


def is_branch(instruction: Instruction) -> bool:
    """Module-level helper mirroring :attr:`Instruction.is_branch`."""
    return instruction.is_branch


def is_control_flow(instruction: Instruction) -> bool:
    """Whether the instruction redirects the program counter."""
    return instruction.opcode in CONTROL_FLOW_OPCODES


def is_memory(instruction: Instruction) -> bool:
    """Whether the instruction accesses memory."""
    return instruction.is_memory
