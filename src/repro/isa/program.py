"""Program container: a sequence of instructions plus metadata.

A :class:`Program` is the unit the architectural executor, the branch
analysis, and the out-of-order core all consume.  It records which PC ranges
belong to crypto code (the paper's *Crypto PC Ranges* register is initialised
from these), the entry point, and any initial memory image the kernel needs
(keys, plaintext buffers, constants tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class CryptoRegion:
    """A half-open PC range ``[start, end)`` tagged as crypto code."""

    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"invalid crypto region [{self.start}, {self.end})")


class Program:
    """An executable program for the reproduction ISA.

    Parameters
    ----------
    instructions:
        The instruction sequence; instruction *i* lives at PC *i*.
    entry:
        PC at which execution starts.
    initial_memory:
        Mapping of word address to initial value.
    labels:
        Mapping of symbolic label to PC.
    crypto_regions:
        PC ranges that belong to crypto code.  Instructions inside these
        ranges are expected to carry ``crypto=True`` tags.
    name:
        Human-readable program name (used in reports).
    secret_addresses:
        Addresses whose initial contents are confidential.  Used by the
        contract/leakage analysis and by ProSpeCT-style defenses.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        entry: int = 0,
        initial_memory: Optional[Dict[int, int]] = None,
        labels: Optional[Dict[str, int]] = None,
        crypto_regions: Optional[Iterable[CryptoRegion]] = None,
        name: str = "program",
        secret_addresses: Optional[Iterable[int]] = None,
    ) -> None:
        self._instructions: List[Instruction] = list(instructions)
        if not self._instructions:
            raise ValueError("a program must contain at least one instruction")
        if not (0 <= entry < len(self._instructions)):
            raise ValueError(f"entry PC {entry} is out of range")
        self.entry = entry
        self.initial_memory: Dict[int, int] = dict(initial_memory or {})
        self.labels: Dict[str, int] = dict(labels or {})
        self.crypto_regions: Tuple[CryptoRegion, ...] = tuple(crypto_regions or ())
        self.name = name
        self.secret_addresses = frozenset(secret_addresses or ())

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self._instructions[pc]

    @property
    def instructions(self) -> Sequence[Instruction]:
        return tuple(self._instructions)

    # ------------------------------------------------------------------ #
    # Queries used across the code base
    # ------------------------------------------------------------------ #
    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at ``pc``; raises ``IndexError`` if invalid."""
        if pc < 0 or pc >= len(self._instructions):
            raise IndexError(f"PC {pc} outside program of length {len(self)}")
        return self._instructions[pc]

    def is_valid_pc(self, pc: int) -> bool:
        return 0 <= pc < len(self._instructions)

    def is_crypto_pc(self, pc: int) -> bool:
        """Whether ``pc`` falls inside a crypto PC range."""
        return any(pc in region for region in self.crypto_regions)

    def label_pc(self, label: str) -> int:
        """Resolve a symbolic label to its PC."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise KeyError(f"unknown label {label!r} in program {self.name!r}") from exc

    def static_branches(self) -> List[int]:
        """PCs of all static branch instructions, in program order."""
        return [pc for pc, inst in enumerate(self._instructions) if inst.is_branch]

    def crypto_branches(self) -> List[int]:
        """PCs of static branches inside crypto regions."""
        return [pc for pc in self.static_branches() if self.is_crypto_pc(pc)]

    def halt_pcs(self) -> List[int]:
        return [
            pc
            for pc, inst in enumerate(self._instructions)
            if inst.opcode is Opcode.HALT
        ]

    # ------------------------------------------------------------------ #
    # Introspection / diagnostics
    # ------------------------------------------------------------------ #
    def disassemble(self) -> str:
        """Return a human-readable listing of the program."""
        reverse_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            reverse_labels.setdefault(pc, []).append(label)
        lines: List[str] = []
        for pc, inst in enumerate(self._instructions):
            for label in sorted(reverse_labels.get(pc, ())):
                lines.append(f"{label}:")
            marker = "K" if self.is_crypto_pc(pc) else " "
            lines.append(f"  {pc:6d} {marker} {inst}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, int]:
        """Small statistics dictionary used in reports and tests."""
        branches = self.static_branches()
        return {
            "instructions": len(self),
            "static_branches": len(branches),
            "crypto_branches": len(self.crypto_branches()),
            "crypto_regions": len(self.crypto_regions),
            "memory_words": len(self.initial_memory),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Program(name={self.name!r}, len={len(self)}, "
            f"branches={len(self.static_branches())})"
        )
