"""Program builder: a small embedded DSL for writing ISA kernels.

The crypto workloads in this reproduction are written against this builder
rather than as raw instruction lists.  The important property is that control
flow constructs (``for_range``, ``while_loop``, ``if_then``) emit *real*
branch instructions with symbolic labels — they are not unrolled — so the
resulting programs have the same loop/call control-flow structure as the
C implementations the paper analyses.

Typical use::

    b = ProgramBuilder("toy")
    with b.crypto():
        i = b.reg("i")
        acc = b.reg("acc")
        b.movi(acc, 0)
        with b.for_range(i, 0, 10):
            b.add(acc, acc, 3, imm=True)
    b.halt()
    program = b.build()
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import CryptoRegion, Program

Operand = Union[str, int]


@dataclass
class Label:
    """A symbolic code location, resolved to a PC when the program is built."""

    name: str
    pc: Optional[int] = None

    @property
    def placed(self) -> bool:
        return self.pc is not None


@dataclass
class _PendingInstruction:
    """Instruction whose immediate may still reference an unresolved label."""

    instruction: Instruction
    target: Optional[Label] = None
    crypto: bool = False


class BuilderError(ValueError):
    """Raised for malformed programs (unplaced labels, missing halt, ...)."""


class ProgramBuilder:
    """Incrementally build a :class:`~repro.isa.program.Program`.

    The builder keeps a data segment (``alloc``/``alloc_secret``) starting at
    :attr:`data_base`, tracks crypto regions via the :meth:`crypto` context
    manager, and resolves symbolic labels at :meth:`build` time.
    """

    def __init__(self, name: str = "program", data_base: int = 0x1000) -> None:
        self.name = name
        self.data_base = data_base
        self._pending: List[_PendingInstruction] = []
        self._labels: Dict[str, Label] = {}
        self._label_counter = 0
        self._reg_counter = 0
        self._reg_names: Dict[str, str] = {}
        self._memory: Dict[int, int] = {}
        self._secret_addresses: set[int] = set()
        self._data_cursor = data_base
        self._crypto_depth = 0
        self._entry_label: Optional[Label] = None
        self._symbols: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registers and data
    # ------------------------------------------------------------------ #
    def reg(self, hint: str = "t") -> str:
        """Allocate a fresh architectural register with a readable name."""
        name = f"r{self._reg_counter}_{hint}"
        self._reg_counter += 1
        return name

    def regs(self, *hints: str) -> Tuple[str, ...]:
        """Allocate several registers at once."""
        return tuple(self.reg(hint) for hint in hints)

    def alloc(
        self,
        symbol: str,
        values: Sequence[int] | int,
        secret: bool = False,
    ) -> int:
        """Reserve words in the data segment and return the base address.

        ``values`` is either an iterable of initial word values or an integer
        word count (zero-initialised).  When ``secret`` is set, the addresses
        are recorded as confidential for the leakage analysis and ProSpeCT.
        """
        if isinstance(values, int):
            values = [0] * values
        base = self._data_cursor
        for offset, value in enumerate(values):
            address = base + offset
            self._memory[address] = int(value)
            if secret:
                self._secret_addresses.add(address)
        self._data_cursor = base + max(len(values), 1)
        self._symbols[symbol] = base
        return base

    def alloc_secret(self, symbol: str, values: Sequence[int] | int) -> int:
        """Shorthand for :meth:`alloc` with ``secret=True``."""
        return self.alloc(symbol, values, secret=True)

    def symbol(self, name: str) -> int:
        """Return the base address previously allocated for ``name``."""
        return self._symbols[name]

    # ------------------------------------------------------------------ #
    # Labels and crypto regions
    # ------------------------------------------------------------------ #
    def label(self, hint: str = "L") -> Label:
        """Create (but do not place) a new unique label."""
        name = f"{hint}_{self._label_counter}"
        self._label_counter += 1
        label = Label(name)
        self._labels[name] = label
        return label

    def place(self, label: Label) -> None:
        """Bind ``label`` to the next emitted instruction's PC."""
        if label.placed:
            raise BuilderError(f"label {label.name} placed twice")
        label.pc = len(self._pending)

    @contextlib.contextmanager
    def crypto(self) -> Iterator[None]:
        """Mark all instructions emitted inside the block as crypto code."""
        self._crypto_depth += 1
        try:
            yield
        finally:
            self._crypto_depth -= 1

    @property
    def in_crypto(self) -> bool:
        return self._crypto_depth > 0

    # ------------------------------------------------------------------ #
    # Raw emission
    # ------------------------------------------------------------------ #
    def emit(
        self,
        opcode: Opcode,
        dst: Optional[str] = None,
        srcs: Sequence[str] = (),
        imm: Optional[int] = None,
        target: Optional[Label] = None,
        comment: str = "",
    ) -> int:
        """Emit one instruction; returns its PC within the program."""
        instruction = Instruction(
            opcode=opcode,
            dst=dst,
            srcs=tuple(srcs),
            imm=imm,
            crypto=self.in_crypto,
            comment=comment,
        )
        self._pending.append(
            _PendingInstruction(instruction, target=target, crypto=self.in_crypto)
        )
        return len(self._pending) - 1

    # ------------------------------------------------------------------ #
    # Arithmetic / data movement helpers
    # ------------------------------------------------------------------ #
    def _binary(self, opcode: Opcode, dst: str, a: str, b: Operand) -> int:
        if isinstance(b, int):
            return self.emit(opcode, dst=dst, srcs=(a,), imm=b)
        return self.emit(opcode, dst=dst, srcs=(a, b))

    def add(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.ADD, dst, a, b)

    def sub(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.SUB, dst, a, b)

    def mul(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.MUL, dst, a, b)

    def div(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.DIV, dst, a, b)

    def mod(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.MOD, dst, a, b)

    def and_(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.AND, dst, a, b)

    def or_(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.OR, dst, a, b)

    def xor(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.XOR, dst, a, b)

    def not_(self, dst: str, a: str) -> int:
        return self.emit(Opcode.NOT, dst=dst, srcs=(a,))

    def shl(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.SHL, dst, a, b)

    def shr(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.SHR, dst, a, b)

    def rotl(self, dst: str, a: str, b: Operand) -> int:
        """32-bit rotate left (crypto kernels mostly operate on 32-bit words)."""
        return self._binary(Opcode.ROTL, dst, a, b)

    def rotr(self, dst: str, a: str, b: Operand) -> int:
        """32-bit rotate right."""
        return self._binary(Opcode.ROTR, dst, a, b)

    def rotl64(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.ROTL64, dst, a, b)

    def rotr64(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.ROTR64, dst, a, b)

    def mask32(self, dst: str, src: Optional[str] = None) -> int:
        """Truncate ``src`` (default ``dst``) to 32 bits."""
        return self.and_(dst, src if src is not None else dst, 0xFFFFFFFF)

    def cmpeq(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPEQ, dst, a, b)

    def cmpne(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPNE, dst, a, b)

    def cmplt(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPLT, dst, a, b)

    def cmple(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPLE, dst, a, b)

    def cmpgt(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPGT, dst, a, b)

    def cmpge(self, dst: str, a: str, b: Operand) -> int:
        return self._binary(Opcode.CMPGE, dst, a, b)

    def csel(self, dst: str, cond: str, a: str, b: str) -> int:
        """Constant-time select: ``dst = a if cond != 0 else b``."""
        return self.emit(Opcode.CSEL, dst=dst, srcs=(cond, a, b))

    def mov(self, dst: str, src: str) -> int:
        return self.emit(Opcode.MOV, dst=dst, srcs=(src,))

    def movi(self, dst: str, value: int) -> int:
        return self.emit(Opcode.MOVI, dst=dst, imm=value)

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def load(self, dst: str, addr: str, offset: int = 0) -> int:
        """``dst = memory[addr + offset]``."""
        return self.emit(Opcode.LOAD, dst=dst, srcs=(addr,), imm=offset)

    def store(self, src: str, addr: str, offset: int = 0) -> int:
        """``memory[addr + offset] = src``."""
        return self.emit(Opcode.STORE, srcs=(src, addr), imm=offset)

    def load_imm_addr(self, dst: str, address: int) -> int:
        """Load from a constant address (uses a scratch address register)."""
        scratch = self.reg("addr")
        self.movi(scratch, address)
        return self.load(dst, scratch)

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    def beqz(self, cond: str, target: Label) -> int:
        return self.emit(Opcode.BEQZ, srcs=(cond,), target=target)

    def bnez(self, cond: str, target: Label) -> int:
        return self.emit(Opcode.BNEZ, srcs=(cond,), target=target)

    def jmp(self, target: Label) -> int:
        return self.emit(Opcode.JMP, target=target)

    def jmpi(self, reg: str) -> int:
        return self.emit(Opcode.JMPI, srcs=(reg,))

    def call(self, target: Label) -> int:
        return self.emit(Opcode.CALL, target=target)

    def calli(self, reg: str) -> int:
        return self.emit(Opcode.CALLI, srcs=(reg,))

    def ret(self) -> int:
        return self.emit(Opcode.RET)

    def nop(self) -> int:
        return self.emit(Opcode.NOP)

    def halt(self) -> int:
        return self.emit(Opcode.HALT)

    def fence(self) -> int:
        return self.emit(Opcode.FENCE)

    def declassify(self, reg: str) -> int:
        return self.emit(Opcode.DECLASSIFY, srcs=(reg,))

    def leak(self, reg: str) -> int:
        """Model an attacker-visible transmitter of ``reg`` (secret-dependent access)."""
        return self.emit(Opcode.LEAK, srcs=(reg,))

    # ------------------------------------------------------------------ #
    # Structured control flow
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def for_range(
        self,
        counter: str,
        start: Operand,
        stop: Operand,
        step: int = 1,
    ) -> Iterator[Label]:
        """Counted loop: ``for counter in range(start, stop, step)``.

        Emits a loop-head conditional branch whose dynamic trace has the
        classic ``taken^n . not-taken`` shape the paper's analysis exploits.
        Yields the loop-exit label (useful for early exits).
        """
        if step == 0:
            raise BuilderError("for_range step must be non-zero")
        head = self.label("loop_head")
        exit_label = self.label("loop_exit")
        cond = self.reg("loopcond")
        if isinstance(start, int):
            self.movi(counter, start)
        else:
            self.mov(counter, start)
        self.place(head)
        if step > 0:
            self.cmplt(cond, counter, stop)
        else:
            self.cmpgt(cond, counter, stop)
        self.beqz(cond, exit_label)
        try:
            yield exit_label
        finally:
            self.add(counter, counter, step)
            self.jmp(head)
            self.place(exit_label)

    @contextlib.contextmanager
    def while_loop(self, cond: str) -> Iterator[Tuple[Label, Label]]:
        """``while cond != 0`` loop.

        The caller must update ``cond`` inside the body.  The condition is
        tested at the head; yields ``(head, exit)`` labels.
        """
        head = self.label("while_head")
        exit_label = self.label("while_exit")
        self.place(head)
        self.beqz(cond, exit_label)
        try:
            yield head, exit_label
        finally:
            self.jmp(head)
            self.place(exit_label)

    @contextlib.contextmanager
    def if_then(self, cond: str) -> Iterator[Label]:
        """Execute the body only when ``cond != 0``; yields the skip label."""
        skip = self.label("if_skip")
        self.beqz(cond, skip)
        try:
            yield skip
        finally:
            self.place(skip)

    @contextlib.contextmanager
    def function(self, name: str) -> Iterator[Label]:
        """Define a callable function body; a ``ret`` is appended automatically.

        The function is skipped over in straight-line execution via a jump
        emitted before the body, so functions can be defined inline at any
        point of the program.
        """
        skip = self.label(f"skip_{name}")
        entry = self.label(f"fn_{name}")
        self.jmp(skip)
        self.place(entry)
        try:
            yield entry
        finally:
            self.ret()
            self.place(skip)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #
    def set_entry(self, label: Label) -> None:
        """Make execution start at ``label`` instead of PC 0."""
        self._entry_label = label

    def build(self, name: Optional[str] = None) -> Program:
        """Resolve labels and produce the final immutable :class:`Program`."""
        if not self._pending:
            raise BuilderError("cannot build an empty program")
        if self._pending[-1].instruction.opcode is not Opcode.HALT:
            # A trailing halt keeps the executor from running off the end.
            self.halt()

        labels: Dict[str, int] = {}
        for label in self._labels.values():
            if label.placed:
                labels[label.name] = label.pc  # type: ignore[assignment]

        instructions: List[Instruction] = []
        for pending in self._pending:
            instruction = pending.instruction
            if pending.target is not None:
                if not pending.target.placed:
                    raise BuilderError(
                        f"branch at PC {len(instructions)} targets unplaced "
                        f"label {pending.target.name}"
                    )
                instruction = instruction.with_imm(pending.target.pc)  # type: ignore[arg-type]
            instructions.append(instruction)

        crypto_regions = _crypto_regions_from_tags(instructions)
        entry = 0
        if self._entry_label is not None:
            if not self._entry_label.placed:
                raise BuilderError("entry label was never placed")
            entry = self._entry_label.pc  # type: ignore[assignment]
        return Program(
            instructions,
            entry=entry,
            initial_memory=dict(self._memory),
            labels=labels,
            crypto_regions=crypto_regions,
            name=name or self.name,
            secret_addresses=frozenset(self._secret_addresses),
        )


def _crypto_regions_from_tags(instructions: Sequence[Instruction]) -> List[CryptoRegion]:
    """Compute maximal crypto PC ranges from per-instruction tags."""
    regions: List[CryptoRegion] = []
    start: Optional[int] = None
    for pc, instruction in enumerate(instructions):
        if instruction.crypto and start is None:
            start = pc
        elif not instruction.crypto and start is not None:
            regions.append(CryptoRegion(start, pc))
            start = None
    if start is not None:
        regions.append(CryptoRegion(start, len(instructions)))
    return regions
