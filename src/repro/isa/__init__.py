"""Instruction set architecture for the Cassandra reproduction.

The ISA is a small RISC-like register machine modelled after the muAsm
language used in the paper's formalization (Appendix A), extended with the
arithmetic and memory operations needed to express real constant-time
cryptographic kernels.  Programs carry per-instruction crypto tags, mirroring
the paper's ``@kappa`` / ``@epsilon`` annotations, which the Cassandra
microarchitecture uses to decide between the Branch Trace Unit and the
conventional branch predictor.
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    BRANCH_OPCODES,
    CONTROL_FLOW_OPCODES,
    MEMORY_OPCODES,
    is_branch,
    is_control_flow,
    is_memory,
)
from repro.isa.program import Program, CryptoRegion
from repro.isa.builder import ProgramBuilder, Label

__all__ = [
    "Instruction",
    "Opcode",
    "BRANCH_OPCODES",
    "CONTROL_FLOW_OPCODES",
    "MEMORY_OPCODES",
    "is_branch",
    "is_control_flow",
    "is_memory",
    "Program",
    "CryptoRegion",
    "ProgramBuilder",
    "Label",
]
