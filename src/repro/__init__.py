"""repro: a reproduction of *Cassandra: Efficient Enforcement of Sequential
Execution for Cryptographic Programs* (ISCA 2025).

The package is organised around the paper's artefacts:

* :mod:`repro.isa`, :mod:`repro.arch` — the instruction set and sequential
  execution model the workloads run on.
* :mod:`repro.analysis` — the branch analysis and k-mers trace compression
  (Section 4).
* :mod:`repro.uarch` — the out-of-order core, the Branch Trace Unit, and the
  defense design points (Sections 5 and 7).
* :mod:`repro.crypto` — constant-time cryptographic workloads (BearSSL-,
  OpenSSL-, and PQC-inspired kernels plus synthetic mixes).
* :mod:`repro.power` — the analytical power/area model (Section 7.4).
* :mod:`repro.formal` — the executable contract model (Appendix A).
* :mod:`repro.attacks` — Spectre-style gadgets and the Table 2 scenarios.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
* :mod:`repro.api` — the declarative request surface: ``SimulationRequest``
  / ``ScenarioMatrix`` in, typed ``ResultSet`` out, with pluggable
  execution backends (serial / fork / subprocess shard).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
