"""Named workload registry matching the paper's evaluation suites.

The registry exposes the 22 workloads of Table 1 / Figure 7, grouped into the
BearSSL, OpenSSL, and post-quantum (PQC) suites.  Workloads are built lazily
and cached, since constructing a kernel builds and verifies an ISA program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.crypto.programs.aes import build_aes_ctr, build_cbc_ct
from repro.crypto.programs.chacha20 import build_chacha20, build_openssl_chacha20
from repro.crypto.programs.common import KernelProgram
from repro.crypto.programs.des import build_des
from repro.crypto.programs.ec import build_ecdsa, build_montgomery_ladder, build_openssl_curve25519
from repro.crypto.programs.keccak import build_shake
from repro.crypto.programs.kyber import build_kyber512, build_kyber768
from repro.crypto.programs.modexp import build_modpow_i31, build_mul, build_rsa_i62
from repro.crypto.programs.poly1305 import build_poly1305
from repro.crypto.programs.sha256 import (
    build_multihash,
    build_openssl_sha256,
    build_sha256,
    build_tls_prf,
)
from repro.crypto.programs.sphincs import (
    build_sphincs_haraka,
    build_sphincs_sha2,
    build_sphincs_shake,
)


@dataclass
class Workload:
    """A lazily built benchmark workload."""

    name: str
    suite: str
    builder: Callable[[], KernelProgram]
    _kernel: Optional[KernelProgram] = field(default=None, repr=False)

    def kernel(self) -> KernelProgram:
        if self._kernel is None:
            self._kernel = self.builder()
        return self._kernel


@dataclass
class WorkloadSuite:
    """A named group of workloads (BearSSL / OpenSSL / PQC)."""

    name: str
    workloads: List[Workload]

    def __iter__(self) -> Iterator[Workload]:
        return iter(self.workloads)

    def names(self) -> List[str]:
        return [workload.name for workload in self.workloads]


_REGISTRY: Dict[str, Workload] = {}


def _register(name: str, suite: str, builder: Callable[[], KernelProgram]) -> None:
    _REGISTRY[name] = Workload(name=name, suite=suite, builder=builder)


# --------------------------------------------------------------------------- #
# BearSSL suite
# --------------------------------------------------------------------------- #
_register("AES_CTR", "bearssl", build_aes_ctr)
_register("CBC_ct", "bearssl", build_cbc_ct)
_register("ChaCha20_ct", "bearssl", build_chacha20)
_register("DES_ct", "bearssl", build_des)
_register("EC_c25519_i31", "bearssl", build_montgomery_ladder)
_register("ECDSA_i31", "bearssl", build_ecdsa)
_register("ModPow_i31", "bearssl", build_modpow_i31)
_register("MultiHash", "bearssl", build_multihash)
_register("Poly1305_ctmul", "bearssl", build_poly1305)
_register("mul", "bearssl", build_mul)
_register("RSA_i62", "bearssl", build_rsa_i62)
_register("SHA-256", "bearssl", build_sha256)
_register("SHAKE", "bearssl", build_shake)
_register("TLS PRF", "bearssl", build_tls_prf)

# --------------------------------------------------------------------------- #
# OpenSSL suite
# --------------------------------------------------------------------------- #
_register("chacha20", "openssl", build_openssl_chacha20)
_register("curve25519", "openssl", build_openssl_curve25519)
_register("sha256", "openssl", build_openssl_sha256)

# --------------------------------------------------------------------------- #
# Post-quantum suite
# --------------------------------------------------------------------------- #
_register("kyber512", "pqc", build_kyber512)
_register("kyber768", "pqc", build_kyber768)
_register("sphincs-haraka-128s", "pqc", build_sphincs_haraka)
_register("sphincs-sha2-128s", "pqc", build_sphincs_sha2)
_register("sphincs-shake-128s", "pqc", build_sphincs_shake)


def workload_names(suite: Optional[str] = None) -> List[str]:
    """All registered workload names, optionally filtered by suite."""
    return [
        name
        for name, workload in _REGISTRY.items()
        if suite is None or workload.suite == suite
    ]


def get_workload(name: str) -> Workload:
    """Look up a workload by its paper name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {sorted(_REGISTRY)}"
        ) from exc


def iter_workloads(suite: Optional[str] = None) -> Iterator[Workload]:
    """Iterate over workloads, optionally restricted to one suite."""
    for workload in _REGISTRY.values():
        if suite is None or workload.suite == suite:
            yield workload


def suites() -> List[WorkloadSuite]:
    """The three benchmark suites in the paper's presentation order."""
    return [
        WorkloadSuite("pqc", [w for w in _REGISTRY.values() if w.suite == "pqc"]),
        WorkloadSuite("openssl", [w for w in _REGISTRY.values() if w.suite == "openssl"]),
        WorkloadSuite("bearssl", [w for w in _REGISTRY.values() if w.suite == "bearssl"]),
    ]
