"""Cryptographic workloads for the Cassandra reproduction.

Two layers live here:

* :mod:`repro.crypto.primitives` — pure-Python reference implementations of
  the algorithms the paper's benchmark suites exercise (ChaCha20, Poly1305,
  AES, SHA-256, Keccak/SHAKE, DES, HMAC/TLS-PRF, X25519, modular
  exponentiation, ECDSA-style curves, Kyber- and SPHINCS-style post-quantum
  schemes).  They serve as ground truth for the ISA kernels and as standalone
  substrates.
* :mod:`repro.crypto.programs` — the same algorithms written as ISA programs
  via the :class:`~repro.isa.builder.ProgramBuilder`.  These preserve the
  loop/call control-flow structure of the real implementations (the property
  the branch analysis and the BTU depend on); where full-width arithmetic is
  impractical on the 64-bit toy ISA the kernels use reduced parameters and
  are verified against a matching reduced model.

The named workloads used by the paper's evaluation (Table 1, Figure 7) are
registered in :mod:`repro.crypto.workloads`, and the SpectreGuard-style mixed
sandbox/crypto benchmarks of Figure 8 live in :mod:`repro.crypto.synthetic`.
Import those modules directly; this package intentionally re-exports nothing
to keep import costs low for users who only need one layer.
"""
