"""A reduced SPHINCS+-style hash-based signature (WOTS+ chains + Merkle tree).

SPHINCS+ signing is dominated by very regular hash-chain loops, which is why
the paper's three ``sphincs-*-128s`` workloads compress so well.  This module
implements the two components that generate that control flow — Winternitz
one-time signatures (WOTS+) and a Merkle authentication tree — parameterised
by the tweakable hash function (SHA-256-, SHAKE-, or Haraka-style), mirroring
the three benchmark variants.

Reduced parameters (16-byte hashes, small trees) keep the matching ISA
kernels simulable; the signing/verification logic is otherwise standard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.crypto.primitives.keccak import shake256
from repro.crypto.primitives.sha256 import sha256

HashFn = Callable[[bytes], bytes]

#: Output size of the tweakable hash (bytes).
N = 16


def sha2_hash(data: bytes) -> bytes:
    """SHA-256-based tweakable hash (sphincs-sha2 variant)."""
    return sha256(data)[:N]


def shake_hash(data: bytes) -> bytes:
    """SHAKE-based tweakable hash (sphincs-shake variant)."""
    return shake256(data, N)


def haraka_hash(data: bytes) -> bytes:
    """A Haraka-style short-input permutation hash (sphincs-haraka variant).

    Haraka512 is an AES-round-based permutation for short inputs; we model it
    with a small ARX permutation over four 32-bit words, keeping the "short
    input, fixed rounds" structure.
    """
    words = [0x9E3779B9, 0x243F6A88, 0xB7E15162, 0x5BE0CD19]
    padded = data + b"\x00" * ((-len(data)) % 16)
    for offset in range(0, len(padded), 16):
        for i in range(4):
            words[i] ^= int.from_bytes(padded[offset + 4 * i : offset + 4 * i + 4], "little")
        for _round in range(5):
            for i in range(4):
                words[i] = (words[i] + words[(i + 1) % 4]) & 0xFFFFFFFF
                words[(i + 2) % 4] ^= ((words[i] << 7) | (words[i] >> 25)) & 0xFFFFFFFF
    return b"".join(w.to_bytes(4, "little") for w in words)


HASH_VARIANTS = {
    "sha2": sha2_hash,
    "shake": shake_hash,
    "haraka": haraka_hash,
}


@dataclass(frozen=True)
class SphincsParams:
    """Reduced SPHINCS-style parameters."""

    winternitz: int = 16  # chain length parameter w
    chains: int = 8  # number of WOTS chains (len)
    tree_height: int = 3
    variant: str = "sha2"
    name: str = "sphincs-sha2-128s-reduced"

    @property
    def hash_fn(self) -> HashFn:
        return HASH_VARIANTS[self.variant]


SPHINCS_SHA2 = SphincsParams(variant="sha2", name="sphincs-sha2-128s-reduced")
SPHINCS_SHAKE = SphincsParams(variant="shake", name="sphincs-shake-128s-reduced")
SPHINCS_HARAKA = SphincsParams(variant="haraka", name="sphincs-haraka-128s-reduced")


def chain(value: bytes, start: int, steps: int, params: SphincsParams) -> bytes:
    """Apply the WOTS chaining function ``steps`` times starting at ``start``."""
    out = value
    hash_fn = params.hash_fn
    for i in range(start, start + steps):
        out = hash_fn(bytes([i]) + out)
    return out


def message_to_digits(digest: bytes, params: SphincsParams) -> List[int]:
    """Split a message digest into base-w digits, one per chain."""
    digits: List[int] = []
    bits_per_digit = params.winternitz.bit_length() - 1
    bit_buffer = int.from_bytes(digest, "big")
    total_bits = len(digest) * 8
    for i in range(params.chains):
        shift = total_bits - bits_per_digit * (i + 1)
        digits.append((bit_buffer >> max(shift, 0)) & (params.winternitz - 1))
    return digits


def wots_keygen(seed: bytes, params: SphincsParams) -> Tuple[List[bytes], bytes]:
    """Generate WOTS secret chain heads and the compressed public key."""
    hash_fn = params.hash_fn
    secrets = [hash_fn(seed + bytes([i])) for i in range(params.chains)]
    publics = [chain(secret, 0, params.winternitz - 1, params) for secret in secrets]
    return secrets, hash_fn(b"".join(publics))


def wots_sign(digest: bytes, seed: bytes, params: SphincsParams) -> List[bytes]:
    """Sign a digest: advance each chain by its message digit."""
    secrets, _public = wots_keygen(seed, params)
    digits = message_to_digits(digest, params)
    return [chain(secret, 0, digit, params) for secret, digit in zip(secrets, digits)]


def wots_verify(digest: bytes, signature: Sequence[bytes], public: bytes, params: SphincsParams) -> bool:
    """Complete each chain and compare against the compressed public key."""
    digits = message_to_digits(digest, params)
    completed = [
        chain(sig, digit, params.winternitz - 1 - digit, params)
        for sig, digit in zip(signature, digits)
    ]
    return params.hash_fn(b"".join(completed)) == public


def merkle_tree(leaves: Sequence[bytes], params: SphincsParams) -> List[List[bytes]]:
    """Build a full Merkle tree; ``levels[0]`` is the leaf level."""
    hash_fn = params.hash_fn
    levels = [list(leaves)]
    while len(levels[-1]) > 1:
        level = levels[-1]
        levels.append(
            [hash_fn(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
        )
    return levels


def merkle_auth_path(levels: Sequence[Sequence[bytes]], leaf_index: int) -> List[bytes]:
    """The authentication path for ``leaf_index``."""
    path = []
    index = leaf_index
    for level in levels[:-1]:
        sibling = index ^ 1
        path.append(level[sibling])
        index //= 2
    return path


def merkle_root_from_path(leaf: bytes, leaf_index: int, path: Sequence[bytes], params: SphincsParams) -> bytes:
    """Recompute the root from a leaf and its authentication path."""
    hash_fn = params.hash_fn
    node = leaf
    index = leaf_index
    for sibling in path:
        if index % 2 == 0:
            node = hash_fn(node + sibling)
        else:
            node = hash_fn(sibling + node)
        index //= 2
    return node


@dataclass
class SphincsSignature:
    wots_signature: List[bytes]
    leaf_index: int
    auth_path: List[bytes]


@dataclass
class SphincsKeyPair:
    seed: bytes
    root: bytes
    params: SphincsParams


def keygen(seed: bytes, params: SphincsParams = SPHINCS_SHA2) -> SphincsKeyPair:
    """Generate a key pair: one WOTS instance per Merkle leaf."""
    leaf_count = 1 << params.tree_height
    leaves = []
    for leaf_index in range(leaf_count):
        _secrets, public = wots_keygen(seed + bytes([leaf_index]), params)
        leaves.append(public)
    levels = merkle_tree(leaves, params)
    return SphincsKeyPair(seed=seed, root=levels[-1][0], params=params)


def sign(message: bytes, keypair: SphincsKeyPair, leaf_index: int = 0) -> SphincsSignature:
    """Sign ``message`` with the WOTS instance at ``leaf_index``."""
    params = keypair.params
    digest = params.hash_fn(message)
    wots_sig = wots_sign(digest, keypair.seed + bytes([leaf_index]), params)
    leaf_count = 1 << params.tree_height
    leaves = []
    for index in range(leaf_count):
        _secrets, public = wots_keygen(keypair.seed + bytes([index]), params)
        leaves.append(public)
    levels = merkle_tree(leaves, params)
    return SphincsSignature(
        wots_signature=wots_sig,
        leaf_index=leaf_index,
        auth_path=merkle_auth_path(levels, leaf_index),
    )


def verify(message: bytes, signature: SphincsSignature, root: bytes, params: SphincsParams) -> bool:
    """Verify a signature against the Merkle root."""
    digest = params.hash_fn(message)
    digits = message_to_digits(digest, params)
    completed = [
        chain(sig, digit, params.winternitz - 1 - digit, params)
        for sig, digit in zip(signature.wots_signature, digits)
    ]
    leaf = params.hash_fn(b"".join(completed))
    return merkle_root_from_path(leaf, signature.leaf_index, signature.auth_path, params) == root
