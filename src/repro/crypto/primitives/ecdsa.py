"""ECDSA-style signatures over a short Weierstrass curve.

BearSSL's ``ECDSA_i31`` benchmark exercises constant-time scalar
multiplication and modular inversion.  To keep the ISA kernel's field
arithmetic single-limb we use a small curve over GF(65521) whose group order
is prime; the signing and verification flow (per-bit double-and-add-always
ladder, Fermat inversion) is identical in structure to the full-size
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Field prime (fits comfortably in single-limb 64-bit kernel arithmetic).
FIELD_PRIME = 65521

#: Curve y^2 = x^3 + a*x + b over GF(FIELD_PRIME).
CURVE_A = 3
CURVE_B = 53

#: A generator point; the curve group has prime order, so any finite point generates it.
GENERATOR = (0, 8058)

#: Number of scalar bits processed by the ladder (constant trip count).
SCALAR_BITS = 17

Point = Optional[Tuple[int, int]]


def _inv(value: int) -> int:
    """Modular inverse by Fermat's little theorem (constant structure)."""
    return pow(value % FIELD_PRIME, FIELD_PRIME - 2, FIELD_PRIME)


def is_on_curve(point: Point) -> bool:
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + CURVE_A * x + CURVE_B)) % FIELD_PRIME == 0


def point_add(p: Point, q: Point) -> Point:
    """Add two points on the curve (affine coordinates)."""
    if p is None:
        return q
    if q is None:
        return p
    x1, y1 = p
    x2, y2 = q
    if x1 == x2 and (y1 + y2) % FIELD_PRIME == 0:
        return None
    if p == q:
        slope = (3 * x1 * x1 + CURVE_A) * _inv(2 * y1) % FIELD_PRIME
    else:
        slope = (y2 - y1) * _inv(x2 - x1) % FIELD_PRIME
    x3 = (slope * slope - x1 - x2) % FIELD_PRIME
    y3 = (slope * (x1 - x3) - y1) % FIELD_PRIME
    return (x3, y3)


def scalar_mult(k: int, point: Point, bits: int = SCALAR_BITS) -> Point:
    """Double-and-add-always scalar multiplication (constant control flow)."""
    result: Point = None
    addend: Point = point
    for t in range(bits - 1, -1, -1):
        result = point_add(result, result)
        candidate = point_add(result, addend)
        if (k >> t) & 1:
            result = candidate
    return result


@dataclass(frozen=True)
class Signature:
    r: int
    s: int


def _hash_to_int(message_digest: int) -> int:
    return message_digest % GENERATOR_ORDER


GENERATOR_ORDER = 65029  # the (prime) order of the curve group


def sign(private_key: int, message_digest: int, nonce: int) -> Signature:
    """Produce an ECDSA signature with an explicit (deterministic) nonce."""
    z = _hash_to_int(message_digest)
    k = (nonce % (GENERATOR_ORDER - 1)) + 1
    point = scalar_mult(k, GENERATOR)
    assert point is not None
    r = point[0] % GENERATOR_ORDER
    if r == 0:
        return sign(private_key, message_digest, nonce + 1)
    k_inv = pow(k, GENERATOR_ORDER - 2, GENERATOR_ORDER)
    s = (k_inv * (z + r * private_key)) % GENERATOR_ORDER
    if s == 0:
        return sign(private_key, message_digest, nonce + 1)
    return Signature(r=r, s=s)


def verify(public_key: Point, message_digest: int, signature: Signature) -> bool:
    """Verify an ECDSA signature."""
    if public_key is None or not is_on_curve(public_key):
        return False
    r, s = signature.r, signature.s
    if not (0 < r < GENERATOR_ORDER and 0 < s < GENERATOR_ORDER):
        return False
    z = _hash_to_int(message_digest)
    w = pow(s, GENERATOR_ORDER - 2, GENERATOR_ORDER)
    u1 = (z * w) % GENERATOR_ORDER
    u2 = (r * w) % GENERATOR_ORDER
    point = point_add(scalar_mult(u1, GENERATOR), scalar_mult(u2, public_key))
    if point is None:
        return False
    return point[0] % GENERATOR_ORDER == r


def derive_public_key(private_key: int) -> Point:
    """The public key corresponding to ``private_key``."""
    return scalar_mult(private_key, GENERATOR)
