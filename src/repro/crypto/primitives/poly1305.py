"""Poly1305 one-time authenticator (RFC 8439)."""

from __future__ import annotations

P1305 = (1 << 130) - 5


def clamp(r: int) -> int:
    """Clamp the ``r`` part of the key as mandated by the spec."""
    return r & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(message: bytes, key: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under ``key``.

    ``key`` is the 32-byte one-time key (``r || s``).
    """
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = clamp(int.from_bytes(key[:16], "little"))
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        block = message[offset : offset + 16]
        n = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % P1305
    tag = (accumulator + s) % (1 << 128)
    return tag.to_bytes(16, "little")


def poly1305_verify(message: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-structure tag comparison (value-equality for the reference)."""
    computed = poly1305_mac(message, key)
    diff = 0
    for a, b in zip(computed, tag):
        diff |= a ^ b
    return diff == 0 and len(tag) == 16
