"""Keccak-f[1600], SHA3-256, and SHAKE128 (FIPS 202)."""

from __future__ import annotations

from typing import List

MASK64 = (1 << 64) - 1

#: Rotation offsets, indexed [x][y].
RHO_OFFSETS = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]

#: Round constants for the iota step.
ROUND_CONSTANTS = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
    0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
    0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
    0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
    0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]


def _rotl64(value: int, amount: int) -> int:
    value &= MASK64
    amount %= 64
    if amount == 0:
        return value
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def keccak_f1600(lanes: List[List[int]]) -> List[List[int]]:
    """Apply the 24-round Keccak-f[1600] permutation to a 5x5 lane matrix."""
    a = [list(column) for column in lanes]
    for round_constant in ROUND_CONSTANTS:
        # theta
        c = [a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4] for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x][y] ^= d[x]
        # rho and pi
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = _rotl64(a[x][y], RHO_OFFSETS[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y]) & b[(x + 2) % 5][y] & MASK64)
        # iota
        a[0][0] ^= round_constant
    return a


def _lanes_from_bytes(state: bytes) -> List[List[int]]:
    lanes = [[0] * 5 for _ in range(5)]
    for x in range(5):
        for y in range(5):
            offset = 8 * (x + 5 * y)
            lanes[x][y] = int.from_bytes(state[offset : offset + 8], "little")
    return lanes


def _bytes_from_lanes(lanes: List[List[int]]) -> bytes:
    state = bytearray(200)
    for x in range(5):
        for y in range(5):
            offset = 8 * (x + 5 * y)
            state[offset : offset + 8] = lanes[x][y].to_bytes(8, "little")
    return bytes(state)


def _keccak_sponge(rate: int, capacity: int, message: bytes, suffix: int, output_length: int) -> bytes:
    """The Keccak sponge construction with byte-granular padding."""
    if rate + capacity != 1600:
        raise ValueError("rate + capacity must equal 1600 bits")
    rate_bytes = rate // 8
    state = bytearray(200)

    # Absorb.
    offset = 0
    block_size = 0
    remaining = bytearray(message)
    while len(remaining) >= rate_bytes:
        for i in range(rate_bytes):
            state[i] ^= remaining[i]
        lanes = keccak_f1600(_lanes_from_bytes(bytes(state)))
        state = bytearray(_bytes_from_lanes(lanes))
        remaining = remaining[rate_bytes:]

    # Padding.
    block = bytearray(remaining)
    block.append(suffix)
    while len(block) < rate_bytes:
        block.append(0)
    block[rate_bytes - 1] ^= 0x80
    for i in range(rate_bytes):
        state[i] ^= block[i]
    lanes = keccak_f1600(_lanes_from_bytes(bytes(state)))
    state = bytearray(_bytes_from_lanes(lanes))

    # Squeeze.
    output = bytearray()
    while len(output) < output_length:
        output.extend(state[:rate_bytes])
        if len(output) < output_length:
            lanes = keccak_f1600(_lanes_from_bytes(bytes(state)))
            state = bytearray(_bytes_from_lanes(lanes))
    return bytes(output[:output_length])


def sha3_256(message: bytes) -> bytes:
    """SHA3-256 digest."""
    return _keccak_sponge(1088, 512, message, 0x06, 32)


def shake128(message: bytes, output_length: int) -> bytes:
    """SHAKE128 extendable-output function."""
    return _keccak_sponge(1344, 256, message, 0x1F, output_length)


def shake256(message: bytes, output_length: int) -> bytes:
    """SHAKE256 extendable-output function."""
    return _keccak_sponge(1088, 512, message, 0x1F, output_length)
