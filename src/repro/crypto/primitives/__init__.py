"""Pure-Python reference implementations of the evaluated crypto algorithms.

These are correctness references (checked against published test vectors
where they exist) and self-contained substrates; they are *not* optimised or
hardened implementations.  The ISA kernels in :mod:`repro.crypto.programs`
are validated against these modules (full-strength algorithms) or against the
reduced-parameter models they also export.
"""

from repro.crypto.primitives import (  # noqa: F401
    aes,
    chacha20,
    curve25519,
    des,
    ecdsa,
    keccak,
    kyber,
    modmath,
    poly1305,
    sha256,
    sphincs,
    tls_prf,
)

__all__ = [
    "aes",
    "chacha20",
    "curve25519",
    "des",
    "ecdsa",
    "keccak",
    "kyber",
    "modmath",
    "poly1305",
    "sha256",
    "sphincs",
    "tls_prf",
]
