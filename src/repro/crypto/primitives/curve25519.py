"""X25519 Diffie-Hellman (RFC 7748).

Implements the constant-structure Montgomery ladder over GF(2^255 - 19).
The module also exports a *reduced-field* ladder (same control-flow shape,
Mersenne prime 2^31 - 1) that the ISA kernel is validated against.
"""

from __future__ import annotations

from typing import Tuple

P25519 = (1 << 255) - 19
A24 = 121665


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(k, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    value = int.from_bytes(u, "little")
    return value & ((1 << 255) - 1)


def _cswap(swap: int, a: int, b: int) -> Tuple[int, int]:
    """Constant-structure conditional swap."""
    mask = -swap & ((1 << 256) - 1)
    dummy = mask & (a ^ b)
    return a ^ dummy, b ^ dummy


def montgomery_ladder(k: int, u: int, prime: int = P25519, a24: int = A24, bits: int = 255) -> int:
    """The Montgomery ladder shared by the full and reduced variants."""
    x1 = u % prime
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in range(bits - 1, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        x2, x3 = _cswap(swap, x2, x3)
        z2, z3 = _cswap(swap, z2, z3)
        swap = k_t

        a = (x2 + z2) % prime
        aa = (a * a) % prime
        b = (x2 - z2) % prime
        bb = (b * b) % prime
        e = (aa - bb) % prime
        c = (x3 + z3) % prime
        d = (x3 - z3) % prime
        da = (d * a) % prime
        cb = (c * b) % prime
        x3 = pow(da + cb, 2, prime)
        z3 = (x1 * pow(da - cb, 2, prime)) % prime
        x2 = (aa * bb) % prime
        z2 = (e * (aa + a24 * e)) % prime

    x2, x3 = _cswap(swap, x2, x3)
    z2, z3 = _cswap(swap, z2, z3)
    return (x2 * pow(z2, prime - 2, prime)) % prime


def x25519(scalar: bytes, u: bytes) -> bytes:
    """RFC 7748 X25519 function."""
    k = _decode_scalar(scalar)
    u_int = _decode_u(u)
    result = montgomery_ladder(k, u_int)
    return result.to_bytes(32, "little")


def x25519_base(scalar: bytes) -> bytes:
    """Scalar multiplication of the standard base point (u = 9)."""
    return x25519(scalar, (9).to_bytes(32, "little"))


# --------------------------------------------------------------------------- #
# Reduced-field model used to validate the ISA kernel
# --------------------------------------------------------------------------- #
REDUCED_PRIME = (1 << 31) - 1
REDUCED_A24 = 121665 % REDUCED_PRIME
REDUCED_BITS = 64


def reduced_ladder(k: int, u: int, bits: int = REDUCED_BITS) -> int:
    """Montgomery ladder over GF(2^31 - 1) with the same control flow.

    The ISA kernel implements exactly this computation (single-limb field
    arithmetic, ``bits`` ladder iterations); its output is compared against
    this model in the test-suite.
    """
    return montgomery_ladder(k, u, prime=REDUCED_PRIME, a24=REDUCED_A24, bits=bits)
