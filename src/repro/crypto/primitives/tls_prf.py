"""HMAC-SHA256 and the TLS 1.2 pseudo-random function (RFC 5246).

Backs the BearSSL ``TLS PRF`` and ``MultiHash`` benchmark kernels.
"""

from __future__ import annotations

from repro.crypto.primitives.sha256 import sha256

BLOCK_SIZE = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC keyed hash using SHA-256."""
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key + b"\x00" * (BLOCK_SIZE - len(key))
    o_key_pad = bytes(b ^ 0x5C for b in key)
    i_key_pad = bytes(b ^ 0x36 for b in key)
    return sha256(o_key_pad + sha256(i_key_pad + message))


def p_hash(secret: bytes, seed: bytes, length: int) -> bytes:
    """The TLS 1.2 P_hash expansion function."""
    out = bytearray()
    a = seed
    while len(out) < length:
        a = hmac_sha256(secret, a)
        out.extend(hmac_sha256(secret, a + seed))
    return bytes(out[:length])


def tls12_prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """The TLS 1.2 PRF: P_SHA256(secret, label || seed)."""
    return p_hash(secret, label + seed, length)


def multihash(message: bytes, iterations: int = 4) -> bytes:
    """Iterated hashing over several chunk sizes (the MultiHash workload)."""
    digest = sha256(message)
    for i in range(iterations):
        digest = sha256(digest + message[: 16 * (i + 1)])
    return digest
