"""Modular arithmetic substrates: constant-structure modular exponentiation,
big-number multiplication, and a toy RSA built on top of them.

These back three BearSSL benchmark kernels: ``ModPow_i31``, ``RSA_i62``, and
``mul`` (big-number multiplication).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def modpow_ct(base: int, exponent: int, modulus: int, bits: int) -> int:
    """Square-and-multiply-always modular exponentiation.

    Processes exactly ``bits`` exponent bits from most to least significant,
    performing both the square and the multiply every iteration and selecting
    the result — the constant-control-flow structure used by constant-time
    big-number libraries (and by the ISA kernel).
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1")
    result = 1 % modulus
    base %= modulus
    for t in range(bits - 1, -1, -1):
        squared = (result * result) % modulus
        multiplied = (squared * base) % modulus
        bit = (exponent >> t) & 1
        result = multiplied if bit else squared
    return result


def limbs_from_int(value: int, limb_bits: int, count: int) -> List[int]:
    """Split an integer into ``count`` little-endian limbs of ``limb_bits``."""
    mask = (1 << limb_bits) - 1
    return [(value >> (limb_bits * i)) & mask for i in range(count)]


def int_from_limbs(limbs: Sequence[int], limb_bits: int) -> int:
    """Recombine little-endian limbs into an integer."""
    value = 0
    for i, limb in enumerate(limbs):
        value |= limb << (limb_bits * i)
    return value


def bignum_mul(a_limbs: Sequence[int], b_limbs: Sequence[int], limb_bits: int) -> List[int]:
    """Schoolbook multiplication of little-endian limb vectors.

    This mirrors BearSSL's ``mul`` benchmark: a doubly nested loop with a
    carry chain, whose control flow depends only on the operand lengths.
    """
    mask = (1 << limb_bits) - 1
    out = [0] * (len(a_limbs) + len(b_limbs))
    for i, a in enumerate(a_limbs):
        carry = 0
        for j, b in enumerate(b_limbs):
            acc = out[i + j] + a * b + carry
            out[i + j] = acc & mask
            carry = acc >> limb_bits
        out[i + len(b_limbs)] += carry
    return out


def rsa_keygen_toy(p: int = 61, q: int = 53, e: int = 17) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """A toy RSA key pair from tiny primes (workload substrate, not security)."""
    n = p * q
    phi = (p - 1) * (q - 1)
    d = pow(e, -1, phi)
    return (n, e), (n, d)


def rsa_encrypt(message: int, public_key: Tuple[int, int], bits: int = 16) -> int:
    """RSA encryption via the constant-structure exponentiation."""
    n, e = public_key
    return modpow_ct(message, e, n, bits)


def rsa_decrypt(ciphertext: int, private_key: Tuple[int, int], bits: int = 16) -> int:
    """RSA decryption via the constant-structure exponentiation."""
    n, d = private_key
    return modpow_ct(ciphertext, d, n, bits)
