"""A reduced-parameter Kyber-style lattice KEM (IND-CPA core).

The scheme follows the structure of CRYSTALS-Kyber's reference
implementation: a public matrix ``A`` expanded from a seed by *rejection
sampling* over SHAKE128 output, secrets/noise from a centred binomial
distribution (CBD), and encryption/decryption via module-LWE arithmetic in
R_q = Z_q[x]/(x^n + 1).  Polynomial products use the schoolbook negacyclic
convolution (the structure of the reference C implementation's loops, without
the NTT optimisation).

Parameters are reduced (``n`` configurable, default 64 instead of 256) so the
matching ISA kernels stay within simulable instruction counts; the module
exposes the same parameter sets the kernels use, and the kernels are verified
against this model.

Note: this is a *workload substrate*, not a secure KEM — reduced parameters
offer no cryptographic security margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.primitives.keccak import shake128, shake256

Q = 3329


@dataclass(frozen=True)
class KyberParams:
    """Parameter set for the reduced Kyber-style scheme."""

    n: int = 64
    k: int = 2
    eta: int = 2
    name: str = "kyber512-reduced"

    @property
    def poly_bytes(self) -> int:
        return 2 * self.n


#: Reduced analogues of the two parameter sets the paper benchmarks.
KYBER512 = KyberParams(n=64, k=2, eta=2, name="kyber512-reduced")
KYBER768 = KyberParams(n=64, k=3, eta=2, name="kyber768-reduced")

Poly = List[int]
PolyVec = List[Poly]


def poly_zero(params: KyberParams) -> Poly:
    return [0] * params.n


def poly_add(a: Poly, b: Poly) -> Poly:
    return [(x + y) % Q for x, y in zip(a, b)]


def poly_sub(a: Poly, b: Poly) -> Poly:
    return [(x - y) % Q for x, y in zip(a, b)]


def poly_mul(a: Poly, b: Poly, params: KyberParams) -> Poly:
    """Negacyclic schoolbook product in Z_q[x]/(x^n + 1)."""
    n = params.n
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            index = i + j
            product = ai * bj
            if index >= n:
                out[index - n] = (out[index - n] - product) % Q
            else:
                out[index] = (out[index] + product) % Q
    return out


def rejection_sample(stream: bytes, count: int) -> Tuple[Poly, int]:
    """Sample ``count`` coefficients uniform mod q by rejection.

    Consumes 12-bit candidates from ``stream`` (pairs of candidates per three
    bytes, as in the Kyber reference ``rej_uniform``).  Returns the
    coefficients and the number of bytes consumed; raises if the stream is
    too short.  The data-dependent accept/reject branch is the paper's
    example of an input-dependent branch (its trace varies between runs).
    """
    coefficients: List[int] = []
    offset = 0
    while len(coefficients) < count:
        if offset + 3 > len(stream):
            raise ValueError("rejection sampling exhausted the XOF stream")
        b0, b1, b2 = stream[offset], stream[offset + 1], stream[offset + 2]
        offset += 3
        candidate_a = b0 | ((b1 & 0x0F) << 8)
        candidate_b = (b1 >> 4) | (b2 << 4)
        if candidate_a < Q:
            coefficients.append(candidate_a)
        if len(coefficients) < count and candidate_b < Q:
            coefficients.append(candidate_b)
    return coefficients, offset


def cbd(buf: bytes, params: KyberParams) -> Poly:
    """Centred binomial distribution with parameter eta=2 (as in Kyber)."""
    if params.eta != 2:
        raise NotImplementedError("only eta=2 is supported")
    coefficients: List[int] = []
    bit_index = 0
    for _ in range(params.n):
        total_a = 0
        total_b = 0
        for _ in range(params.eta):
            byte = buf[bit_index // 8]
            total_a += (byte >> (bit_index % 8)) & 1
            bit_index += 1
        for _ in range(params.eta):
            byte = buf[bit_index // 8]
            total_b += (byte >> (bit_index % 8)) & 1
            bit_index += 1
        coefficients.append((total_a - total_b) % Q)
    return coefficients


def expand_matrix(seed: bytes, params: KyberParams) -> List[List[Poly]]:
    """Expand the public matrix A from ``seed`` by rejection sampling."""
    matrix: List[List[Poly]] = []
    for i in range(params.k):
        row: List[Poly] = []
        for j in range(params.k):
            stream = shake128(seed + bytes([i, j]), 3 * params.n + 96)
            poly, _consumed = rejection_sample(stream, params.n)
            row.append(poly)
        matrix.append(row)
    return matrix


def sample_noise_vector(seed: bytes, nonce: int, params: KyberParams) -> PolyVec:
    """Sample a vector of k CBD polynomials."""
    vector: PolyVec = []
    for i in range(params.k):
        buf = shake256(seed + bytes([nonce + i]), params.n)
        vector.append(cbd(buf, params))
    return vector


def matrix_vector_mul(matrix: Sequence[Sequence[Poly]], vector: PolyVec, params: KyberParams) -> PolyVec:
    out: PolyVec = []
    for row in matrix:
        acc = poly_zero(params)
        for a, v in zip(row, vector):
            acc = poly_add(acc, poly_mul(a, v, params))
        out.append(acc)
    return out


def inner_product(a: PolyVec, b: PolyVec, params: KyberParams) -> Poly:
    acc = poly_zero(params)
    for x, y in zip(a, b):
        acc = poly_add(acc, poly_mul(x, y, params))
    return acc


def compress_message(poly: Poly) -> List[int]:
    """Decode a polynomial back to message bits (round to nearest multiple of q/2)."""
    bits = []
    for coefficient in poly:
        distance = min(coefficient, Q - coefficient)
        bits.append(1 if distance > Q // 4 else 0)
    return bits


def decompress_message(bits: Sequence[int], params: KyberParams) -> Poly:
    """Encode message bits as 0 / q/2 coefficients."""
    if len(bits) != params.n:
        raise ValueError("message length must equal n")
    return [(Q // 2) * bit for bit in bits]


@dataclass
class KeyPair:
    public_seed: bytes
    t: PolyVec
    s: PolyVec
    params: KyberParams


def keygen(seed: bytes, params: KyberParams = KYBER512) -> KeyPair:
    """Generate an (IND-CPA) key pair from a 32-byte seed."""
    public_seed = shake128(seed + b"rho", 32)
    noise_seed = shake256(seed + b"sigma", 32)
    matrix = expand_matrix(public_seed, params)
    s = sample_noise_vector(noise_seed, 0, params)
    e = sample_noise_vector(noise_seed, params.k, params)
    t = [poly_add(row, err) for row, err in zip(matrix_vector_mul(matrix, s, params), e)]
    return KeyPair(public_seed=public_seed, t=t, s=s, params=params)


def encrypt(keypair: KeyPair, message_bits: Sequence[int], coins: bytes) -> Tuple[PolyVec, Poly]:
    """Encrypt n message bits under the public key."""
    params = keypair.params
    matrix = expand_matrix(keypair.public_seed, params)
    r = sample_noise_vector(coins, 0, params)
    e1 = sample_noise_vector(coins, params.k, params)
    e2 = cbd(shake256(coins + bytes([2 * params.k]), params.n), params)
    # u = A^T r + e1
    transposed = [[matrix[j][i] for j in range(params.k)] for i in range(params.k)]
    u = [poly_add(row, err) for row, err in zip(matrix_vector_mul(transposed, r, params), e1)]
    v = poly_add(
        poly_add(inner_product(keypair.t, r, params), e2),
        decompress_message(message_bits, params),
    )
    return u, v


def decrypt(keypair: KeyPair, ciphertext: Tuple[PolyVec, Poly]) -> List[int]:
    """Decrypt a ciphertext back to message bits."""
    u, v = ciphertext
    params = keypair.params
    return compress_message(poly_sub(v, inner_product(keypair.s, u, params)))
