"""ChaCha20 stream cipher (RFC 8439).

The paper uses ChaCha20 as its running example of a constant-time kernel
whose control flow is fully determined by public parameters: the 20-round
double-round loop, the per-block state copy, and the stream loop over the
plaintext blocks.
"""

from __future__ import annotations

import struct
from typing import List

MASK32 = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    """The ChaCha quarter round, in place on four state indices."""
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def initial_state(key: bytes, counter: int, nonce: bytes) -> List[int]:
    """Build the 16-word initial state from key, block counter, and nonce."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    key_words = struct.unpack("<8I", key)
    nonce_words = struct.unpack("<3I", nonce)
    return list(constants) + list(key_words) + [counter & MASK32] + list(nonce_words)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Generate one 64-byte keystream block."""
    state = initial_state(key, counter, nonce)
    working = list(state)
    for _ in range(10):  # 10 double rounds = 20 rounds
        quarter_round(working, 0, 4, 8, 12)
        quarter_round(working, 1, 5, 9, 13)
        quarter_round(working, 2, 6, 10, 14)
        quarter_round(working, 3, 7, 11, 15)
        quarter_round(working, 0, 5, 10, 15)
        quarter_round(working, 1, 6, 11, 12)
        quarter_round(working, 2, 7, 8, 13)
        quarter_round(working, 3, 4, 9, 14)
    output = [(working[i] + state[i]) & MASK32 for i in range(16)]
    return struct.pack("<16I", *output)


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt (or decrypt) ``plaintext`` with the ChaCha20 stream."""
    out = bytearray()
    for block_index in range(0, len(plaintext), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = plaintext[block_index : block_index + 64]
        out.extend(p ^ k for p, k in zip(chunk, keystream))
    return bytes(out)
