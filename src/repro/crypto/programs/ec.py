"""Elliptic-curve kernels: Montgomery ladder (curve25519-style) and ECDSA.

* ``EC_c25519_i31`` / ``curve25519`` — the X25519 Montgomery ladder with its
  constant-structure conditional swaps, over the reduced field GF(2^31 - 1)
  (single-limb products fit the 64-bit ISA).  The BearSSL and OpenSSL
  variants differ in the number of ladder iterations.  Ground truth:
  :func:`repro.crypto.primitives.curve25519.reduced_ladder`.
* ``ECDSA_i31`` — double-and-add-always scalar multiplication on the toy
  prime-order curve of :mod:`repro.crypto.primitives.ecdsa`, producing the
  signature ``r`` component.  Field inversions use Fermat exponentiation with
  a fixed square-and-multiply-always schedule.
"""

from __future__ import annotations

from typing import Dict

from repro.crypto.primitives import curve25519, ecdsa
from repro.crypto.programs.common import (
    KernelProgram,
    emit_mersenne_addmod,
    emit_mersenne_mulmod,
    emit_mersenne_submod,
)
from repro.isa.builder import ProgramBuilder

PRIME = curve25519.REDUCED_PRIME
PRIME_BITS = 31
A24 = curve25519.REDUCED_A24


def build_montgomery_ladder(
    name: str = "EC_c25519_i31",
    suite: str = "bearssl",
    bits: int = 64,
) -> KernelProgram:
    """X25519-style Montgomery ladder over GF(2^31 - 1) with ``bits`` steps."""
    b = ProgramBuilder(name)
    scalar_a = 0xA6C7F0123456789B & ((1 << bits) - 1)
    scalar_b = 0x1D2E3F40F1E2D3C4 & ((1 << bits) - 1)
    u_coord = 9

    scalar_addr = b.alloc_secret("scalar", [scalar_a])
    u_addr = b.alloc("u_coord", [u_coord])
    out_addr = b.alloc("result", 1)

    with b.crypto():
        k, x1 = b.regs("k", "x1")
        x2, z2, x3, z3 = b.regs("x2", "z2", "x3", "z3")
        swap, kt, bit_t = b.regs("swap", "kt", "bit_t")
        a, aa, bb, e, c, d, da, cb = b.regs("a", "aa", "bb", "e", "c", "d", "da", "cb")
        t1, t2, mask, dummy = b.regs("t1", "t2", "mask", "dummy")
        addr = b.reg("addr")
        a24 = b.reg("a24")

        b.movi(addr, scalar_addr)
        b.load(k, addr)
        b.movi(addr, u_addr)
        b.load(x1, addr)
        b.movi(x2, 1)
        b.movi(z2, 0)
        b.mov(x3, x1)
        b.movi(z3, 1)
        b.movi(swap, 0)
        b.movi(a24, A24)

        def cswap(r1: str, r2: str) -> None:
            """Constant-time conditional swap controlled by ``swap``."""
            b.movi(mask, 0)
            b.sub(mask, mask, swap)  # 0 or all-ones
            b.xor(dummy, r1, r2)
            b.and_(dummy, dummy, mask)
            b.xor(r1, r1, dummy)
            b.xor(r2, r2, dummy)

        def fmul(dst: str, lhs: str, rhs: str, prefix: str) -> None:
            emit_mersenne_mulmod(b, dst, lhs, rhs, PRIME, PRIME_BITS, tmp_prefix=prefix)

        bit_i = b.reg("bit_i")
        with b.for_range(bit_i, 0, bits):
            # t = bits - 1 - i (process from the most significant bit down).
            b.movi(bit_t, bits - 1)
            b.sub(bit_t, bit_t, bit_i)
            b.shr(kt, k, bit_t)
            b.and_(kt, kt, 1)
            b.xor(swap, swap, kt)
            cswap(x2, x3)
            cswap(z2, z3)
            b.mov(swap, kt)

            emit_mersenne_addmod(b, a, x2, z2, PRIME, "la")
            fmul(aa, a, a, "laa")
            emit_mersenne_submod(b, bb, x2, z2, PRIME, "lb")  # b = x2 - z2
            fmul(bb, bb, bb, "lbb")
            emit_mersenne_submod(b, e, aa, bb, PRIME, "le")
            emit_mersenne_addmod(b, c, x3, z3, PRIME, "lc")
            emit_mersenne_submod(b, d, x3, z3, PRIME, "ld")
            fmul(da, d, a, "lda")
            # cb uses the *unsquared* (x2 - z2), which bb no longer holds.
            emit_mersenne_submod(b, t1, x2, z2, PRIME, "lt1")
            fmul(cb, c, t1, "lcb")
            # x3 = (da + cb)^2
            emit_mersenne_addmod(b, t2, da, cb, PRIME, "lt2")
            fmul(x3, t2, t2, "lx3")
            # z3 = x1 * (da - cb)^2
            emit_mersenne_submod(b, t2, da, cb, PRIME, "lt3")
            fmul(t2, t2, t2, "lz3a")
            fmul(z3, x1, t2, "lz3b")
            # x2 = aa * bb ; z2 = e * (aa + a24 * e)
            fmul(x2, aa, bb, "lx2")
            fmul(t2, a24, e, "lz2a")
            emit_mersenne_addmod(b, t2, aa, t2, PRIME, "lz2b")
            fmul(z2, e, t2, "lz2c")

        cswap(x2, x3)
        cswap(z2, z3)
        # result = x2 * z2^(p-2) via square-and-multiply-always over the
        # fixed (public) exponent p-2.
        inv, base, sq = b.regs("inv", "base", "sq")
        b.movi(inv, 1)
        b.mov(base, z2)
        exponent = PRIME - 2
        for t in range(PRIME_BITS - 1, -1, -1):
            fmul(inv, inv, inv, f"fi_sq")
            fmul(sq, inv, base, f"fi_mul")
            if (exponent >> t) & 1:
                b.mov(inv, sq)
        fmul(x2, x2, inv, "fin")
        b.declassify(x2)
        b.movi(addr, out_addr)
        b.store(x2, addr)
    b.halt()
    program = b.build()

    expected = curve25519.reduced_ladder(scalar_a, u_coord, bits=bits)

    def verify(result) -> bool:
        return result.state.read_mem(out_addr) == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[{scalar_addr: scalar_a}, {scalar_addr: scalar_b}],
        verify=verify,
        description=f"Montgomery ladder ({bits} steps) over GF(2^31 - 1)",
    )


def build_openssl_curve25519(bits: int = 96) -> KernelProgram:
    """The OpenSSL-suite curve25519 workload (longer ladder)."""
    return build_montgomery_ladder(name="curve25519", suite="openssl", bits=bits)


# --------------------------------------------------------------------------- #
# ECDSA
# --------------------------------------------------------------------------- #
def build_ecdsa(name: str = "ECDSA_i31") -> KernelProgram:
    """ECDSA signing hot path: constant-flow scalar multiplication k·G.

    The kernel computes the double-and-add-always ladder on the toy curve and
    reduces the resulting x-coordinate modulo the group order (the signature
    ``r``).  The per-bit loop performs a point doubling and a point addition,
    each requiring a Fermat-inversion subroutine whose square-and-multiply
    loop is itself constant-trip-count — the nested structure that dominates
    BearSSL's ``ECDSA_i31``.
    """
    b = ProgramBuilder(name)
    p = ecdsa.FIELD_PRIME
    order = ecdsa.GENERATOR_ORDER
    gx, gy = ecdsa.GENERATOR
    bits = ecdsa.SCALAR_BITS - 1  # top bit handled by initialising result = G

    nonce_a = 0x1A2B7 | (1 << (ecdsa.SCALAR_BITS - 1))
    nonce_b = 0x0F4D3 | (1 << (ecdsa.SCALAR_BITS - 1))
    nonce_a %= order
    nonce_b %= order

    k_addr = b.alloc_secret("nonce", [nonce_a])
    out_addr = b.alloc("r_component", 1)

    with b.crypto():
        addr = b.reg("addr")
        k = b.reg("k")
        rx, ry = b.regs("rx", "ry")
        qx, qy = b.regs("qx", "qy")
        num, den, slope, inv, sq = b.regs("num", "den", "slope", "inv", "sq")
        t1, t2, bit, bit_t = b.regs("t1", "t2", "bit", "bit_t")

        b.movi(addr, k_addr)
        b.load(k, addr)
        b.movi(rx, gx)
        b.movi(ry, gy)

        def modmul(dst: str, x: str, y: str, prefix: str) -> None:
            # Generic modular multiplication via MOD (p is not Mersenne here).
            b.mul(dst, x, y)
            b.mod(dst, dst, p)

        with b.function("fermat_inverse") as fermat_inverse:
            # register fi_in -> fi_out : in^(p-2) mod p, fixed schedule.
            b.movi(inv, 1)
            exponent = p - 2
            for t in range(p.bit_length() - 1, -1, -1):
                modmul(inv, inv, inv, "fe_sq")
                modmul(sq, inv, "fi_in", "fe_mul")
                if (exponent >> t) & 1:
                    b.mov(inv, sq)
            b.mov("fi_out", inv)

        with b.function("point_double") as point_double:
            # (rx, ry) <- 2 * (rx, ry)
            modmul(num, rx, rx, "pd_xx")
            b.mul(num, num, 3)
            b.mod(num, num, p)
            b.add(num, num, ecdsa.CURVE_A)
            b.mod(num, num, p)
            b.add(den, ry, ry)
            b.mod(den, den, p)
            b.mov("fi_in", den)
            b.call(fermat_inverse)
            modmul(slope, num, "fi_out", "pd_sl")
            modmul(t1, slope, slope, "pd_s2")
            b.add(t2, rx, rx)
            b.mod(t2, t2, p)
            b.add(t1, t1, p)
            b.sub(t1, t1, t2)
            b.mod(t1, t1, p)  # x3
            b.add(t2, rx, p)
            b.sub(t2, t2, t1)
            b.mod(t2, t2, p)
            modmul(t2, slope, t2, "pd_y3")
            b.add(t2, t2, p)
            b.sub(t2, t2, ry)
            b.mod(t2, t2, p)
            b.mov(rx, t1)
            b.mov(ry, t2)

        with b.function("point_add_g") as point_add_g:
            # (qx, qy) <- (rx, ry) + G
            b.movi(t1, gx)
            b.add(t1, t1, p)
            b.sub(t1, t1, rx)
            b.mod(den, t1, p)
            b.movi(t1, gy)
            b.add(t1, t1, p)
            b.sub(t1, t1, ry)
            b.mod(num, t1, p)
            b.mov("fi_in", den)
            b.call(fermat_inverse)
            modmul(slope, num, "fi_out", "pa_sl")
            modmul(t1, slope, slope, "pa_s2")
            b.add(t2, rx, gx)
            b.mod(t2, t2, p)
            b.add(t1, t1, p)
            b.sub(t1, t1, t2)
            b.mod(qx, t1, p)
            b.add(t2, rx, p)
            b.sub(t2, t2, qx)
            b.mod(t2, t2, p)
            modmul(t2, slope, t2, "pa_y3")
            b.add(t2, t2, p)
            b.sub(t2, t2, ry)
            b.mod(qy, t2, p)

        bit_i = b.reg("bit_i")
        with b.for_range(bit_i, 0, bits):
            b.call(point_double)
            b.call(point_add_g)
            b.movi(bit_t, bits - 1)
            b.sub(bit_t, bit_t, bit_i)
            b.shr(bit, k, bit_t)
            b.and_(bit, bit, 1)
            b.csel(rx, bit, qx, rx)
            b.csel(ry, bit, qy, ry)

        b.mod(rx, rx, order)
        b.declassify(rx)
        b.movi(addr, out_addr)
        b.store(rx, addr)
    b.halt()
    program = b.build()

    def expected_r(nonce: int) -> int:
        # The kernel's ladder ignores the (set) top bit marker and processes
        # the remaining bits with result initialised to G, which computes
        # k' = 1 followed by the standard double-and-add recurrence.
        point = ecdsa.scalar_mult(_ladder_equivalent_scalar(nonce, bits), ecdsa.GENERATOR, bits=ecdsa.SCALAR_BITS)
        assert point is not None
        return point[0] % order

    def verify(result) -> bool:
        return result.state.read_mem(out_addr) == expected_r(nonce_a)

    return KernelProgram(
        name=name,
        suite="bearssl",
        program=program,
        inputs=[{k_addr: nonce_a}, {k_addr: nonce_b}],
        verify=verify,
        description="ECDSA signing hot path: double-and-add-always scalar multiplication",
    )


def _ladder_equivalent_scalar(nonce: int, bits: int) -> int:
    """The scalar the kernel's ladder effectively multiplies by.

    The kernel starts from ``result = G`` and then processes the low ``bits``
    bits of the nonce most-significant first, so the computed multiple is
    ``2^bits + (nonce mod 2^bits)``.
    """
    return (1 << bits) + (nonce & ((1 << bits) - 1))
