"""Constant-time AES-like block cipher kernels (``AES_CTR`` and ``CBC_ct``).

BearSSL's constant-time AES avoids secret-indexed S-box lookups by computing
SubBytes algebraically (bitsliced).  Full bitslicing is impractical on the
toy ISA, so the kernel uses an *AES-structured* cipher: a 4x4 byte state, ten
rounds of SubBytes / ShiftRows / MixColumns / AddRoundKey, where SubBytes is
a branch-free affine byte transformation (rotate-and-XOR network plus a
constant) instead of the Rijndael S-box.  Round keys are derived by the same
rotate/substitute/rcon schedule shape as AES-128.  The per-byte, per-column,
and per-round loop structure — which is what the branch analysis and the BTU
see — matches a real table-free AES; the arithmetic strength does not, and
the ground truth is the matching reduced model in this module.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.crypto.programs.common import KernelProgram
from repro.isa.builder import ProgramBuilder

ROUNDS = 10
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


# --------------------------------------------------------------------------- #
# Reduced model (ground truth for the kernel)
# --------------------------------------------------------------------------- #
def _sub_byte_model(value: int) -> int:
    rot1 = ((value << 1) | (value >> 7)) & 0xFF
    rot2 = ((value << 2) | (value >> 6)) & 0xFF
    rot4 = ((value << 4) | (value >> 4)) & 0xFF
    return rot1 ^ rot2 ^ rot4 ^ 0x63


def _shift_rows_model(state: List[int]) -> List[int]:
    out = list(state)
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            out[4 * c + r] = row[c]
    return out


def _xtime_model(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x1B
    return value & 0xFF


def _mix_columns_model(state: List[int]) -> List[int]:
    out = [0] * 16
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        for r in range(4):
            out[4 * c + r] = (
                _xtime_model(col[r])
                ^ (_xtime_model(col[(r + 1) % 4]) ^ col[(r + 1) % 4])
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4]
            )
    return out


def expand_key_model(key: Sequence[int]) -> List[List[int]]:
    """Round-key schedule of the reduced cipher (11 keys of 16 bytes)."""
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_sub_byte_model(t) for t in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def encrypt_block_model(key: Sequence[int], block: Sequence[int]) -> List[int]:
    """Encrypt one 16-byte block with the reduced AES-structured cipher."""
    round_keys = expand_key_model(key)
    state = [p ^ k for p, k in zip(block, round_keys[0])]
    for round_index in range(1, ROUNDS):
        state = [_sub_byte_model(s) for s in state]
        state = _shift_rows_model(state)
        state = _mix_columns_model(state)
        state = [s ^ k for s, k in zip(state, round_keys[round_index])]
    state = [_sub_byte_model(s) for s in state]
    state = _shift_rows_model(state)
    state = [s ^ k for s, k in zip(state, round_keys[ROUNDS])]
    return state


def ctr_model(key: Sequence[int], counters: Sequence[Sequence[int]], plaintext: Sequence[int]) -> List[int]:
    out: List[int] = []
    for block_index, counter_block in enumerate(counters):
        keystream = encrypt_block_model(key, counter_block)
        chunk = plaintext[16 * block_index : 16 * block_index + 16]
        out.extend(p ^ k for p, k in zip(chunk, keystream))
    return out


def cbc_model(key: Sequence[int], iv: Sequence[int], plaintext: Sequence[int]) -> List[int]:
    out: List[int] = []
    previous = list(iv)
    for block_index in range(len(plaintext) // 16):
        chunk = plaintext[16 * block_index : 16 * block_index + 16]
        block = [p ^ c for p, c in zip(chunk, previous)]
        previous = encrypt_block_model(key, block)
        out.extend(previous)
    return out


# --------------------------------------------------------------------------- #
# Kernel emission
# --------------------------------------------------------------------------- #
def _emit_cipher_functions(b: ProgramBuilder, rk_addr: int, state_addr: int, rcon_addr: int, key_addr: int):
    """Emit sub_bytes / shift_rows / mix_columns / add_round_key / expand_key
    / encrypt_block functions operating on the 16-byte state at ``state_addr``."""
    addr, val, tmp, tmp2 = b.regs("aes_addr", "aes_val", "aes_tmp", "aes_tmp2")
    i = b.reg("aes_i")

    with b.function("sub_byte") as sub_byte:
        # register sb_in -> sb_out ; affine rotate/XOR network.
        b.and_("sb_in", "sb_in", 0xFF)
        b.shl("sb_out", "sb_in", 1)
        b.shr(tmp, "sb_in", 7)
        b.or_("sb_out", "sb_out", tmp)
        b.and_("sb_out", "sb_out", 0xFF)
        b.shl(tmp, "sb_in", 2)
        b.shr(tmp2, "sb_in", 6)
        b.or_(tmp, tmp, tmp2)
        b.and_(tmp, tmp, 0xFF)
        b.xor("sb_out", "sb_out", tmp)
        b.shl(tmp, "sb_in", 4)
        b.shr(tmp2, "sb_in", 4)
        b.or_(tmp, tmp, tmp2)
        b.and_(tmp, tmp, 0xFF)
        b.xor("sb_out", "sb_out", tmp)
        b.xor("sb_out", "sb_out", 0x63)

    with b.function("xtime") as xtime:
        # register xt_in -> xt_out ; branch-free GF(2^8) doubling.
        cond = b.reg("xt_cond")
        b.shl("xt_out", "xt_in", 1)
        b.and_(cond, "xt_out", 0x100)
        b.shr(cond, cond, 8)
        b.mul(cond, cond, 0x1B)
        b.xor("xt_out", "xt_out", cond)
        b.and_("xt_out", "xt_out", 0xFF)

    with b.function("sub_bytes_state") as sub_bytes_state:
        with b.for_range(i, 0, 16):
            b.movi(addr, state_addr)
            b.add(addr, addr, i)
            b.load("sb_in", addr)
            b.call(sub_byte)
            b.store("sb_out", addr)

    with b.function("shift_rows") as shift_rows:
        # Gather each row, rotate it, and scatter it back (static addressing).
        row_regs = b.regs("r0", "r1", "r2", "r3")
        for r in range(1, 4):
            for c in range(4):
                b.movi(addr, state_addr + 4 * c + r)
                b.load(row_regs[c], addr)
            for c in range(4):
                b.movi(addr, state_addr + 4 * c + r)
                b.store(row_regs[(c + r) % 4], addr)

    with b.function("mix_columns") as mix_columns:
        col = b.regs("c0", "c1", "c2", "c3")
        doubled = b.regs("d0", "d1", "d2", "d3")
        c_i = b.reg("mc_c")
        base = b.reg("mc_base")
        with b.for_range(c_i, 0, 4):
            b.movi(base, 4)
            b.mul(base, base, c_i)
            b.add(base, base, state_addr)
            for r in range(4):
                b.mov(addr, base)
                b.add(addr, addr, r)
                b.load(col[r], addr)
                b.mov("xt_in", col[r])
                b.call(xtime)
                b.mov(doubled[r], "xt_out")
            for r in range(4):
                b.mov(val, doubled[r])
                b.xor(val, val, doubled[(r + 1) % 4])
                b.xor(val, val, col[(r + 1) % 4])
                b.xor(val, val, col[(r + 2) % 4])
                b.xor(val, val, col[(r + 3) % 4])
                b.mov(addr, base)
                b.add(addr, addr, r)
                b.store(val, addr)

    with b.function("add_round_key") as add_round_key:
        # register ark_round selects the round key.
        offset = b.reg("ark_off")
        with b.for_range(i, 0, 16):
            b.movi(offset, 16)
            b.mul(offset, offset, "ark_round")
            b.add(offset, offset, i)
            b.add(offset, offset, rk_addr)
            b.load(tmp, offset)
            b.movi(addr, state_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.xor(val, val, tmp)
            b.store(val, addr)

    with b.function("expand_key") as expand_key:
        # Copy the 16 key bytes, then derive words 4..43.
        with b.for_range(i, 0, 16):
            b.movi(addr, key_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, rk_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
        w_i = b.reg("ek_w")
        byte_i = b.reg("ek_b")
        prev = b.reg("ek_prev")
        old = b.reg("ek_old")
        is_rot = b.reg("ek_isrot")
        rot_idx = b.reg("ek_rotidx")
        rcon_val = b.reg("ek_rcon")
        with b.for_range(w_i, 4, 44):
            b.mod(is_rot, w_i, 4)
            b.cmpeq(is_rot, is_rot, 0)
            with b.for_range(byte_i, 0, 4):
                # prev byte: rotated when w_i % 4 == 0 (constant-time select).
                b.add(rot_idx, byte_i, 1)
                b.mod(rot_idx, rot_idx, 4)
                b.csel(tmp2, is_rot, rot_idx, byte_i)
                b.movi(addr, rk_addr - 4)
                b.movi(val, 4)
                b.mul(val, val, w_i)
                b.add(addr, addr, val)
                b.add(addr, addr, tmp2)
                b.load(prev, addr)
                # SubByte applied only for the rotated case.
                b.mov("sb_in", prev)
                b.call(sub_byte)
                b.csel(prev, is_rot, "sb_out", prev)
                # rcon on byte 0 of rotated words.
                b.movi(addr, rcon_addr - 1)
                b.movi(val, 0)
                b.div(val, w_i, 4)
                b.add(addr, addr, val)
                b.load(rcon_val, addr)
                b.cmpeq(tmp2, byte_i, 0)
                b.and_(tmp2, tmp2, is_rot)
                b.mul(rcon_val, rcon_val, tmp2)
                b.xor(prev, prev, rcon_val)
                # out = w[i-4][byte] ^ prev
                b.movi(addr, rk_addr - 16)
                b.movi(val, 4)
                b.mul(val, val, w_i)
                b.add(addr, addr, val)
                b.add(addr, addr, byte_i)
                b.load(old, addr)
                b.xor(old, old, prev)
                b.movi(addr, rk_addr)
                b.movi(val, 4)
                b.mul(val, val, w_i)
                b.add(addr, addr, val)
                b.add(addr, addr, byte_i)
                b.store(old, addr)

    with b.function("encrypt_block") as encrypt_block:
        b.movi("ark_round", 0)
        b.call(add_round_key)
        round_i = b.reg("enc_round")
        with b.for_range(round_i, 1, ROUNDS):
            b.call(sub_bytes_state)
            b.call(shift_rows)
            b.call(mix_columns)
            b.mov("ark_round", round_i)
            b.call(add_round_key)
        b.call(sub_bytes_state)
        b.call(shift_rows)
        b.movi("ark_round", ROUNDS)
        b.call(add_round_key)

    return expand_key, encrypt_block


def _build_aes_kernel(name: str, mode: str, blocks: int) -> KernelProgram:
    b = ProgramBuilder(name)
    key_a = [(i * 7 + 1) & 0xFF for i in range(16)]
    key_b = [(i * 13 + 99) & 0xFF for i in range(16)]
    plaintext_a = [(i * 11 + 5) & 0xFF for i in range(16 * blocks)]
    plaintext_b = [(i * 3 + 200) & 0xFF for i in range(16 * blocks)]
    iv = [(i * 17 + 3) & 0xFF for i in range(16)]
    counters = [[(c + 1) & 0xFF] + iv[1:] for c in range(blocks)]

    key_addr = b.alloc_secret("key", key_a)
    pt_addr = b.alloc_secret("plaintext", plaintext_a)
    iv_addr = b.alloc("iv", iv)
    counter_addr = b.alloc("counters", [byte for block in counters for byte in block])
    rk_addr = b.alloc("round_keys", 176)
    state_addr = b.alloc("state", 16)
    rcon_addr = b.alloc("rcon", RCON)
    out_addr = b.alloc("output", 16 * blocks)

    with b.crypto():
        expand_key, encrypt_block = _emit_cipher_functions(b, rk_addr, state_addr, rcon_addr, key_addr)
        b.call(expand_key)
        i = b.reg("top_i")
        addr = b.reg("top_addr")
        val = b.reg("top_val")
        tmp = b.reg("top_tmp")
        block_i = b.reg("top_block")
        offset = b.reg("top_off")
        with b.for_range(block_i, 0, blocks):
            b.movi(offset, 16)
            b.mul(offset, offset, block_i)
            if mode == "ctr":
                # state = counter block
                with b.for_range(i, 0, 16):
                    b.movi(addr, counter_addr)
                    b.add(addr, addr, offset)
                    b.add(addr, addr, i)
                    b.load(val, addr)
                    b.movi(addr, state_addr)
                    b.add(addr, addr, i)
                    b.store(val, addr)
                b.call(encrypt_block)
                # output = keystream ^ plaintext
                with b.for_range(i, 0, 16):
                    b.movi(addr, pt_addr)
                    b.add(addr, addr, offset)
                    b.add(addr, addr, i)
                    b.load(val, addr)
                    b.movi(addr, state_addr)
                    b.add(addr, addr, i)
                    b.load(tmp, addr)
                    b.xor(val, val, tmp)
                    b.movi(addr, out_addr)
                    b.add(addr, addr, offset)
                    b.add(addr, addr, i)
                    b.store(val, addr)
            else:  # CBC
                # state = plaintext ^ previous ciphertext (or IV for block 0)
                prev_is_iv = b.reg("cbc_previsiv")
                prev_addr = b.reg("cbc_prevaddr")
                b.cmpeq(prev_is_iv, block_i, 0)
                with b.for_range(i, 0, 16):
                    b.movi(addr, pt_addr)
                    b.add(addr, addr, offset)
                    b.add(addr, addr, i)
                    b.load(val, addr)
                    # previous ciphertext byte address (out + offset - 16 + i) or iv + i
                    b.movi(prev_addr, out_addr - 16)
                    b.add(prev_addr, prev_addr, offset)
                    b.add(prev_addr, prev_addr, i)
                    b.movi(addr, iv_addr)
                    b.add(addr, addr, i)
                    b.csel(prev_addr, prev_is_iv, addr, prev_addr)
                    b.load(tmp, prev_addr)
                    b.xor(val, val, tmp)
                    b.movi(addr, state_addr)
                    b.add(addr, addr, i)
                    b.store(val, addr)
                b.call(encrypt_block)
                with b.for_range(i, 0, 16):
                    b.movi(addr, state_addr)
                    b.add(addr, addr, i)
                    b.load(val, addr)
                    b.movi(addr, out_addr)
                    b.add(addr, addr, offset)
                    b.add(addr, addr, i)
                    b.store(val, addr)
        b.declassify(val)
    b.halt()
    program = b.build()

    def overrides(key: List[int], plaintext: List[int]) -> Dict[int, int]:
        mapping = {key_addr + i: value for i, value in enumerate(key)}
        mapping.update({pt_addr + i: value for i, value in enumerate(plaintext)})
        return mapping

    if mode == "ctr":
        expected = ctr_model(key_a, counters, plaintext_a)
    else:
        expected = cbc_model(key_a, iv, plaintext_a)

    def verify(result) -> bool:
        return result.memory_words(out_addr, 16 * blocks) == expected

    return KernelProgram(
        name=name,
        suite="bearssl",
        program=program,
        inputs=[overrides(key_a, plaintext_a), overrides(key_b, plaintext_b)],
        verify=verify,
        description=f"AES-structured constant-time cipher, {mode.upper()} mode, {blocks} blocks",
    )


def build_aes_ctr(blocks: int = 3) -> KernelProgram:
    """The ``AES_CTR`` BearSSL workload."""
    return _build_aes_kernel("AES_CTR", "ctr", blocks)


def build_cbc_ct(blocks: int = 3) -> KernelProgram:
    """The ``CBC_ct`` BearSSL workload."""
    return _build_aes_kernel("CBC_ct", "cbc", blocks)
