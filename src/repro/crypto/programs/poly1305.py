"""Poly1305-style one-time MAC kernel (reduced modulus).

The real Poly1305 evaluates a polynomial over GF(2^130 - 5) with multi-limb
arithmetic; the 64-bit toy ISA cannot hold 130-bit limb products, so the
kernel evaluates the same Horner recurrence ``acc = (acc + block) * r mod p``
over the Mersenne prime ``2^31 - 1`` with one 32-bit block per iteration.
The per-block loop structure (the part the branch analysis sees) matches the
reference implementation; the ground truth is the matching reduced model
defined in this module.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.crypto.programs.common import KernelProgram, emit_mersenne_addmod, emit_mersenne_mulmod
from repro.isa.builder import ProgramBuilder

PRIME = (1 << 31) - 1
PRIME_BITS = 31


def poly1305_reduced_model(blocks: Sequence[int], r: int, s: int) -> int:
    """The reduced Poly1305 the kernel computes (ground truth)."""
    accumulator = 0
    r %= PRIME
    for block in blocks:
        accumulator = ((accumulator + (block % PRIME)) * r) % PRIME
    return (accumulator + s) % (1 << 32)


def build_poly1305(name: str = "Poly1305_ctmul", suite: str = "bearssl", num_blocks: int = 32) -> KernelProgram:
    """MAC ``num_blocks`` 32-bit message blocks under a secret (r, s) key."""
    b = ProgramBuilder(name)

    blocks_a = [((i * 2654435761) ^ 0x9E3779B9) & 0xFFFFFFFF for i in range(num_blocks)]
    blocks_b = [((i * 40503) + 0x7F4A7C15) & 0xFFFFFFFF for i in range(num_blocks)]
    r_a, s_a = 0x3FFFF03, 0x11223344
    r_b, s_b = 0x0754AB1, 0x55667788

    key_addr = b.alloc_secret("key_rs", [r_a, s_a])
    msg_addr = b.alloc_secret("message", blocks_a)
    out_addr = b.alloc("tag", 1)

    with b.crypto():
        acc, r, s, block = b.regs("acc", "r", "s", "block")
        i, addr = b.regs("i", "addr")
        b.movi(addr, key_addr)
        b.load(r, addr, 0)
        b.load(s, addr, 1)
        b.movi(acc, 0)
        with b.for_range(i, 0, num_blocks):
            b.movi(addr, msg_addr)
            b.add(addr, addr, i)
            b.load(block, addr)
            emit_mersenne_addmod(b, acc, acc, block, PRIME, tmp_prefix=f"pa")
            emit_mersenne_mulmod(b, acc, acc, r, PRIME, PRIME_BITS, tmp_prefix=f"pm")
        b.add(acc, acc, s)
        b.mask32(acc)
        b.declassify(acc)
        b.movi(addr, out_addr)
        b.store(acc, addr)
    b.halt()
    program = b.build()

    def overrides(blocks: List[int], r_val: int, s_val: int) -> Dict[int, int]:
        mapping = {key_addr: r_val, key_addr + 1: s_val}
        for offset, word in enumerate(blocks):
            mapping[msg_addr + offset] = word
        return mapping

    expected = poly1305_reduced_model(blocks_a, r_a, s_a)

    def verify(result) -> bool:
        return result.state.read_mem(out_addr) == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[overrides(blocks_a, r_a, s_a), overrides(blocks_b, r_b, s_b)],
        verify=verify,
        description=f"Reduced Poly1305 MAC over {num_blocks} blocks (Horner loop structure)",
    )
