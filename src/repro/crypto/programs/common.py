"""Shared infrastructure for the ISA crypto kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.arch.executor import ExecutionResult, SequentialExecutor
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


@dataclass
class KernelProgram:
    """A built kernel plus everything the analyses need to drive it.

    Attributes
    ----------
    name:
        Workload name as it appears in the paper's tables/figures.
    suite:
        ``"bearssl"``, ``"openssl"``, or ``"pqc"``.
    program:
        The ISA program.
    inputs:
        At least two memory-override mappings assigning different
        confidential inputs (Algorithm 2 diffs the traces they induce).
    verify:
        Callback receiving the :class:`ExecutionResult` of a run with
        ``inputs[0]`` and returning True when the kernel's output matches its
        ground-truth model.
    description:
        One-line description of what the kernel computes.
    """

    name: str
    suite: str
    program: Program
    inputs: List[Dict[int, int]]
    verify: Callable[[ExecutionResult], bool]
    description: str = ""

    def run(self, input_index: int = 0, max_steps: int = 5_000_000) -> ExecutionResult:
        """Execute the kernel with one of its registered inputs."""
        executor = SequentialExecutor(max_steps=max_steps)
        return executor.run(self.program, memory_overrides=self.inputs[input_index])

    def check(self) -> bool:
        """Run with the primary input and verify against the model."""
        return self.verify(self.run(0))


# --------------------------------------------------------------------------- #
# Byte/word packing helpers shared by the kernels
# --------------------------------------------------------------------------- #
def bytes_to_words_le(data: bytes, word_bytes: int = 4) -> List[int]:
    """Split bytes into little-endian words (zero padded)."""
    padded = data + b"\x00" * ((-len(data)) % word_bytes)
    return [
        int.from_bytes(padded[i : i + word_bytes], "little")
        for i in range(0, len(padded), word_bytes)
    ]


def bytes_to_words_be(data: bytes, word_bytes: int = 4) -> List[int]:
    """Split bytes into big-endian words (zero padded)."""
    padded = data + b"\x00" * ((-len(data)) % word_bytes)
    return [
        int.from_bytes(padded[i : i + word_bytes], "big")
        for i in range(0, len(padded), word_bytes)
    ]


def words_to_bytes_le(words: Sequence[int], word_bytes: int = 4) -> bytes:
    """Concatenate words little-endian."""
    return b"".join(int(word).to_bytes(word_bytes, "little") for word in words)


def words_to_bytes_be(words: Sequence[int], word_bytes: int = 4) -> bytes:
    """Concatenate words big-endian."""
    return b"".join(int(word).to_bytes(word_bytes, "big") for word in words)


# --------------------------------------------------------------------------- #
# Emitter fragments used by several kernels
# --------------------------------------------------------------------------- #
def emit_copy_words(b: ProgramBuilder, dst_base: int, src_base: int, count: int) -> None:
    """Emit a word-copy loop ``dst[i] = src[i]`` for ``i in range(count)``."""
    i = b.reg("cp_i")
    src = b.reg("cp_src")
    dst = b.reg("cp_dst")
    val = b.reg("cp_val")
    with b.for_range(i, 0, count):
        b.movi(src, src_base)
        b.add(src, src, i)
        b.load(val, src)
        b.movi(dst, dst_base)
        b.add(dst, dst, i)
        b.store(val, dst)


def emit_xor_words(b: ProgramBuilder, dst_base: int, a_base: int, b_base: int, count: int) -> None:
    """Emit ``dst[i] = a[i] ^ b[i]`` for ``i in range(count)``."""
    i = b.reg("xw_i")
    addr = b.reg("xw_addr")
    lhs = b.reg("xw_a")
    rhs = b.reg("xw_b")
    with b.for_range(i, 0, count):
        b.movi(addr, a_base)
        b.add(addr, addr, i)
        b.load(lhs, addr)
        b.movi(addr, b_base)
        b.add(addr, addr, i)
        b.load(rhs, addr)
        b.xor(lhs, lhs, rhs)
        b.movi(addr, dst_base)
        b.add(addr, addr, i)
        b.store(lhs, addr)


def emit_mersenne_mulmod(
    b: ProgramBuilder,
    dst: str,
    a: str,
    operand_b: str,
    prime: int,
    prime_bits: int,
    tmp_prefix: str = "mm",
) -> None:
    """Emit ``dst = (a * b) mod prime`` for a Mersenne prime ``2^k - 1``.

    Uses the identity ``x mod (2^k - 1) = (x >> k) + (x & (2^k - 1))`` (twice)
    followed by a constant-time conditional subtraction, so the emitted code
    is branch free.
    """
    hi = b.reg(f"{tmp_prefix}_hi")
    lo = b.reg(f"{tmp_prefix}_lo")
    cond = b.reg(f"{tmp_prefix}_c")
    reduced = b.reg(f"{tmp_prefix}_r")
    b.mul(dst, a, operand_b)
    for _ in range(2):
        b.shr(hi, dst, prime_bits)
        b.and_(lo, dst, prime)
        b.add(dst, hi, lo)
    b.sub(reduced, dst, prime)
    b.cmpge(cond, dst, prime)
    b.csel(dst, cond, reduced, dst)


def emit_mersenne_addmod(
    b: ProgramBuilder, dst: str, a: str, operand_b: str, prime: int, tmp_prefix: str = "am"
) -> None:
    """Emit ``dst = (a + b) mod prime`` branch-free."""
    cond = b.reg(f"{tmp_prefix}_c")
    reduced = b.reg(f"{tmp_prefix}_r")
    b.add(dst, a, operand_b)
    b.sub(reduced, dst, prime)
    b.cmpge(cond, dst, prime)
    b.csel(dst, cond, reduced, dst)


def emit_mersenne_submod(
    b: ProgramBuilder, dst: str, a: str, operand_b: str, prime: int, tmp_prefix: str = "sm"
) -> None:
    """Emit ``dst = (a - b) mod prime`` branch-free (adds the prime first)."""
    cond = b.reg(f"{tmp_prefix}_c")
    reduced = b.reg(f"{tmp_prefix}_r")
    b.add(dst, a, prime)
    b.sub(dst, dst, operand_b)
    b.sub(reduced, dst, prime)
    b.cmpge(cond, dst, prime)
    b.csel(dst, cond, reduced, dst)
