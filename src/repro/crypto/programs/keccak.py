"""SHAKE128 ISA kernel built on a full Keccak-f[1600] permutation.

The permutation is emitted with its real structure: a 24-iteration round
loop whose body performs the theta, rho+pi, chi, and iota steps as loops and
straight-line lane operations over the 25-lane state held in memory.  The
kernel absorbs one padded rate block of secret input and squeezes 32 bytes of
output, and is verified against the reference SHAKE128.
"""

from __future__ import annotations

from typing import Dict

from repro.crypto.primitives.keccak import RHO_OFFSETS, ROUND_CONSTANTS, shake128
from repro.crypto.programs.common import (
    KernelProgram,
    bytes_to_words_le,
    words_to_bytes_le,
)
from repro.isa.builder import ProgramBuilder

RATE_BYTES = 168  # SHAKE128 rate
LANES = 25


def _lane_index(x: int, y: int) -> int:
    return x + 5 * y


def build_shake(name: str = "SHAKE", suite: str = "bearssl", message_bytes: int = 64) -> KernelProgram:
    """SHAKE128 of a ``message_bytes``-byte secret message (single block)."""
    if message_bytes > RATE_BYTES - 1:
        raise ValueError("single-block kernel: message must fit in one rate block")
    b = ProgramBuilder(name)

    message_a = bytes((i * 37 + 1) & 0xFF for i in range(message_bytes))
    message_b = bytes((i * 91 + 53) & 0xFF for i in range(message_bytes))

    def padded_block(message: bytes) -> bytes:
        block = bytearray(message)
        block.append(0x1F)
        while len(block) < RATE_BYTES:
            block.append(0)
        block[RATE_BYTES - 1] ^= 0x80
        return bytes(block)

    state_addr = b.alloc("state", LANES)
    block_addr = b.alloc_secret("block", bytes_to_words_le(padded_block(message_a), 8))
    rc_addr = b.alloc("round_constants", list(ROUND_CONSTANTS))
    c_addr = b.alloc("theta_c", 5)
    d_addr = b.alloc("theta_d", 5)
    b_addr = b.alloc("rho_pi_b", LANES)
    out_addr = b.alloc("output", 4)

    rate_lanes = RATE_BYTES // 8

    with b.crypto():
        with b.function("keccak_f1600") as keccak_fn:
            round_i = b.reg("kc_round")
            addr = b.reg("kc_addr")
            val = b.reg("kc_val")
            tmp = b.reg("kc_tmp")
            acc = b.reg("kc_acc")
            with b.for_range(round_i, 0, 24):
                # ---- theta: column parities. ----
                for x in range(5):
                    b.movi(addr, state_addr + _lane_index(x, 0))
                    b.load(acc, addr)
                    for y in range(1, 5):
                        b.movi(addr, state_addr + _lane_index(x, y))
                        b.load(val, addr)
                        b.xor(acc, acc, val)
                    b.movi(addr, c_addr + x)
                    b.store(acc, addr)
                for x in range(5):
                    b.movi(addr, c_addr + (x - 1) % 5)
                    b.load(acc, addr)
                    b.movi(addr, c_addr + (x + 1) % 5)
                    b.load(val, addr)
                    b.rotl64(val, val, 1)
                    b.xor(acc, acc, val)
                    b.movi(addr, d_addr + x)
                    b.store(acc, addr)
                lane_i = b.reg(f"kc_lane")
                dsel = b.reg("kc_dsel")
                with b.for_range(lane_i, 0, LANES):
                    b.movi(addr, state_addr)
                    b.add(addr, addr, lane_i)
                    b.load(val, addr)
                    b.mod(dsel, lane_i, 5)
                    b.add(dsel, dsel, d_addr)
                    b.load(tmp, dsel)
                    b.xor(val, val, tmp)
                    b.store(val, addr)
                # ---- rho + pi. ----
                for x in range(5):
                    for y in range(5):
                        b.movi(addr, state_addr + _lane_index(x, y))
                        b.load(val, addr)
                        b.rotl64(val, val, RHO_OFFSETS[x][y])
                        b.movi(addr, b_addr + _lane_index(y, (2 * x + 3 * y) % 5))
                        b.store(val, addr)
                # ---- chi. ----
                for x in range(5):
                    for y in range(5):
                        b.movi(addr, b_addr + _lane_index(x, y))
                        b.load(val, addr)
                        b.movi(addr, b_addr + _lane_index((x + 1) % 5, y))
                        b.load(tmp, addr)
                        b.not_(tmp, tmp)
                        b.movi(addr, b_addr + _lane_index((x + 2) % 5, y))
                        b.load(acc, addr)
                        b.and_(tmp, tmp, acc)
                        b.xor(val, val, tmp)
                        b.movi(addr, state_addr + _lane_index(x, y))
                        b.store(val, addr)
                # ---- iota. ----
                b.movi(addr, rc_addr)
                b.add(addr, addr, round_i)
                b.load(tmp, addr)
                b.movi(addr, state_addr)
                b.load(val, addr)
                b.xor(val, val, tmp)
                b.store(val, addr)

        # Absorb the single padded block, permute, squeeze 32 bytes.
        i = b.reg("sp_i")
        addr = b.reg("sp_addr")
        val = b.reg("sp_val")
        tmp = b.reg("sp_tmp")
        with b.for_range(i, 0, rate_lanes):
            b.movi(addr, block_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, state_addr)
            b.add(addr, addr, i)
            b.load(tmp, addr)
            b.xor(val, val, tmp)
            b.store(val, addr)
        b.call(keccak_fn)
        with b.for_range(i, 0, 4):
            b.movi(addr, state_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.declassify(val)
            b.movi(addr, out_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
    b.halt()
    program = b.build()

    def overrides(message: bytes) -> Dict[int, int]:
        return {
            block_addr + offset: word
            for offset, word in enumerate(bytes_to_words_le(padded_block(message), 8))
        }

    expected = shake128(message_a, 32)

    def verify(result) -> bool:
        words = result.memory_words(out_addr, 4)
        return words_to_bytes_le(words, 8) == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[overrides(message_a), overrides(message_b)],
        verify=verify,
        description=f"SHAKE128 of a {message_bytes}-byte message (one Keccak-f[1600])",
    )
