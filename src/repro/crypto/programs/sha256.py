"""SHA-256 ISA kernels (full-strength, verified against FIPS 180-4).

Three workloads are built from the same compression-function kernel:

* ``SHA-256`` / ``sha256`` — hash a multi-block message;
* ``MultiHash`` — iterated hashing over several inputs;
* ``TLS PRF`` — the TLS 1.2 P_SHA256 expansion, whose inner HMAC invocations
  drive many compression calls.

The message schedule expansion (48 iterations), the 64-round compression
loop, and the per-block outer loop match the reference implementation's
control flow exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.crypto.primitives.sha256 import H0, K, pad_message, sha256
from repro.crypto.primitives.tls_prf import hmac_sha256, multihash, tls12_prf
from repro.crypto.programs.common import (
    KernelProgram,
    bytes_to_words_be,
    words_to_bytes_be,
)
from repro.isa.builder import ProgramBuilder


def _emit_sha256_kernel(
    b: ProgramBuilder,
    k_addr: int,
    h_addr: int,
    w_addr: int,
):
    """Emit the ``sha256_compress`` function.

    The function consumes the message block whose base address is in register
    ``cmp_block`` and updates the hash state at ``h_addr`` in place.
    """
    with b.function("sha256_compress") as compress_fn:
        i = b.reg("sc_i")
        addr = b.reg("sc_addr")
        val = b.reg("sc_val")
        # W[0..15] = message words.
        with b.for_range(i, 0, 16):
            b.mov(addr, "cmp_block")
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, w_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
        # Message schedule expansion.
        w15, w2, w16, w7, s0, s1, tmp = b.regs("w15", "w2", "w16", "w7", "s0", "s1", "tmp")
        with b.for_range(i, 16, 64):
            b.movi(addr, w_addr - 15)
            b.add(addr, addr, i)
            b.load(w15, addr)
            b.movi(addr, w_addr - 2)
            b.add(addr, addr, i)
            b.load(w2, addr)
            b.movi(addr, w_addr - 16)
            b.add(addr, addr, i)
            b.load(w16, addr)
            b.movi(addr, w_addr - 7)
            b.add(addr, addr, i)
            b.load(w7, addr)
            # s0 = rotr(w15,7) ^ rotr(w15,18) ^ (w15 >> 3)
            b.rotr(s0, w15, 7)
            b.rotr(tmp, w15, 18)
            b.xor(s0, s0, tmp)
            b.shr(tmp, w15, 3)
            b.xor(s0, s0, tmp)
            # s1 = rotr(w2,17) ^ rotr(w2,19) ^ (w2 >> 10)
            b.rotr(s1, w2, 17)
            b.rotr(tmp, w2, 19)
            b.xor(s1, s1, tmp)
            b.shr(tmp, w2, 10)
            b.xor(s1, s1, tmp)
            b.add(val, w16, s0)
            b.add(val, val, w7)
            b.add(val, val, s1)
            b.mask32(val)
            b.movi(addr, w_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
        # Load the working variables a..h.
        work = [b.reg(f"v{name}") for name in "abcdefgh"]
        for index, reg in enumerate(work):
            b.movi(addr, h_addr + index)
            b.load(reg, addr)
        a, aa, c, d, e, f, g, h = work
        ch, maj, t1, t2 = b.regs("ch", "maj", "t1", "t2")
        kt, wt = b.regs("kt", "wt")
        t = b.reg("sc_t")
        with b.for_range(t, 0, 64):
            # S1 = rotr(e,6) ^ rotr(e,11) ^ rotr(e,25)
            b.rotr(s1, e, 6)
            b.rotr(tmp, e, 11)
            b.xor(s1, s1, tmp)
            b.rotr(tmp, e, 25)
            b.xor(s1, s1, tmp)
            # ch = (e & f) ^ (~e & g)
            b.and_(ch, e, f)
            b.not_(tmp, e)
            b.and_(tmp, tmp, g)
            b.xor(ch, ch, tmp)
            b.mask32(ch)
            # t1 = h + S1 + ch + K[t] + W[t]
            b.movi(addr, k_addr)
            b.add(addr, addr, t)
            b.load(kt, addr)
            b.movi(addr, w_addr)
            b.add(addr, addr, t)
            b.load(wt, addr)
            b.add(t1, h, s1)
            b.add(t1, t1, ch)
            b.add(t1, t1, kt)
            b.add(t1, t1, wt)
            b.mask32(t1)
            # S0 = rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)
            b.rotr(s0, a, 2)
            b.rotr(tmp, a, 13)
            b.xor(s0, s0, tmp)
            b.rotr(tmp, a, 22)
            b.xor(s0, s0, tmp)
            # maj = (a & b) ^ (a & c) ^ (b & c)
            b.and_(maj, a, aa)
            b.and_(tmp, a, c)
            b.xor(maj, maj, tmp)
            b.and_(tmp, aa, c)
            b.xor(maj, maj, tmp)
            b.add(t2, s0, maj)
            b.mask32(t2)
            # Rotate the working variables.
            b.mov(h, g)
            b.mov(g, f)
            b.mov(f, e)
            b.add(e, d, t1)
            b.mask32(e)
            b.mov(d, c)
            b.mov(c, aa)
            b.mov(aa, a)
            b.add(a, t1, t2)
            b.mask32(a)
        # Fold back into the hash state.
        for index, reg in enumerate(work):
            b.movi(addr, h_addr + index)
            b.load(val, addr)
            b.add(val, val, reg)
            b.mask32(val)
            b.store(val, addr)
    return compress_fn


def _emit_hash_message(
    b: ProgramBuilder, compress_fn, msg_addr: int, num_blocks: int
) -> None:
    """Emit the per-block outer loop calling ``sha256_compress``."""
    blk = b.reg("hm_blk")
    with b.for_range(blk, 0, num_blocks):
        b.movi("cmp_block", 16)
        b.mul("cmp_block", "cmp_block", blk)
        b.add("cmp_block", "cmp_block", msg_addr)
        b.call(compress_fn)


def build_sha256(
    name: str = "SHA-256",
    suite: str = "bearssl",
    message_bytes: int = 128,
) -> KernelProgram:
    """Hash a ``message_bytes``-byte secret message with SHA-256."""
    b = ProgramBuilder(name)
    message_a = bytes((i * 31 + 7) & 0xFF for i in range(message_bytes))
    message_b = bytes((i * 5 + 1) & 0xFF for i in range(message_bytes))
    padded_a = pad_message(message_a)
    padded_b = pad_message(message_b)
    num_blocks = len(padded_a) // 64

    k_addr = b.alloc("k_table", list(K))
    h_addr = b.alloc("h_state", list(H0))
    msg_addr = b.alloc_secret("message", bytes_to_words_be(padded_a))
    w_addr = b.alloc("w_schedule", 64)
    out_addr = b.alloc("digest", 8)

    with b.crypto():
        compress_fn = _emit_sha256_kernel(b, k_addr, h_addr, w_addr)
        _emit_hash_message(b, compress_fn, msg_addr, num_blocks)
        # Copy the final state to the output buffer.
        i = b.reg("out_i")
        addr = b.reg("out_addr")
        val = b.reg("out_val")
        with b.for_range(i, 0, 8):
            b.movi(addr, h_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.declassify(val)
            b.movi(addr, out_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
    b.halt()
    program = b.build()

    def overrides(padded: bytes) -> Dict[int, int]:
        return {
            msg_addr + offset: word
            for offset, word in enumerate(bytes_to_words_be(padded))
        }

    expected = sha256(message_a)

    def verify(result) -> bool:
        digest_words = result.memory_words(out_addr, 8)
        return words_to_bytes_be(digest_words) == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[overrides(padded_a), overrides(padded_b)],
        verify=verify,
        description=f"SHA-256 of a {message_bytes}-byte message",
    )


def build_openssl_sha256(message_bytes: int = 192) -> KernelProgram:
    """The OpenSSL-suite sha256 workload (larger message)."""
    return build_sha256(name="sha256", suite="openssl", message_bytes=message_bytes)


def build_multihash(chunks: int = 3, chunk_bytes: int = 64) -> KernelProgram:
    """MultiHash: hash ``chunks`` independent messages with one kernel.

    Each chunk is padded to a whole number of blocks and hashed from a fresh
    initial state; the digests are written to consecutive output slots.  The
    ground truth is the reference SHA-256 of each chunk.
    """
    b = ProgramBuilder("MultiHash")
    messages_a = [bytes(((i + 3 * c) * 11 + c) & 0xFF for i in range(chunk_bytes)) for c in range(chunks)]
    messages_b = [bytes(((i + 5 * c) * 17 + 2 * c) & 0xFF for i in range(chunk_bytes)) for c in range(chunks)]
    padded_a = [pad_message(m) for m in messages_a]
    padded_b = [pad_message(m) for m in messages_b]
    blocks_per_chunk = len(padded_a[0]) // 64

    k_addr = b.alloc("k_table", list(K))
    h_addr = b.alloc("h_state", list(H0))
    h0_addr = b.alloc("h_initial", list(H0))
    msg_addrs = [
        b.alloc_secret(f"message_{c}", bytes_to_words_be(padded_a[c])) for c in range(chunks)
    ]
    w_addr = b.alloc("w_schedule", 64)
    out_addr = b.alloc("digests", 8 * chunks)

    with b.crypto():
        compress_fn = _emit_sha256_kernel(b, k_addr, h_addr, w_addr)
        i = b.reg("mh_i")
        addr = b.reg("mh_addr")
        val = b.reg("mh_val")
        for chunk_index in range(chunks):
            # Reset the hash state to H0.
            with b.for_range(i, 0, 8):
                b.movi(addr, h0_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, h_addr)
                b.add(addr, addr, i)
                b.store(val, addr)
            _emit_hash_message(b, compress_fn, msg_addrs[chunk_index], blocks_per_chunk)
            with b.for_range(i, 0, 8):
                b.movi(addr, h_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.declassify(val)
                b.movi(addr, out_addr + 8 * chunk_index)
                b.add(addr, addr, i)
                b.store(val, addr)
    b.halt()
    program = b.build()

    def overrides(padded: List[bytes]) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for chunk_index, chunk in enumerate(padded):
            for offset, word in enumerate(bytes_to_words_be(chunk)):
                mapping[msg_addrs[chunk_index] + offset] = word
        return mapping

    expected = [sha256(m) for m in messages_a]

    def verify(result) -> bool:
        for chunk_index, digest in enumerate(expected):
            words = result.memory_words(out_addr + 8 * chunk_index, 8)
            if words_to_bytes_be(words) != digest:
                return False
        return True

    return KernelProgram(
        name="MultiHash",
        suite="bearssl",
        program=program,
        inputs=[overrides(padded_a), overrides(padded_b)],
        verify=verify,
        description=f"SHA-256 of {chunks} independent {chunk_bytes}-byte messages",
    )


def build_tls_prf(output_bytes: int = 32) -> KernelProgram:
    """TLS 1.2 PRF kernel.

    The kernel computes ``P_SHA256(secret, label || seed)`` for one output
    block using the HMAC structure: four compression-function invocations per
    HMAC, two HMACs per P_hash iteration.  Inner/outer padded keys and the
    fixed-size messages are laid out in memory by the (public) builder; the
    secret key material is tagged secret and varied across inputs.
    """
    b = ProgramBuilder("TLS PRF")
    secret_a = bytes((i * 29 + 5) & 0xFF for i in range(32))
    secret_b = bytes((i * 3 + 77) & 0xFF for i in range(32))
    label = b"key expansion"
    seed = bytes(range(16))

    expected = tls12_prf(secret_a, label, seed, output_bytes)

    # The PRF is computed as HMAC(secret, A1 || label || seed) with
    # A1 = HMAC(secret, label || seed).  Each HMAC is two SHA-256 passes:
    # inner over (ipad || msg), outer over (opad || inner_digest).
    # The kernel performs the four passes with explicit block loops; the
    # ipad/opad-xored key blocks are produced by in-kernel XOR loops from the
    # secret key so the secret never appears pre-mixed in public memory.
    k_addr = b.alloc("k_table", list(K))
    h_addr = b.alloc("h_state", 8)
    h0_addr = b.alloc("h_initial", list(H0))
    key_addr = b.alloc_secret("secret", bytes_to_words_be(secret_a + b"\x00" * 32))
    pad_addr = b.alloc("pad_words", 16)  # scratch: ipad/opad-xored key block
    a1_addr = b.alloc("a1_digest", 8)
    inner_addr = b.alloc("inner_digest", 8)
    out_addr = b.alloc("prf_output", 8)

    label_seed = label + seed
    # Pre-padded message tails (public): [label||seed padding] for the inner
    # hash of A1, [A(1)||label||seed padding] template, and the outer tails.
    inner1_tail = pad_message(b"\x00" * 64 + label_seed)[64:]
    inner2_tail = pad_message(b"\x00" * 64 + b"\x00" * 32 + label_seed)[64 + 32 :]
    outer_tail = pad_message(b"\x00" * 64 + b"\x00" * 32)[64 + 32 :]
    inner1_addr = b.alloc("inner1_tail", bytes_to_words_be(inner1_tail))
    inner2_addr = b.alloc("inner2_tail", bytes_to_words_be(inner2_tail))
    outer_addr = b.alloc("outer_tail", bytes_to_words_be(outer_tail))
    msg_addr = b.alloc("msg_block", 32)  # up to two blocks of working message

    with b.crypto():
        compress_fn = _emit_sha256_kernel(b, k_addr, h_addr, w_addr=b.alloc("w_schedule", 64))

        i = b.reg("prf_i")
        addr = b.reg("prf_addr")
        val = b.reg("prf_val")
        tmp = b.reg("prf_tmp")

        with b.function("reset_state") as reset_state:
            with b.for_range(i, 0, 8):
                b.movi(addr, h0_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, h_addr)
                b.add(addr, addr, i)
                b.store(val, addr)

        with b.function("xor_key_pad") as xor_key_pad:
            # pad_words[i] = key[i] ^ pad_byte_word  (pad word in register prf_padw)
            with b.for_range(i, 0, 16):
                b.movi(addr, key_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.xor(val, val, "prf_padw")
                b.mask32(val)
                b.movi(addr, pad_addr)
                b.add(addr, addr, i)
                b.store(val, addr)

        def hmac(msg_tail_addr: int, tail_words: int, digest_addr: int, a_digest_addr: int | None) -> None:
            """Emit one HMAC-SHA256 over (A || label_seed) style messages."""
            # Inner hash: ipad block, then the message block(s).
            b.movi("prf_padw", 0x36363636)
            b.call(xor_key_pad)
            b.call(reset_state)
            b.movi("cmp_block", pad_addr)
            b.call(compress_fn)
            # Build the message block: optional A-digest followed by the tail.
            cursor = 0
            if a_digest_addr is not None:
                with b.for_range(i, 0, 8):
                    b.movi(addr, a_digest_addr)
                    b.add(addr, addr, i)
                    b.load(val, addr)
                    b.movi(addr, msg_addr)
                    b.add(addr, addr, i)
                    b.store(val, addr)
                cursor = 8
            with b.for_range(i, 0, tail_words):
                b.movi(addr, msg_tail_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, msg_addr + cursor)
                b.add(addr, addr, i)
                b.store(val, addr)
            total_words = cursor + tail_words
            for block_index in range(total_words // 16):
                b.movi("cmp_block", msg_addr + 16 * block_index)
                b.call(compress_fn)
            # Save the inner digest.
            with b.for_range(i, 0, 8):
                b.movi(addr, h_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, inner_addr)
                b.add(addr, addr, i)
                b.store(val, addr)
            # Outer hash: opad block, then inner digest + outer tail.
            b.movi("prf_padw", 0x5C5C5C5C)
            b.call(xor_key_pad)
            b.call(reset_state)
            b.movi("cmp_block", pad_addr)
            b.call(compress_fn)
            with b.for_range(i, 0, 8):
                b.movi(addr, inner_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, msg_addr)
                b.add(addr, addr, i)
                b.store(val, addr)
            with b.for_range(i, 0, 8):
                b.movi(addr, outer_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, msg_addr + 8)
                b.add(addr, addr, i)
                b.store(val, addr)
            b.movi("cmp_block", msg_addr)
            b.call(compress_fn)
            with b.for_range(i, 0, 8):
                b.movi(addr, h_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, digest_addr)
                b.add(addr, addr, i)
                b.store(val, addr)

        # A(1) = HMAC(secret, label || seed)
        hmac(inner1_addr, len(inner1_tail) // 4, a1_addr, a_digest_addr=None)
        # output = HMAC(secret, A(1) || label || seed)
        hmac(inner2_addr, len(inner2_tail) // 4, out_addr, a_digest_addr=a1_addr)
        b.declassify(val)
    b.halt()
    program = b.build()

    def overrides(secret: bytes) -> Dict[int, int]:
        return {
            key_addr + offset: word
            for offset, word in enumerate(bytes_to_words_be(secret + b"\x00" * 32))
        }

    def verify(result) -> bool:
        words = result.memory_words(out_addr, 8)
        return words_to_bytes_be(words)[:output_bytes] == expected[:32]

    return KernelProgram(
        name="TLS PRF",
        suite="bearssl",
        program=program,
        inputs=[overrides(secret_a), overrides(secret_b)],
        verify=verify,
        description="TLS 1.2 PRF (P_SHA256) producing one 32-byte output block",
    )
