"""SPHINCS+-style hash-based signature kernels (three hash variants).

The kernels reproduce the dominant control-flow of SPHINCS+ signing: WOTS
chain generation (nested "for each chain, apply the tweakable hash up to
``w - 1`` times" loops), message-dependent chain advancement for the
signature, chain completion for verification, and a public-key fold.  The
three benchmark variants differ only in the tweakable hash: a SHA-2-style
add-rotate-xor compression (``sphincs-sha2-128s``), a Keccak-style
rotate-xor-and permutation (``sphincs-shake-128s``), and a Haraka-style short
ARX permutation (``sphincs-haraka-128s``).

The chain state is two 64-bit words; the message is fixed (public) and the
secret seed is the varied input, so control flow is identical across runs —
matching real SPHINCS+, whose signing control flow depends only on the
(public) message digest length and Winternitz parameters.  Ground truth is
:func:`sign_and_verify_model`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.crypto.programs.common import KernelProgram
from repro.isa.builder import ProgramBuilder

MASK64 = (1 << 64) - 1
CHAINS = 8
W = 8  # Winternitz parameter: digits in [0, W-1]


# --------------------------------------------------------------------------- #
# Ground-truth model
# --------------------------------------------------------------------------- #
def _hash_model(variant: str, s0: int, s1: int, tweak: int) -> Tuple[int, int]:
    s0 = (s0 ^ tweak) & MASK64
    if variant == "sha2":
        for round_index in range(8):
            s0 = (s0 + ((s1 >> 6) | (s1 << 58) & MASK64) + 0x428A2F98D728AE22 + round_index) & MASK64
            s1 = (s1 ^ ((s0 >> 11) | (s0 << 53) & MASK64)) & MASK64
            s1 = (s1 + (s0 & ~s1 & MASK64)) & MASK64
    elif variant == "shake":
        for round_index in range(6):
            s0 = (s0 ^ ((s1 << 1) | (s1 >> 63)) & MASK64) & MASK64
            s1 = (s1 ^ ((s0 << 44) | (s0 >> 20)) & MASK64) & MASK64
            s0 = (s0 ^ (~s1 & ((s1 << 7 | s1 >> 57) & MASK64)) & MASK64) & MASK64
            s1 = (s1 ^ (0x0000000000008082 + round_index)) & MASK64
    elif variant == "haraka":
        for round_index in range(5):
            s0 = (s0 + s1) & MASK64
            s1 = (s1 ^ ((s0 << 7 | s0 >> 57) & MASK64)) & MASK64
            s1 = (s1 + 0x9E3779B97F4A7C15 + round_index) & MASK64
            s0 = (s0 ^ ((s1 << 13 | s1 >> 51) & MASK64)) & MASK64
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown variant {variant!r}")
    return s0, s1


def _chain_model(variant: str, s0: int, s1: int, start: int, steps: int) -> Tuple[int, int]:
    for step in range(start, start + steps):
        s0, s1 = _hash_model(variant, s0, s1, step + 1)
    return s0, s1


def _digits_model(message_words: List[int]) -> List[int]:
    digits = []
    for chain_index in range(CHAINS):
        word = message_words[chain_index % len(message_words)]
        digits.append((word >> (3 * chain_index)) & (W - 1))
    return digits


def sign_and_verify_model(variant: str, seed: int, message_words: List[int]) -> Tuple[List[int], int]:
    """Returns (public key fold words, verification flag) for the kernel."""
    digits = _digits_model(message_words)
    pk_fold0, pk_fold1 = 0, 0
    completed_fold0, completed_fold1 = 0, 0
    for chain_index in range(CHAINS):
        sk0, sk1 = _hash_model(variant, seed, chain_index, 0x5EED)
        # Public key: full chain.
        pk0, pk1 = _chain_model(variant, sk0, sk1, 0, W - 1)
        pk_fold0 ^= pk0
        pk_fold1 ^= pk1
        # Signature: advance by the message digit; verification completes it.
        sig0, sig1 = _chain_model(variant, sk0, sk1, 0, digits[chain_index])
        done0, done1 = _chain_model(variant, sig0, sig1, digits[chain_index], W - 1 - digits[chain_index])
        completed_fold0 ^= done0
        completed_fold1 ^= done1
    valid = int(completed_fold0 == pk_fold0 and completed_fold1 == pk_fold1)
    return [pk_fold0, pk_fold1], valid


# --------------------------------------------------------------------------- #
# Kernel
# --------------------------------------------------------------------------- #
def _emit_hash_function(b: ProgramBuilder, variant: str):
    """Emit the tweakable hash as a function over registers h0/h1/h_tweak."""
    tmp, tmp2 = b.regs("hh_tmp", "hh_tmp2")
    with b.function(f"hash_{variant}") as hash_fn:
        b.xor("h0", "h0", "h_tweak")
        if variant == "sha2":
            for round_index in range(8):
                b.rotr64(tmp, "h1", 6)
                b.add("h0", "h0", tmp)
                b.add("h0", "h0", (0x428A2F98D728AE22 + round_index) & MASK64)
                b.rotr64(tmp, "h0", 11)
                b.xor("h1", "h1", tmp)
                b.not_(tmp2, "h1")
                b.and_(tmp2, "h0", tmp2)
                b.add("h1", "h1", tmp2)
        elif variant == "shake":
            for round_index in range(6):
                b.rotl64(tmp, "h1", 1)
                b.xor("h0", "h0", tmp)
                b.rotl64(tmp, "h0", 44)
                b.xor("h1", "h1", tmp)
                b.rotl64(tmp, "h1", 7)
                b.not_(tmp2, "h1")
                b.and_(tmp, tmp, tmp2)
                b.xor("h0", "h0", tmp)
                b.xor("h1", "h1", 0x0000000000008082 + round_index)
        else:  # haraka
            for round_index in range(5):
                b.add("h0", "h0", "h1")
                b.rotl64(tmp, "h0", 7)
                b.xor("h1", "h1", tmp)
                b.add("h1", "h1", (0x9E3779B97F4A7C15 + round_index) & MASK64)
                b.rotl64(tmp, "h1", 13)
                b.xor("h0", "h0", tmp)
    return hash_fn


def _build_sphincs(variant: str) -> KernelProgram:
    name = f"sphincs-{variant}-128s"
    b = ProgramBuilder(name)
    variant_salt = {"sha2": 0x2222, "shake": 0x3333, "haraka": 0x4444}[variant]
    seed_a = 0x5EED_0123_4567_89AB ^ variant_salt
    seed_b = 0xFACE_CAFE_F00D_BEEF ^ variant_salt
    message_words = [0x1122334455667788, 0x99AABBCCDDEEFF00]

    seed_addr = b.alloc_secret("seed", [seed_a])
    msg_addr = b.alloc("message", message_words)
    digits_addr = b.alloc("digits", CHAINS)
    pk_addr = b.alloc("pk_fold", 2)
    done_addr = b.alloc("completed_fold", 2)
    out_addr = b.alloc("valid", 1)

    with b.crypto():
        hash_fn = _emit_hash_function(b, variant)
        addr, val, tmp = b.regs("addr", "val", "tmp")
        seed, chain_i, step_i, digit = b.regs("seed", "chain_i", "step_i", "digit")
        sk0, sk1 = b.regs("sk0", "sk1")
        start_reg, steps_reg = b.regs("start", "steps")

        with b.function("chain") as chain_fn:
            # Applies the hash ``steps`` times starting at index ``start``
            # to the chain state in h0/h1.
            with b.for_range(step_i, 0, "steps"):
                b.add("h_tweak", "start", step_i)
                b.add("h_tweak", "h_tweak", 1)
                b.call(hash_fn)

        b.movi(addr, seed_addr)
        b.load(seed, addr)

        # Message digits (public).
        word = b.reg("word")
        with b.for_range(chain_i, 0, CHAINS):
            b.mod(tmp, chain_i, len(message_words))
            b.movi(addr, msg_addr)
            b.add(addr, addr, tmp)
            b.load(word, addr)
            b.movi(tmp, 3)
            b.mul(tmp, tmp, chain_i)
            b.shr(word, word, tmp)
            b.and_(word, word, W - 1)
            b.movi(addr, digits_addr)
            b.add(addr, addr, chain_i)
            b.store(word, addr)

        # WOTS chains: public key, signature, and verification completion.
        pk0, pk1, done0, done1 = b.regs("pk0", "pk1", "done0", "done1")
        b.movi(pk0, 0)
        b.movi(pk1, 0)
        b.movi(done0, 0)
        b.movi(done1, 0)
        with b.for_range(chain_i, 0, CHAINS):
            # Chain secret: H(seed, chain_index) with tweak 0x5EED.
            b.mov("h0", seed)
            b.mov("h1", chain_i)
            b.movi("h_tweak", 0x5EED)
            b.call(hash_fn)
            b.mov(sk0, "h0")
            b.mov(sk1, "h1")
            # Public key chain: full length.
            b.movi("start", 0)
            b.movi("steps", W - 1)
            b.call(chain_fn)
            b.xor(pk0, pk0, "h0")
            b.xor(pk1, pk1, "h1")
            # Signature chain: advance by the message digit.
            b.movi(addr, digits_addr)
            b.add(addr, addr, chain_i)
            b.load(digit, addr)
            b.mov("h0", sk0)
            b.mov("h1", sk1)
            b.movi("start", 0)
            b.mov("steps", digit)
            b.call(chain_fn)
            # Verification: complete the chain.
            b.mov("start", digit)
            b.movi("steps", W - 1)
            b.sub("steps", "steps", digit)
            b.call(chain_fn)
            b.xor(done0, done0, "h0")
            b.xor(done1, done1, "h1")

        b.movi(addr, pk_addr)
        b.store(pk0, addr, 0)
        b.store(pk1, addr, 1)
        b.movi(addr, done_addr)
        b.store(done0, addr, 0)
        b.store(done1, addr, 1)
        b.cmpeq(val, pk0, done0)
        b.cmpeq(tmp, pk1, done1)
        b.and_(val, val, tmp)
        b.declassify(val)
        b.movi(addr, out_addr)
        b.store(val, addr)
    b.halt()
    program = b.build()

    expected_pk, expected_valid = sign_and_verify_model(variant, seed_a, message_words)

    def verify(result) -> bool:
        pk_ok = result.memory_words(pk_addr, 2) == expected_pk
        return pk_ok and result.state.read_mem(out_addr) == expected_valid == 1

    return KernelProgram(
        name=name,
        suite="pqc",
        program=program,
        inputs=[{seed_addr: seed_a}, {seed_addr: seed_b}],
        verify=verify,
        description=f"WOTS sign+verify chains with a {variant}-style tweakable hash",
    )


def build_sphincs_sha2() -> KernelProgram:
    return _build_sphincs("sha2")


def build_sphincs_shake() -> KernelProgram:
    return _build_sphincs("shake")


def build_sphincs_haraka() -> KernelProgram:
    return _build_sphincs("haraka")
