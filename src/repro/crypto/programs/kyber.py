"""Kyber-style module-LWE key generation kernels (``kyber512``, ``kyber768``).

The kernel follows the reference Kyber keygen structure with reduced
parameters (``n = 32`` coefficients per polynomial, ``k`` = 2 or 3):

* the public matrix ``A`` is expanded by **rejection sampling** 12-bit
  candidates drawn from an xorshift64 stream seeded by the (varied) input
  seed — the accept/reject branch is exactly the input-dependent branch the
  paper singles out (its trace changes between runs, so Algorithm 2 refuses
  to record it and the BTU stalls fetch for it);
* the secret and error vectors come from a centred-binomial (CBD) sampler;
* ``t = A·s + e`` is computed with schoolbook negacyclic polynomial
  multiplication (the loop structure of the reference implementation without
  the NTT optimisation).

Ground truth is :func:`keygen_model`, which mirrors the kernel's reduced
computation exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.crypto.programs.common import KernelProgram
from repro.isa.builder import ProgramBuilder

Q = 3329
N = 32
MASK64 = (1 << 64) - 1


# --------------------------------------------------------------------------- #
# Ground-truth model
# --------------------------------------------------------------------------- #
def xorshift64(state: int) -> int:
    state &= MASK64
    state ^= (state << 13) & MASK64
    state ^= state >> 7
    state ^= (state << 17) & MASK64
    return state & MASK64


def keygen_model(seed: int, k: int) -> Tuple[List[List[List[int]]], List[List[int]], List[List[int]]]:
    """Reduced Kyber keygen: returns (A, s, t)."""
    state = seed or 1

    def next_value() -> int:
        nonlocal state
        state = xorshift64(state)
        return state

    # Matrix expansion by rejection sampling.
    matrix: List[List[List[int]]] = []
    for _i in range(k):
        row = []
        for _j in range(k):
            poly: List[int] = []
            while len(poly) < N:
                candidate = next_value() & 0xFFF
                if candidate < Q:
                    poly.append(candidate)
            row.append(poly)
        matrix.append(row)

    def cbd_poly() -> List[int]:
        poly = []
        for _ in range(N):
            draw = next_value()
            value = (draw & 1) + ((draw >> 1) & 1) - ((draw >> 2) & 1) - ((draw >> 3) & 1)
            poly.append(value % Q)
        return poly

    s = [cbd_poly() for _ in range(k)]
    e = [cbd_poly() for _ in range(k)]

    def poly_mul(a: List[int], b: List[int]) -> List[int]:
        out = [0] * N
        for i in range(N):
            for j in range(N):
                index = i + j
                product = (a[i] * b[j]) % Q
                if index >= N:
                    out[index - N] = (out[index - N] - product) % Q
                else:
                    out[index] = (out[index] + product) % Q
        return out

    t = []
    for i in range(k):
        acc = [0] * N
        for j in range(k):
            prod = poly_mul(matrix[i][j], s[j])
            acc = [(x + y) % Q for x, y in zip(acc, prod)]
        acc = [(x + y) % Q for x, y in zip(acc, e[i])]
        t.append(acc)
    return matrix, s, t


# --------------------------------------------------------------------------- #
# Kernel
# --------------------------------------------------------------------------- #
def _build_kyber(name: str, k: int, seed_a: int, seed_b: int) -> KernelProgram:
    b = ProgramBuilder(name)
    seed_addr = b.alloc_secret("seed", [seed_a])
    a_addr = b.alloc("matrix_a", k * k * N)
    s_addr = b.alloc_secret("secret_s", k * N)
    e_addr = b.alloc_secret("error_e", k * N)
    t_addr = b.alloc("public_t", k * N)
    prod_addr = b.alloc("product", N)

    with b.crypto():
        addr, prng, draw, cand, accepted = b.regs("addr", "prng", "draw", "cand", "accepted")
        val, tmp, cond = b.regs("val", "tmp", "cond")
        i, j, ii, jj = b.regs("i", "j", "ii", "jj")

        with b.function("prng_next") as prng_next:
            # xorshift64 on the ``prng`` register; result also in ``draw``.
            b.shl(tmp, prng, 13)
            b.xor(prng, prng, tmp)
            b.shr(tmp, prng, 7)
            b.xor(prng, prng, tmp)
            b.shl(tmp, prng, 17)
            b.xor(prng, prng, tmp)
            b.mov(draw, prng)

        b.movi(addr, seed_addr)
        b.load(prng, addr)

        # ---- Matrix expansion by rejection sampling (input-dependent branch). ----
        poly_base = b.reg("poly_base")
        for row in range(k):
            for col in range(k):
                base = a_addr + (row * k + col) * N
                b.movi(poly_base, base)
                b.movi(accepted, 0)
                more = b.reg(f"more_{row}_{col}")
                b.movi(more, 1)
                with b.while_loop(more):
                    # One XOF draw per iteration; acceptance is branchless
                    # (store unconditionally, bump the index only when the
                    # candidate is below q), so the only input-dependent
                    # branch is the while condition itself — the branch the
                    # paper highlights as having a random trace.
                    b.call(prng_next)
                    b.and_(cand, draw, 0xFFF)
                    b.cmplt(cond, cand, Q)
                    b.mov(addr, poly_base)
                    b.add(addr, addr, accepted)
                    b.store(cand, addr)
                    b.add(accepted, accepted, cond)
                    b.cmplt(more, accepted, N)

        # ---- CBD sampling of s and e. ----
        def emit_cbd(base_addr: int, count: int) -> None:
            idx = b.reg("cbd_idx")
            with b.for_range(idx, 0, count):
                b.call(prng_next)
                b.and_(val, draw, 1)
                b.shr(tmp, draw, 1)
                b.and_(tmp, tmp, 1)
                b.add(val, val, tmp)
                b.shr(tmp, draw, 2)
                b.and_(tmp, tmp, 1)
                b.add(val, val, Q)
                b.sub(val, val, tmp)
                b.shr(tmp, draw, 3)
                b.and_(tmp, tmp, 1)
                b.sub(val, val, tmp)
                b.mod(val, val, Q)
                b.movi(addr, base_addr)
                b.add(addr, addr, idx)
                b.store(val, addr)

        emit_cbd(s_addr, k * N)
        emit_cbd(e_addr, k * N)

        # ---- t = A * s + e  (schoolbook negacyclic polynomial products). ----
        ai, sj, prod, out_idx, sign = b.regs("ai", "sj", "prod", "out_idx", "sign")
        with b.function("poly_mul_acc") as poly_mul_acc:
            # Multiplies the polynomials at ``pm_a`` and ``pm_s`` and
            # accumulates the negacyclic product into ``pm_out``.
            with b.for_range(ii, 0, N):
                b.mov(addr, "pm_a")
                b.add(addr, addr, ii)
                b.load(ai, addr)
                with b.for_range(jj, 0, N):
                    b.mov(addr, "pm_s")
                    b.add(addr, addr, jj)
                    b.load(sj, addr)
                    b.mul(prod, ai, sj)
                    b.mod(prod, prod, Q)
                    b.add(out_idx, ii, jj)
                    b.cmpge(sign, out_idx, N)
                    # wrapped index and (q - prod) for the negacyclic term.
                    b.movi(tmp, N)
                    b.mul(tmp, tmp, sign)
                    b.sub(out_idx, out_idx, tmp)
                    b.movi(tmp, Q)
                    b.sub(tmp, tmp, prod)
                    b.mod(tmp, tmp, Q)
                    b.csel(prod, sign, tmp, prod)
                    b.mov(addr, "pm_out")
                    b.add(addr, addr, out_idx)
                    b.load(val, addr)
                    b.add(val, val, prod)
                    b.mod(val, val, Q)
                    b.store(val, addr)

        row_i = b.reg("row_i")
        for row in range(k):
            # Accumulate the row's products directly into t[row] (starts at 0).
            for col in range(k):
                b.movi("pm_a", a_addr + (row * k + col) * N)
                b.movi("pm_s", s_addr + col * N)
                b.movi("pm_out", t_addr + row * N)
                b.call(poly_mul_acc)
            # Add the error polynomial.
            with b.for_range(row_i, 0, N):
                b.movi(addr, e_addr + row * N)
                b.add(addr, addr, row_i)
                b.load(tmp, addr)
                b.movi(addr, t_addr + row * N)
                b.add(addr, addr, row_i)
                b.load(val, addr)
                b.add(val, val, tmp)
                b.mod(val, val, Q)
                b.store(val, addr)
        b.declassify(val)
    b.halt()
    program = b.build()

    _matrix, _s, t_expected = keygen_model(seed_a, k)
    flat_expected = [coefficient for poly in t_expected for coefficient in poly]

    def verify(result) -> bool:
        return result.memory_words(t_addr, k * N) == flat_expected

    return KernelProgram(
        name=name,
        suite="pqc",
        program=program,
        inputs=[{seed_addr: seed_a}, {seed_addr: seed_b}],
        verify=verify,
        description=f"Reduced Kyber keygen (k={k}, n={N}) with rejection sampling and CBD noise",
    )


def build_kyber512() -> KernelProgram:
    """The ``kyber512`` workload (k = 2)."""
    return _build_kyber("kyber512", k=2, seed_a=0x1234_5678_9ABC_DEF1, seed_b=0x0FED_CBA9_8765_4321)


def build_kyber768() -> KernelProgram:
    """The ``kyber768`` workload (k = 3)."""
    return _build_kyber("kyber768", k=3, seed_a=0xA1B2_C3D4_E5F6_0718, seed_b=0x1122_3344_5566_7788)
