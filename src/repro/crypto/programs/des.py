"""``DES_ct`` kernel: a 16-round Feistel network with bit-permutation loops.

BearSSL's constant-time DES replaces table lookups with bit-level logic.  The
kernel reproduces that control-flow shape — a per-block loop, a 16-round
Feistel loop, and inner 32-bit permutation/expansion loops that walk a public
permutation table — using a simplified round function (expansion-XOR-rotate
-permute) in place of the DES S-boxes.  The ground truth is the matching
reduced model defined in this module.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.programs.common import KernelProgram
from repro.isa.builder import ProgramBuilder

ROUNDS = 16

#: A fixed public 32-bit permutation (derived from the DES P-table pattern).
PERMUTATION = [
    15, 6, 19, 20, 28, 11, 27, 16, 0, 14, 22, 25, 4, 17, 30, 9,
    1, 7, 23, 13, 31, 26, 2, 8, 18, 12, 29, 5, 21, 10, 3, 24,
]

MASK32 = 0xFFFFFFFF


# --------------------------------------------------------------------------- #
# Reduced model (ground truth)
# --------------------------------------------------------------------------- #
def _round_function_model(right: int, round_key: int) -> int:
    mixed = (right ^ round_key) & MASK32
    mixed = ((mixed << 3) | (mixed >> 29)) & MASK32
    mixed = (mixed + 0x9E3779B9) & MASK32
    out = 0
    for position, source in enumerate(PERMUTATION):
        out |= ((mixed >> source) & 1) << position
    return out


def key_schedule_model(key: int) -> List[int]:
    round_keys = []
    state = key & ((1 << 64) - 1)
    for round_index in range(ROUNDS):
        state = ((state << 5) | (state >> 59)) & ((1 << 64) - 1)
        state ^= 0xA5A5A5A5A5A5A5A5
        round_keys.append((state ^ (round_index * 0x01010101)) & MASK32)
    return round_keys


def encrypt_block_model(key: int, block: int) -> int:
    round_keys = key_schedule_model(key)
    left = (block >> 32) & MASK32
    right = block & MASK32
    for round_key in round_keys:
        left, right = right, left ^ _round_function_model(right, round_key)
    return (right << 32) | left


# --------------------------------------------------------------------------- #
# Kernel
# --------------------------------------------------------------------------- #
def build_des(blocks: int = 3) -> KernelProgram:
    """Encrypt ``blocks`` 64-bit blocks with the Feistel kernel."""
    b = ProgramBuilder("DES_ct")
    key_a = 0x133457799BBCDFF1
    key_b = 0x0F1571C947D9E859
    blocks_a = [(0x0123456789ABCDEF * (i + 1)) & ((1 << 64) - 1) for i in range(blocks)]
    blocks_b = [(0xFEDCBA9876543210 ^ (i * 0x1111111111111111)) & ((1 << 64) - 1) for i in range(blocks)]

    key_addr = b.alloc_secret("key", [key_a])
    msg_addr = b.alloc_secret("blocks", blocks_a)
    perm_addr = b.alloc("permutation", PERMUTATION)
    rk_addr = b.alloc("round_keys", ROUNDS)
    out_addr = b.alloc("output", blocks)

    with b.crypto():
        addr, key, state, left, right = b.regs("addr", "key", "state", "left", "right")
        mixed, out, bitv, tmp = b.regs("mixed", "out", "bitv", "tmp")
        rk, newr = b.regs("rk", "newr")
        i, r, p = b.regs("i", "r", "p")

        # ---- Key schedule (16 rotate/XOR rounds). ----
        b.movi(addr, key_addr)
        b.load(key, addr)
        b.mov(state, key)
        with b.for_range(r, 0, ROUNDS):
            b.rotl64(state, state, 5)
            b.xor(state, state, 0xA5A5A5A5A5A5A5A5)
            b.movi(tmp, 0x01010101)
            b.mul(tmp, tmp, r)
            b.xor(rk, state, tmp)
            b.mask32(rk)
            b.movi(addr, rk_addr)
            b.add(addr, addr, r)
            b.store(rk, addr)

        # ---- Round function (register rf_right, rf_key -> rf_out). ----
        with b.function("feistel_round") as feistel_round:
            b.xor(mixed, "rf_right", "rf_key")
            b.mask32(mixed)
            b.rotl(mixed, mixed, 3)
            b.add(mixed, mixed, 0x9E3779B9)
            b.mask32(mixed)
            b.movi(out, 0)
            with b.for_range(p, 0, 32):
                b.movi(addr, perm_addr)
                b.add(addr, addr, p)
                b.load(tmp, addr)
                b.shr(bitv, mixed, tmp)
                b.and_(bitv, bitv, 1)
                b.shl(bitv, bitv, p)
                b.or_(out, out, bitv)
            b.mov("rf_out", out)

        # ---- Per-block Feistel loop. ----
        with b.for_range(i, 0, blocks):
            b.movi(addr, msg_addr)
            b.add(addr, addr, i)
            b.load(state, addr)
            b.shr(left, state, 32)
            b.and_(right, state, MASK32)
            with b.for_range(r, 0, ROUNDS):
                b.movi(addr, rk_addr)
                b.add(addr, addr, r)
                b.load("rf_key", addr)
                b.mov("rf_right", right)
                b.call(feistel_round)
                b.xor(newr, left, "rf_out")
                b.mov(left, right)
                b.mov(right, newr)
            b.shl(state, right, 32)
            b.or_(state, state, left)
            b.movi(addr, out_addr)
            b.add(addr, addr, i)
            b.store(state, addr)
        b.declassify(state)
    b.halt()
    program = b.build()

    expected = [encrypt_block_model(key_a, block) for block in blocks_a]

    def overrides(key: int, message_blocks: List[int]) -> Dict[int, int]:
        mapping = {key_addr: key}
        mapping.update({msg_addr + idx: block for idx, block in enumerate(message_blocks)})
        return mapping

    def verify(result) -> bool:
        return result.memory_words(out_addr, blocks) == expected

    return KernelProgram(
        name="DES_ct",
        suite="bearssl",
        program=program,
        inputs=[overrides(key_a, blocks_a), overrides(key_b, blocks_b)],
        verify=verify,
        description=f"16-round Feistel encryption of {blocks} blocks with bit-permutation loops",
    )
