"""ISA kernel programs for the paper's benchmark workloads.

Each module exposes one or more ``build_*`` functions returning a
:class:`~repro.crypto.programs.common.KernelProgram`: the ISA program, at
least two confidential-input assignments (for Algorithm 2's input diff), and
a verification callback that checks the kernel's architectural output against
its ground-truth model (the full reference implementation where the kernel is
full strength, or a reduced-parameter model documented in the module).

The kernels are written so that their *control-flow structure* — loop nests,
trip counts, call/return patterns — matches the real implementations; that
structure is what the branch analysis, the BTU, and the timing evaluation
measure.
"""
