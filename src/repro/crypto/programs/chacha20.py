"""ChaCha20 ISA kernel (full-strength, verified against RFC 8439).

The kernel mirrors the reference implementation's structure: a quarter-round
function called eight times per double round, a ten-iteration double-round
loop per block, per-block state initialisation/addition loops, and a stream
loop over the plaintext blocks.  All key and plaintext words are tagged
secret; the control flow depends only on the (public) plaintext length.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.primitives.chacha20 import chacha20_encrypt
from repro.crypto.programs.common import (
    KernelProgram,
    bytes_to_words_le,
    words_to_bytes_le,
)
from repro.isa.builder import ProgramBuilder

CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)

#: The eight quarter-round index patterns of one double round.
QUARTER_ROUNDS = (
    (0, 4, 8, 12),
    (1, 5, 9, 13),
    (2, 6, 10, 14),
    (3, 7, 11, 15),
    (0, 5, 10, 15),
    (1, 6, 11, 12),
    (2, 7, 8, 13),
    (3, 4, 9, 14),
)


def _emit_quarter_round_body(b: ProgramBuilder) -> None:
    """Body of the quarter-round function.

    Expects the registers ``qr_a``..``qr_d`` to hold the *addresses* of the
    four working-state words.
    """
    va, vb, vc, vd = "qr_va", "qr_vb", "qr_vc", "qr_vd"
    b.load(va, "qr_a")
    b.load(vb, "qr_b")
    b.load(vc, "qr_c")
    b.load(vd, "qr_d")

    def arx(x: str, y: str, z: str, rotation: int) -> None:
        b.add(x, x, y)
        b.mask32(x)
        b.xor(z, z, x)
        b.rotl(z, z, rotation)

    arx(va, vb, vd, 16)
    arx(vc, vd, vb, 12)
    arx(va, vb, vd, 8)
    arx(vc, vd, vb, 7)

    b.store(va, "qr_a")
    b.store(vb, "qr_b")
    b.store(vc, "qr_c")
    b.store(vd, "qr_d")


def build_chacha20(
    name: str = "ChaCha20_ct",
    suite: str = "bearssl",
    blocks: int = 2,
    counter: int = 1,
) -> KernelProgram:
    """Build a ChaCha20 encryption kernel over ``blocks`` 64-byte blocks."""
    b = ProgramBuilder(name)

    key_a = bytes(range(32))
    key_b = bytes((255 - i) & 0xFF for i in range(32))
    nonce = bytes([0, 0, 0, 9, 0, 0, 0, 0x4A, 0, 0, 0, 0])
    plaintext_a = bytes((i * 7 + 3) & 0xFF for i in range(64 * blocks))
    plaintext_b = bytes((i * 13 + 11) & 0xFF for i in range(64 * blocks))

    key_addr = b.alloc_secret("key", bytes_to_words_le(key_a))
    nonce_addr = b.alloc("nonce", bytes_to_words_le(nonce))
    const_addr = b.alloc("constants", list(CONSTANTS))
    pt_addr = b.alloc_secret("plaintext", bytes_to_words_le(plaintext_a))
    out_addr = b.alloc("ciphertext", 16 * blocks)
    state_addr = b.alloc("state", 16)
    work_addr = b.alloc("working", 16)

    with b.crypto():
        with b.function("quarter_round") as quarter_round:
            _emit_quarter_round_body(b)

        with b.function("chacha_block") as chacha_block:
            # Copy state into the working buffer.
            i = b.reg("blk_i")
            addr = b.reg("blk_addr")
            val = b.reg("blk_val")
            with b.for_range(i, 0, 16):
                b.movi(addr, state_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.movi(addr, work_addr)
                b.add(addr, addr, i)
                b.store(val, addr)
            # Ten double rounds.
            round_i = b.reg("blk_round")
            with b.for_range(round_i, 0, 10):
                for qa, qb, qc, qd in QUARTER_ROUNDS:
                    b.movi("qr_a", work_addr + qa)
                    b.movi("qr_b", work_addr + qb)
                    b.movi("qr_c", work_addr + qc)
                    b.movi("qr_d", work_addr + qd)
                    b.call(quarter_round)
            # Add the original state back into the working state.
            state_val = b.reg("blk_sv")
            with b.for_range(i, 0, 16):
                b.movi(addr, state_addr)
                b.add(addr, addr, i)
                b.load(state_val, addr)
                b.movi(addr, work_addr)
                b.add(addr, addr, i)
                b.load(val, addr)
                b.add(val, val, state_val)
                b.mask32(val)
                b.store(val, addr)

        # ------------------------- main ------------------------- #
        # Initialise the constant part of the state once.
        i = b.reg("main_i")
        addr = b.reg("main_addr")
        val = b.reg("main_val")
        with b.for_range(i, 0, 4):
            b.movi(addr, const_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, state_addr)
            b.add(addr, addr, i)
            b.store(val, addr)
        with b.for_range(i, 0, 8):
            b.movi(addr, key_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, state_addr + 4)
            b.add(addr, addr, i)
            b.store(val, addr)
        with b.for_range(i, 0, 3):
            b.movi(addr, nonce_addr)
            b.add(addr, addr, i)
            b.load(val, addr)
            b.movi(addr, state_addr + 13)
            b.add(addr, addr, i)
            b.store(val, addr)

        # Stream loop over the plaintext blocks.
        block_i = b.reg("stream_i")
        counter_reg = b.reg("counter")
        pt_word = b.reg("pt_word")
        ks_word = b.reg("ks_word")
        with b.for_range(block_i, 0, blocks):
            b.movi(counter_reg, counter)
            b.add(counter_reg, counter_reg, block_i)
            b.movi(addr, state_addr + 12)
            b.store(counter_reg, addr)
            b.call(chacha_block)
            # XOR the keystream with this plaintext block.
            word_i = b.reg("word_i")
            offset = b.reg("offset")
            with b.for_range(word_i, 0, 16):
                b.movi(offset, 16)
                b.mul(offset, offset, block_i)
                b.add(offset, offset, word_i)
                b.movi(addr, pt_addr)
                b.add(addr, addr, offset)
                b.load(pt_word, addr)
                b.movi(addr, work_addr)
                b.add(addr, addr, word_i)
                b.load(ks_word, addr)
                b.xor(pt_word, pt_word, ks_word)
                b.movi(addr, out_addr)
                b.add(addr, addr, offset)
                b.store(pt_word, addr)
        b.declassify(pt_word)
    b.halt()
    program = b.build()

    def overrides(key: bytes, plaintext: bytes) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for offset, word in enumerate(bytes_to_words_le(key)):
            mapping[key_addr + offset] = word
        for offset, word in enumerate(bytes_to_words_le(plaintext)):
            mapping[pt_addr + offset] = word
        return mapping

    expected = chacha20_encrypt(key_a, counter, nonce, plaintext_a)

    def verify(result) -> bool:
        produced_words = result.memory_words(out_addr, 16 * blocks)
        return words_to_bytes_le(produced_words)[: len(expected)] == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[overrides(key_a, plaintext_a), overrides(key_b, plaintext_b)],
        verify=verify,
        description=f"ChaCha20 encryption of {blocks} 64-byte blocks (RFC 8439)",
    )


def build_openssl_chacha20(blocks: int = 3) -> KernelProgram:
    """The OpenSSL-suite chacha20 workload (same kernel, larger buffer)."""
    return build_chacha20(name="chacha20", suite="openssl", blocks=blocks)
