"""Big-number kernels: ``ModPow_i31``, ``RSA_i62``, and ``mul``.

* ``ModPow_i31`` — square-and-multiply-always modular exponentiation over a
  31-bit modulus, processing a fixed (public) number of exponent bits with a
  constant-time select per bit.  Ground truth:
  :func:`repro.crypto.primitives.modmath.modpow_ct`.
* ``RSA_i62`` — a toy RSA private-key operation: one long exponentiation with
  a larger bit count (the dominant loop of an RSA decryption).
* ``mul`` — schoolbook big-number multiplication over 16-bit limbs with the
  classic doubly nested carry-propagating loop.  Ground truth:
  :func:`repro.crypto.primitives.modmath.bignum_mul`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.crypto.primitives import modmath
from repro.crypto.programs.common import KernelProgram
from repro.isa.builder import ProgramBuilder


def _exponent_words(exponent: int, bits: int) -> List[int]:
    """Split an exponent into little-endian 64-bit words covering ``bits``."""
    count = (bits + 63) // 64
    return [(exponent >> (64 * i)) & ((1 << 64) - 1) for i in range(count)]


def _build_modpow(name: str, suite: str, modulus: int, bits: int, base_a: int, base_b: int, exp_a: int, exp_b: int) -> KernelProgram:
    b = ProgramBuilder(name)
    exp_words_a = _exponent_words(exp_a, bits)
    exp_words_b = _exponent_words(exp_b, bits)
    base_addr = b.alloc_secret("base", [base_a])
    exp_addr = b.alloc_secret("exponent", exp_words_a)
    out_addr = b.alloc("result", 1)

    with b.crypto():
        base, exp_word, result, squared, multiplied, bit, bit_t = b.regs(
            "base", "exp_word", "result", "squared", "multiplied", "bit", "bit_t"
        )
        word_idx = b.reg("word_idx")
        addr = b.reg("addr")
        b.movi(addr, base_addr)
        b.load(base, addr)
        b.mod(base, base, modulus)
        b.movi(result, 1 % modulus)

        t = b.reg("t")
        with b.for_range(t, 0, bits):
            # squared = result^2 mod m ; multiplied = squared * base mod m.
            b.mul(squared, result, result)
            b.mod(squared, squared, modulus)
            b.mul(multiplied, squared, base)
            b.mod(multiplied, multiplied, modulus)
            # bit (bits - 1 - t) of the multi-word exponent, constant-time.
            b.movi(bit_t, bits - 1)
            b.sub(bit_t, bit_t, t)
            b.shr(word_idx, bit_t, 6)
            b.and_(bit_t, bit_t, 63)
            b.movi(addr, exp_addr)
            b.add(addr, addr, word_idx)
            b.load(exp_word, addr)
            b.shr(bit, exp_word, bit_t)
            b.and_(bit, bit, 1)
            b.csel(result, bit, multiplied, squared)
        b.declassify(result)
        b.movi(addr, out_addr)
        b.store(result, addr)
    b.halt()
    program = b.build()

    expected = modmath.modpow_ct(base_a, exp_a, modulus, bits)

    def overrides(base: int, exp_words: List[int]) -> Dict[int, int]:
        mapping = {base_addr: base}
        mapping.update({exp_addr + i: word for i, word in enumerate(exp_words)})
        return mapping

    def verify(result_) -> bool:
        return result_.state.read_mem(out_addr) == expected

    return KernelProgram(
        name=name,
        suite=suite,
        program=program,
        inputs=[overrides(base_a, exp_words_a), overrides(base_b, exp_words_b)],
        verify=verify,
        description=f"Square-and-multiply-always exponentiation, {bits} exponent bits",
    )


def build_modpow_i31(bits: int = 96) -> KernelProgram:
    """The BearSSL ``ModPow_i31`` workload."""
    modulus = (1 << 31) - 99  # a 31-bit odd modulus
    return _build_modpow(
        "ModPow_i31",
        "bearssl",
        modulus,
        bits,
        base_a=0x12345677,
        base_b=0x0FEDCBA9,
        exp_a=0xA5A5F0F0C3C3B4B4 & ((1 << bits) - 1),
        exp_b=0x123456789ABCDEF0 & ((1 << bits) - 1),
    )


def build_rsa_i62(bits: int = 192) -> KernelProgram:
    """The BearSSL ``RSA_i62`` workload (one long private exponentiation)."""
    # A 31-bit modulus keeps 64-bit register products exact; the workload's
    # distinguishing feature versus ModPow_i31 is the longer exponent loop.
    modulus = 0x7FFFFFC3
    return _build_modpow(
        "RSA_i62",
        "bearssl",
        modulus,
        bits,
        base_a=0x1122334455667788,
        base_b=0x99AABBCCDDEEFF00,
        exp_a=(0xDEADBEEFCAFEBABE1234567890ABCDEF1122334455667788 & ((1 << bits) - 1)) | 1,
        exp_b=(0x0F1E2D3C4B5A69788796A5B4C3D2E1F0FFEEDDCCBBAA9988 & ((1 << bits) - 1)) | 1,
    )


def build_mul(limbs: int = 16, limb_bits: int = 16) -> KernelProgram:
    """The BearSSL ``mul`` workload: schoolbook big-number multiplication."""
    b = ProgramBuilder("mul")
    mask = (1 << limb_bits) - 1
    value_a1 = 0x1234_5678_9ABC_DEF0_1122_3344_5566_7788_99AA_BBCC_DDEE_FF00_1357_9BDF_0246_8ACE
    value_a2 = 0xFEDC_BA98_7654_3210_0102_0304_0506_0708_090A_0B0C_0D0E_0F10_1112_1314_1516_1718
    value_b1 = 0x0F0E_0D0C_0B0A_0908_0706_0504_0302_0100_FFEE_DDCC_BBAA_9988_7766_5544_3322_1100
    value_b2 = 0xAAAA_BBBB_CCCC_DDDD_EEEE_FFFF_0000_1111_2222_3333_4444_5555_6666_7777_8888_9999

    a_limbs_1 = modmath.limbs_from_int(value_a1, limb_bits, limbs)
    b_limbs_1 = modmath.limbs_from_int(value_b1, limb_bits, limbs)
    a_limbs_2 = modmath.limbs_from_int(value_a2, limb_bits, limbs)
    b_limbs_2 = modmath.limbs_from_int(value_b2, limb_bits, limbs)

    a_addr = b.alloc_secret("a_limbs", a_limbs_1)
    b_addr = b.alloc_secret("b_limbs", b_limbs_1)
    out_addr = b.alloc("product", 2 * limbs)

    with b.crypto():
        i, j, addr = b.regs("i", "j", "addr")
        ai, bj, acc, carry, outv = b.regs("ai", "bj", "acc", "carry", "outv")
        with b.for_range(i, 0, limbs):
            b.movi(carry, 0)
            b.movi(addr, a_addr)
            b.add(addr, addr, i)
            b.load(ai, addr)
            with b.for_range(j, 0, limbs):
                b.movi(addr, b_addr)
                b.add(addr, addr, j)
                b.load(bj, addr)
                # acc = out[i+j] + ai*bj + carry
                b.movi(addr, out_addr)
                b.add(addr, addr, i)
                b.add(addr, addr, j)
                b.load(outv, addr)
                b.mul(acc, ai, bj)
                b.add(acc, acc, outv)
                b.add(acc, acc, carry)
                b.and_(outv, acc, mask)
                b.store(outv, addr)
                b.shr(carry, acc, limb_bits)
            # out[i + limbs] += carry
            b.movi(addr, out_addr + limbs)
            b.add(addr, addr, i)
            b.load(outv, addr)
            b.add(outv, outv, carry)
            b.store(outv, addr)
        b.declassify(outv)
    b.halt()
    program = b.build()

    expected = modmath.bignum_mul(a_limbs_1, b_limbs_1, limb_bits)

    def overrides(a_limbs: List[int], b_limbs: List[int]) -> Dict[int, int]:
        mapping = {a_addr + idx: limb for idx, limb in enumerate(a_limbs)}
        mapping.update({b_addr + idx: limb for idx, limb in enumerate(b_limbs)})
        return mapping

    def verify(result) -> bool:
        return result.memory_words(out_addr, 2 * limbs) == expected

    return KernelProgram(
        name="mul",
        suite="bearssl",
        program=program,
        inputs=[overrides(a_limbs_1, b_limbs_1), overrides(a_limbs_2, b_limbs_2)],
        verify=verify,
        description=f"Schoolbook multiplication of two {limbs}-limb big numbers",
    )
