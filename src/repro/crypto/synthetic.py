"""SpectreGuard-style synthetic benchmarks (Figure 8).

Each benchmark mixes a *sandboxed* (non-crypto) component with a *crypto*
component; the ``s/c`` label gives the approximate fraction of dynamic work
spent in each.  Two crypto components are provided, mirroring the paper's
choice of primitives:

* ``chacha20`` — an ARX keystream kernel whose secret state lives entirely in
  registers (the "public stack" case: ProSpeCT has almost nothing to delay);
* ``curve25519`` — a Montgomery-ladder kernel that spills secret intermediate
  field elements to a scratch (stack-like) buffer tagged secret, so loads of
  spilled values are tainted and ProSpeCT must delay them whenever older
  speculation is unresolved (the "secret stack" case).

The sandboxed component walks a public array with data-dependent branches,
providing the branch mispredictions and speculation windows under which the
defenses differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.crypto.programs.common import (
    KernelProgram,
    emit_mersenne_addmod,
    emit_mersenne_mulmod,
    emit_mersenne_submod,
)
from repro.isa.builder import ProgramBuilder

PRIME = (1 << 31) - 1
PRIME_BITS = 31

#: The mix points evaluated in Figure 8: (label, sandbox iterations, crypto iterations).
MIX_POINTS: Tuple[Tuple[str, int, int], ...] = (
    ("90s/10c", 36, 4),
    ("75s/25c", 30, 10),
    ("50s/50c", 20, 20),
    ("25s/75c", 10, 30),
    ("all-crypto", 0, 40),
)


def _emit_sandbox_phase(b: ProgramBuilder, data_addr: int, data_len: int, iterations: int) -> None:
    """Non-crypto phase: array walks with data-dependent branches."""
    if iterations == 0:
        return
    i, j, addr, val, acc, cond = b.regs("sb_i", "sb_j", "sb_addr", "sb_val", "sb_acc", "sb_cond")
    b.movi(acc, 0)
    with b.for_range(i, 0, iterations):
        with b.for_range(j, 0, data_len):
            b.movi(addr, data_addr)
            b.add(addr, addr, j)
            b.load(val, addr)
            # A value-dependent branch: hard to predict, creates speculation.
            b.and_(cond, val, 1)
            with b.if_then(cond):
                b.add(acc, acc, val)
                b.movi(addr, data_addr)
                b.add(addr, addr, j)
                b.store(acc, addr)
            b.xor(val, val, acc)
            b.add(acc, acc, 1)


def _emit_chacha_phase(b: ProgramBuilder, key_addr: int, out_addr: int, iterations: int) -> None:
    """Crypto phase A: ARX keystream rounds, secrets kept in registers."""
    s0, s1, s2, s3 = b.regs("cc_s0", "cc_s1", "cc_s2", "cc_s3")
    i, r, addr = b.regs("cc_i", "cc_r", "cc_addr")
    b.movi(addr, key_addr)
    b.load(s0, addr, 0)
    b.load(s1, addr, 1)
    b.load(s2, addr, 2)
    b.load(s3, addr, 3)
    with b.for_range(i, 0, iterations):
        with b.for_range(r, 0, 10):
            b.add(s0, s0, s1)
            b.mask32(s0)
            b.xor(s3, s3, s0)
            b.rotl(s3, s3, 16)
            b.add(s2, s2, s3)
            b.mask32(s2)
            b.xor(s1, s1, s2)
            b.rotl(s1, s1, 12)
        b.xor(s0, s0, i)
        b.declassify(s0)
        b.movi(addr, out_addr)
        b.add(addr, addr, i)
        b.store(s0, addr)


def _emit_curve_phase(
    b: ProgramBuilder, key_addr: int, stack_addr: int, out_addr: int, iterations: int
) -> None:
    """Crypto phase B: ladder steps with a *secret stack*.

    Mirrors curve25519-donna compiled with everything spilled: both the
    secret field elements and the (public) loop counter live in a scratch
    buffer that has to be annotated secret, so every reload is tainted.
    Under ProSpeCT those reloads may not execute speculatively, and because
    the loop condition itself is computed from a reloaded value, each
    iteration's control flow waits on the previous iteration's gated loads —
    the compounding slowdown the paper observes for complex primitives.
    """
    x2, z2, x3, z3, t1, t2, addr, k = b.regs(
        "cv_x2", "cv_z2", "cv_x3", "cv_z3", "cv_t1", "cv_t2", "cv_addr", "cv_k"
    )
    counter, cond = b.regs("cv_counter", "cv_cond")
    lanes = [b.reg(f"cv_lane{i}") for i in range(4)]
    b.movi(addr, key_addr)
    b.load(k, addr)
    for index, lane in enumerate(lanes):
        b.add(lane, k, index + 1)
    b.movi(counter, 0)
    b.movi(cond, 1)
    with b.while_loop(cond):
        # Spill the working lanes and the loop counter to the secret stack,
        # then reload them — every reload is tainted by the secret-stack
        # annotation even though some of the values (the counter) are public.
        b.movi(addr, stack_addr)
        for index, lane in enumerate(lanes):
            b.store(lane, addr, index)
        b.store(counter, addr, 4)
        # Four independent ladder-style lane updates: an out-of-order baseline
        # overlaps them across iterations, which is exactly the parallelism
        # ProSpeCT forfeits when every reload must wait to be non-speculative.
        for index, lane in enumerate(lanes):
            b.load(t1, addr, index)
            emit_mersenne_addmod(b, t1, t1, k, PRIME, f"cva{index}")
            emit_mersenne_mulmod(b, t1, t1, t1, PRIME, PRIME_BITS, f"cvm{index}")
            b.mov(lane, t1)
        # The loop control is recomputed from the spilled (tainted) counter.
        b.load(counter, addr, 4)
        b.add(counter, counter, 1)
        b.cmplt(cond, counter, iterations)
    x_out = lanes[0]
    b.declassify(x_out)
    b.movi(addr, out_addr)
    b.store(x_out, addr)


def build_synthetic(primitive: str, mix_label: str) -> KernelProgram:
    """Build one synthetic benchmark point.

    Parameters
    ----------
    primitive:
        ``"chacha20"`` (secrets stay in registers) or ``"curve25519"``
        (secret stack spills).
    mix_label:
        One of the labels in :data:`MIX_POINTS`.
    """
    mix = {label: (sandbox, crypto) for label, sandbox, crypto in MIX_POINTS}
    if mix_label not in mix:
        raise KeyError(f"unknown mix {mix_label!r}; choose from {sorted(mix)}")
    if primitive not in ("chacha20", "curve25519"):
        raise ValueError("primitive must be 'chacha20' or 'curve25519'")
    sandbox_iters, crypto_iters = mix[mix_label]

    b = ProgramBuilder(f"synthetic-{primitive}-{mix_label}")
    data_len = 32
    data_a = [(i * 37 + 11) & 0xFF for i in range(data_len)]
    data_b = [(i * 53 + 29) & 0xFF for i in range(data_len)]
    key_a = [0x1234ABCD, 0x55AA55AA, 0x0BADBEEF, 0x13579BDF]
    key_b = [0x0F0F0F0F, 0x12344321, 0x77665544, 0x01020304]

    data_addr = b.alloc("sandbox_data", data_a)
    key_addr = b.alloc_secret("crypto_key", key_a)
    stack_addr = b.alloc_secret("crypto_stack", 8) if primitive == "curve25519" else b.alloc("scratch", 8)
    out_addr = b.alloc("output", max(crypto_iters, 1))

    # The SpectreGuard benchmark interleaves sandboxed and crypto work: each
    # outer iteration runs a chunk of each, so crypto instructions execute
    # under the speculation windows the sandbox branches open.
    phases = 4
    sandbox_per_phase = max(sandbox_iters // phases, 1) if sandbox_iters else 0
    crypto_per_phase = max(crypto_iters // phases, 1)
    outer = b.reg("phase")
    with b.for_range(outer, 0, phases):
        _emit_sandbox_phase(b, data_addr, data_len, sandbox_per_phase)
        with b.crypto():
            if primitive == "chacha20":
                _emit_chacha_phase(b, key_addr, out_addr, crypto_per_phase)
            else:
                _emit_curve_phase(b, key_addr, stack_addr, out_addr, crypto_per_phase)
    b.halt()
    program = b.build()

    def overrides(data: List[int], key: List[int]) -> Dict[int, int]:
        mapping = {data_addr + i: v for i, v in enumerate(data)}
        mapping.update({key_addr + i: v for i, v in enumerate(key)})
        return mapping

    def verify(result) -> bool:
        # The synthetic benchmarks are timing workloads; correctness here
        # just means the program ran to completion and produced output.
        return result.instruction_count > 0

    return KernelProgram(
        name=program.name,
        suite="synthetic",
        program=program,
        inputs=[overrides(data_a, key_a), overrides(data_b, key_b)],
        verify=verify,
        description=f"SpectreGuard-style mix {mix_label} with a {primitive} crypto phase",
    )


def mix_labels() -> List[str]:
    """The Figure 8 x-axis labels, in order."""
    return [label for label, _s, _c in MIX_POINTS]
