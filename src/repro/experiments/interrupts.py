"""Section 8, Q4: the effect of flushing the BTU at timer-interrupt frequency."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import (
    WorkloadArtifacts,
    format_table,
    geometric_mean,
    prepare_workloads,
)

#: Cycles between BTU flushes.  The paper flushes at 250 Hz on a GHz-class
#: core (millions of cycles); our workloads are far shorter, so the default
#: interval is scaled down to still exercise several flushes per run.
DEFAULT_FLUSH_INTERVAL = 2_000


def run_interrupt_study(
    names: Optional[Sequence[str]] = None,
    artifacts: Optional[Sequence[WorkloadArtifacts]] = None,
    flush_interval: int = DEFAULT_FLUSH_INTERVAL,
) -> List[Dict[str, object]]:
    """Cassandra vs Cassandra with periodic BTU flushes, normalized to baseline."""
    artifacts = list(artifacts) if artifacts is not None else prepare_workloads(names)
    rows: List[Dict[str, object]] = []
    for artifact in artifacts:
        baseline = artifact.simulate("unsafe-baseline").cycles
        cassandra = artifact.simulate("cassandra").cycles
        flushed = artifact.simulate("cassandra", btu_flush_interval=flush_interval).cycles
        rows.append(
            {
                "workload": artifact.name,
                "cassandra": cassandra / baseline,
                "cassandra+flush": flushed / baseline,
                "flush_penalty_pct": (flushed / cassandra - 1.0) * 100.0,
            }
        )
    rows.append(
        {
            "workload": "geomean",
            "cassandra": geometric_mean(float(r["cassandra"]) for r in rows),
            "cassandra+flush": geometric_mean(float(r["cassandra+flush"]) for r in rows),
            "flush_penalty_pct": "",
        }
    )
    return rows


def format_interrupt_study(rows: Sequence[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", "cassandra", "cassandra+flush", "flush_penalty_pct"])


register_experiment(
    ExperimentSpec(
        name="interrupts",
        title="Section 8 Q4: BTU flush at timer-interrupt frequency",
        run=run_interrupt_study,
        format=format_interrupt_study,
        designs=("unsafe-baseline", "cassandra"),
        flush_points=(("cassandra", DEFAULT_FLUSH_INTERVAL),),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_interrupt_study(run_interrupt_study()))
