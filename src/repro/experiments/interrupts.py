"""Section 8, Q4: the effect of flushing the BTU at timer-interrupt frequency."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table, geometric_mean

#: Cycles between BTU flushes.  The paper flushes at 250 Hz on a GHz-class
#: core (millions of cycles); our workloads are far shorter, so the default
#: interval is scaled down to still exercise several flushes per run.
DEFAULT_FLUSH_INTERVAL = 2_000


def interrupts_matrix(flush_interval: int = DEFAULT_FLUSH_INTERVAL) -> ScenarioMatrix:
    """Baseline + Cassandra, with the flush axis applied to Cassandra only.

    The flushed point is an axis override (a flat cross-product would also
    flush the baseline, which the study never simulates).
    """
    return ScenarioMatrix(designs=("unsafe-baseline", "cassandra")).extended(
        ScenarioMatrix(designs=("cassandra",), flush_intervals=(flush_interval,))
    )


def run_interrupt_study(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
    flush_interval: int = DEFAULT_FLUSH_INTERVAL,
) -> List[Dict[str, object]]:
    """Cassandra vs Cassandra with periodic BTU flushes, normalized to baseline."""
    ctx = default_context(ctx, names=names)
    results = ctx.run(interrupts_matrix(flush_interval))
    rows: List[Dict[str, object]] = []
    for workload, group in results.group_by("workload").items():
        baseline = group.cycles(design="unsafe-baseline")
        cassandra = group.cycles(design="cassandra", btu_flush_interval=None)
        flushed = group.cycles(design="cassandra", btu_flush_interval=flush_interval)
        rows.append(
            {
                "workload": workload,
                "cassandra": cassandra / baseline,
                "cassandra+flush": flushed / baseline,
                "flush_penalty_pct": (flushed / cassandra - 1.0) * 100.0,
            }
        )
    rows.append(
        {
            "workload": "geomean",
            "cassandra": geometric_mean(float(r["cassandra"]) for r in rows),
            "cassandra+flush": geometric_mean(float(r["cassandra+flush"]) for r in rows),
            "flush_penalty_pct": "",
        }
    )
    return rows


def format_interrupt_study(rows: Sequence[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", "cassandra", "cassandra+flush", "flush_penalty_pct"])


register_experiment(
    ExperimentSpec(
        name="interrupts",
        title="Section 8 Q4: BTU flush at timer-interrupt frequency",
        run=run_interrupt_study,
        format=format_interrupt_study,
        matrix=interrupts_matrix(),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_interrupt_study(run_interrupt_study()))
