"""Experiment harnesses regenerating every table and figure of the paper.

Each module declares its simulation points as a
:class:`~repro.api.matrix.ScenarioMatrix`, exposes a ``run_*`` function
taking the uniform :class:`~repro.api.service.ExperimentContext` (built on
demand when omitted) and returning plain data structures, and a
``format_*`` helper producing the printed table; the benchmarks under
``benchmarks/`` and the examples under ``examples/`` drive these functions
through a shared :class:`~repro.api.service.SimulationService`.

| Paper artefact | Module |
| -------------- | ------ |
| Table 1 (branch analysis / compression) | :mod:`repro.experiments.table1` |
| Table 2 (security scenarios)            | :mod:`repro.experiments.table2` |
| Figure 7 (performance vs defenses)      | :mod:`repro.experiments.figure7` |
| Figure 8 (ProSpeCT synthetic mixes)     | :mod:`repro.experiments.figure8` |
| Figure 9 (power / area)                 | :mod:`repro.experiments.figure9` |
| Section 7.5 (trace-generation runtime)  | :mod:`repro.experiments.trace_runtime` |
| Section 8 Q3 (Cassandra-lite)           | :mod:`repro.experiments.cassandra_lite` |
| Section 8 Q4 (BTU flush on interrupts)  | :mod:`repro.experiments.interrupts` |
| CoreConfig design-space sweep (extra)   | :mod:`repro.experiments.sweep` |
"""

from repro.experiments.runner import WorkloadArtifacts, prepare_workloads, DESIGN_BUILDERS
from repro.experiments.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    resolve_experiments,
)

# Importing the experiment modules populates EXPERIMENT_REGISTRY in paper
# artefact order (tables, figures, then the Section 7/8 studies).
from repro.experiments import table1  # noqa: E402,F401
from repro.experiments import table2  # noqa: E402,F401
from repro.experiments import figure7  # noqa: E402,F401
from repro.experiments import figure8  # noqa: E402,F401
from repro.experiments import figure9  # noqa: E402,F401
from repro.experiments import trace_runtime  # noqa: E402,F401
from repro.experiments import cassandra_lite  # noqa: E402,F401
from repro.experiments import interrupts  # noqa: E402,F401
from repro.experiments import sweep  # noqa: E402,F401

__all__ = [
    "WorkloadArtifacts",
    "prepare_workloads",
    "DESIGN_BUILDERS",
    "EXPERIMENT_REGISTRY",
    "ExperimentSpec",
    "experiment_names",
    "get_experiment",
    "resolve_experiments",
]
