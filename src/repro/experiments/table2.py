"""Table 2: the eight control-flow security scenarios."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from dataclasses import asdict

from repro.attacks.gadgets import ScenarioResult, evaluate_scenarios
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table


def run_table2(ctx: Optional[object] = None) -> List[ScenarioResult]:
    """Evaluate every scenario under the unsafe and Cassandra semantics.

    A pure semantics study: the uniform context is accepted (the CLI passes
    one to every experiment) but unused — no artifacts, no simulations.
    """
    return evaluate_scenarios()


def format_table2(results: Sequence[ScenarioResult]) -> str:
    rows: List[Dict[str, object]] = [
        {
            "scenario": result.scenario,
            "transition": result.transition,
            "leaks_unsafe": result.leaks_unsafe,
            "leaks_cassandra": result.leaks_cassandra,
            "mechanism": result.expected_mechanism,
        }
        for result in results
    ]
    return format_table(rows, ["scenario", "transition", "leaks_unsafe", "leaks_cassandra", "mechanism"])


register_experiment(
    ExperimentSpec(
        name="table2",
        title="Table 2: the eight control-flow security scenarios",
        run=run_table2,
        format=format_table2,
        needs_artifacts=False,
        jsonify=lambda results: [asdict(result) for result in results],
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_table2(run_table2()))
