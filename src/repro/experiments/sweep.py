"""Design-space sweep over ``CoreConfig`` (ROB size, widths, BTU sizing).

The ROADMAP's open item: now that the simulation cache is config-aware and
the engine batches points over one shared lowering, sweeping the core
configuration is cheap — each workload lowers once, and every
(config × design) point reuses it.  The sweep reports Cassandra's execution
time normalized to the unsafe baseline *of the same configuration*, so it
answers the paper-adjacent question "does Cassandra's advantage survive on
smaller cores and smaller BTUs?".

The whole sweep is one :class:`~repro.api.matrix.ScenarioMatrix` with a
populated config axis — the CLI prefetches it through the service backend
like every other experiment's points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.matrix import ScenarioMatrix
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table
from repro.uarch.config import GOLDEN_COVE_LIKE, BtuConfig, CacheConfig, CoreConfig

#: Designs compared at every configuration point.
SWEEP_DESIGNS = ("unsafe-baseline", "cassandra")

#: The swept configurations, label -> CoreConfig.  ``golden-cove`` is the
#: paper's Table 3 machine; the rest shrink one axis at a time: ROB depth,
#: machine width, BTU sizing, cache geometry (a half-size direct-er-mapped
#: L1D and a slimmer L2), and predictor sizing (PHT/history bits and
#: BTB/RSB entries).
SWEEP_CONFIGS: Tuple[Tuple[str, CoreConfig], ...] = (
    ("golden-cove", GOLDEN_COVE_LIKE),
    ("rob-256", CoreConfig(rob_size=256)),
    ("rob-128", CoreConfig(rob_size=128)),
    (
        "width-4",
        CoreConfig(fetch_width=4, decode_width=4, issue_width=4, commit_width=4),
    ),
    ("btu-8", CoreConfig(btu=BtuConfig(entries=8))),
    ("btu-4x8", CoreConfig(btu=BtuConfig(entries=4, elements_per_entry=8))),
    # Cache-geometry axis: a 32 KB / 8-way L1D (more conflict pressure on
    # the same 64 sets) and a 512 KB / 8-way L2 with a faster hit.
    ("l1d-32k-8w", CoreConfig(l1d=CacheConfig(32 * 1024, 64, 8, 5, name="L1D"))),
    ("l2-512k", CoreConfig(l2=CacheConfig(512 * 1024, 64, 8, 12, name="L2"))),
    # Predictor-sizing axis: a 1K-entry PHT with matching short history,
    # and a small BTB/RSB (indirect and return pressure).
    ("pht-10b", CoreConfig(pht_bits=10, global_history_bits=10)),
    ("btb-512", CoreConfig(btb_entries=512, rsb_entries=8)),
)


def sweep_matrix(
    configs: Sequence[Tuple[str, CoreConfig]] = SWEEP_CONFIGS,
    designs: Sequence[str] = SWEEP_DESIGNS,
) -> ScenarioMatrix:
    return ScenarioMatrix(
        designs=tuple(designs),
        configs=tuple(config for _label, config in configs),
    )


def run_sweep(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
    configs: Sequence[Tuple[str, CoreConfig]] = SWEEP_CONFIGS,
    designs: Sequence[str] = SWEEP_DESIGNS,
) -> List[Dict[str, object]]:
    """Per-config geomean cycles and Cassandra-vs-baseline normalized time."""
    ctx = default_context(ctx, names=names)
    results = ctx.run(sweep_matrix(configs, designs))
    rows: List[Dict[str, object]] = []
    for label, config in configs:
        scoped = results.where(config=config)
        row: Dict[str, object] = {
            "config": label,
            "rob": config.rob_size,
            "width": config.issue_width,
            "btu": f"{config.btu.entries}x{config.btu.elements_per_entry}",
        }
        for design in designs:
            row[f"{design}_cycles"] = scoped.geomean_cycles(design=design)
        baseline = float(row[f"{designs[0]}_cycles"])
        for design in designs[1:]:
            row[f"{design}_norm"] = (
                float(row[f"{design}_cycles"]) / baseline if baseline else 0.0
            )
        rows.append(row)
    return rows


def format_sweep(rows: Sequence[Dict[str, object]]) -> str:
    columns = [
        "config",
        "rob",
        "width",
        "btu",
        *(f"{design}_cycles" for design in SWEEP_DESIGNS),
        *(f"{design}_norm" for design in SWEEP_DESIGNS[1:]),
    ]
    return format_table(rows, columns)


register_experiment(
    ExperimentSpec(
        name="sweep",
        title="Design-space sweep: CoreConfig (ROB / width / BTU) x Cassandra",
        run=run_sweep,
        format=format_sweep,
        matrix=sweep_matrix(),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_sweep(run_sweep()))
