"""Figure 9: power and area of Cassandra relative to the unsafe baseline."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table
from repro.power.model import PowerAreaModel

FIGURE9_DESIGNS = ("unsafe-baseline", "cassandra")


def figure9_matrix() -> ScenarioMatrix:
    return ScenarioMatrix(designs=FIGURE9_DESIGNS)


def run_figure9(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Aggregate per-unit power (averaged over workloads) and area."""
    ctx = default_context(ctx, names=names)
    results = ctx.run(figure9_matrix())
    model = PowerAreaModel()

    unit_names = [
        "instruction_fetch_unit",
        "renaming_unit",
        "load_store_unit",
        "execution_unit",
        "branch_trace_unit",
    ]
    power_sums = {
        "unsafe-baseline": {unit: 0.0 for unit in unit_names},
        "cassandra": {unit: 0.0 for unit in unit_names},
    }
    totals = {"unsafe-baseline": 0.0, "cassandra": 0.0}

    groups = results.group_by("workload")
    for group in groups.values():
        baseline_power = model.power(group.one(design="unsafe-baseline").stats, with_btu=False)
        cassandra_power = model.power(group.one(design="cassandra").stats, with_btu=True)
        for unit in unit_names:
            power_sums["unsafe-baseline"][unit] += baseline_power.per_unit.get(unit, 0.0)
            power_sums["cassandra"][unit] += cassandra_power.per_unit.get(unit, 0.0)
        totals["unsafe-baseline"] += baseline_power.total
        totals["cassandra"] += cassandra_power.total

    count = max(len(groups), 1)
    baseline_total = totals["unsafe-baseline"] / count

    report: Dict[str, Dict[str, float]] = {}
    for design in ("unsafe-baseline", "cassandra"):
        per_unit = {
            unit: (power_sums[design][unit] / count) / baseline_total for unit in unit_names
        }
        per_unit["total"] = (totals[design] / count) / baseline_total
        report[f"power:{design}"] = per_unit

    baseline_area = model.area(with_btu=False)
    cassandra_area = model.area(with_btu=True)
    report["area:unsafe-baseline"] = baseline_area.normalized_to(baseline_area)
    report["area:cassandra"] = cassandra_area.normalized_to(baseline_area)
    return report


def format_figure9(report: Dict[str, Dict[str, float]]) -> str:
    rows: List[Dict[str, object]] = []
    for key, units in report.items():
        row: Dict[str, object] = {"metric": key}
        row.update(units)
        rows.append(row)
    columns = [
        "metric",
        "instruction_fetch_unit",
        "renaming_unit",
        "load_store_unit",
        "execution_unit",
        "branch_trace_unit",
        "total",
    ]
    return format_table(rows, columns)


def power_reduction_percent(report: Dict[str, Dict[str, float]]) -> float:
    """Cassandra's total power reduction vs the baseline (the paper: 2.73%)."""
    return (1.0 - report["power:cassandra"]["total"]) * 100.0


def btu_area_percent(report: Dict[str, Dict[str, float]]) -> float:
    """The BTU's area overhead (the paper: 1.26%)."""
    return report["area:cassandra"]["branch_trace_unit"] * 100.0


register_experiment(
    ExperimentSpec(
        name="figure9",
        title="Figure 9: power and area of Cassandra vs the unsafe baseline",
        run=run_figure9,
        format=format_figure9,
        matrix=figure9_matrix(),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    data = run_figure9()
    print(format_figure9(data))
    print(f"\nPower reduction: {power_reduction_percent(data):.2f}%")
    print(f"BTU area overhead: {btu_area_percent(data):.2f}%")
