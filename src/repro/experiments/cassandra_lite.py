"""Section 8, Q3: Cassandra-lite versus full Cassandra."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table, geometric_mean

CASSANDRA_LITE_DESIGNS = ("unsafe-baseline", "cassandra", "cassandra-lite")


def cassandra_lite_matrix() -> ScenarioMatrix:
    return ScenarioMatrix(designs=CASSANDRA_LITE_DESIGNS)


def run_cassandra_lite(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Per-workload slowdown of Cassandra-lite over full Cassandra, plus the
    per-suite geomean slowdowns the paper quotes (BearSSL / OpenSSL / PQC)."""
    ctx = default_context(ctx, names=names)
    results = ctx.run(cassandra_lite_matrix())
    rows: List[Dict[str, object]] = []
    per_suite: Dict[str, List[float]] = {}
    for workload, group in results.group_by("workload").items():
        baseline = group.cycles(design="unsafe-baseline")
        cassandra = group.cycles(design="cassandra")
        lite = group.cycles(design="cassandra-lite")
        ratio = lite / cassandra
        suite = ctx.artifact(workload).suite
        per_suite.setdefault(suite, []).append(ratio)
        rows.append(
            {
                "workload": workload,
                "suite": suite,
                "cassandra": cassandra / baseline,
                "cassandra-lite": lite / baseline,
                "lite_over_cassandra": ratio,
            }
        )
    for suite, ratios in sorted(per_suite.items()):
        rows.append(
            {
                "workload": f"geomean-{suite}",
                "suite": suite,
                "cassandra": "",
                "cassandra-lite": "",
                "lite_over_cassandra": geometric_mean(ratios),
            }
        )
    return rows


def format_cassandra_lite(rows: Sequence[Dict[str, object]]) -> str:
    return format_table(
        rows, ["workload", "suite", "cassandra", "cassandra-lite", "lite_over_cassandra"]
    )


register_experiment(
    ExperimentSpec(
        name="cassandra-lite",
        title="Section 8 Q3: Cassandra-lite versus full Cassandra",
        run=run_cassandra_lite,
        format=format_cassandra_lite,
        matrix=cassandra_lite_matrix(),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_cassandra_lite(run_cassandra_lite()))
