"""Section 8, Q3: Cassandra-lite versus full Cassandra."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import (
    WorkloadArtifacts,
    format_table,
    geometric_mean,
    prepare_workloads,
)


def run_cassandra_lite(
    names: Optional[Sequence[str]] = None,
    artifacts: Optional[Sequence[WorkloadArtifacts]] = None,
) -> List[Dict[str, object]]:
    """Per-workload slowdown of Cassandra-lite over full Cassandra, plus the
    per-suite geomean slowdowns the paper quotes (BearSSL / OpenSSL / PQC)."""
    artifacts = list(artifacts) if artifacts is not None else prepare_workloads(names)
    rows: List[Dict[str, object]] = []
    per_suite: Dict[str, List[float]] = {}
    for artifact in artifacts:
        cassandra = artifact.simulate("cassandra").cycles
        lite = artifact.simulate("cassandra-lite").cycles
        baseline = artifact.simulate("unsafe-baseline").cycles
        ratio = lite / cassandra
        per_suite.setdefault(artifact.suite, []).append(ratio)
        rows.append(
            {
                "workload": artifact.name,
                "suite": artifact.suite,
                "cassandra": cassandra / baseline,
                "cassandra-lite": lite / baseline,
                "lite_over_cassandra": ratio,
            }
        )
    for suite, ratios in sorted(per_suite.items()):
        rows.append(
            {
                "workload": f"geomean-{suite}",
                "suite": suite,
                "cassandra": "",
                "cassandra-lite": "",
                "lite_over_cassandra": geometric_mean(ratios),
            }
        )
    return rows


def format_cassandra_lite(rows: Sequence[Dict[str, object]]) -> str:
    return format_table(
        rows, ["workload", "suite", "cassandra", "cassandra-lite", "lite_over_cassandra"]
    )


register_experiment(
    ExperimentSpec(
        name="cassandra-lite",
        title="Section 8 Q3: Cassandra-lite versus full Cassandra",
        run=run_cassandra_lite,
        format=format_cassandra_lite,
        designs=("unsafe-baseline", "cassandra", "cassandra-lite"),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_cassandra_lite(run_cassandra_lite()))
