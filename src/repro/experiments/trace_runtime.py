"""Section 7.5: runtime of the upfront trace-generation procedure."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table


def run_trace_runtime(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Per-workload wall-clock time of each step of Algorithm 2."""
    ctx = default_context(ctx, names=names)
    rows: List[Dict[str, object]] = []
    for artifact in ctx.artifacts():
        timings = artifact.bundle.timings.as_dict()
        row: Dict[str, object] = {"workload": artifact.name}
        row.update({step: round(seconds, 4) for step, seconds in timings.items()})
        row["branches"] = len(artifact.bundle.branches)
        rows.append(row)
    return rows


def format_trace_runtime(rows: Sequence[Dict[str, object]]) -> str:
    columns = [
        "workload",
        "branches",
        "A_detect_static_branches",
        "B_collect_raw_traces",
        "C_vanilla_traces",
        "D_dna_encoding",
        "E_kmers_compression",
    ]
    return format_table(rows, columns)


register_experiment(
    ExperimentSpec(
        name="trace-runtime",
        title="Section 7.5: runtime of the trace-generation procedure",
        run=run_trace_runtime,
        format=format_trace_runtime,
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_trace_runtime(run_trace_runtime()))
