"""Shared experiment infrastructure: build, trace, and simulate workloads.

Artifact preparation (build + sequential execution + Algorithm 2 tracing) and
timing simulation both memoize their results.  The simulation cache key covers
*every* argument that changes the outcome — design, core configuration, BTU
flush interval, and warmup passes — so sweeping a parameter never returns a
stale result from an earlier point.  Preparation can additionally be backed by
the on-disk content-addressed cache and the multiprocessing fan-out of
:mod:`repro.pipeline`, which all experiments, benchmarks, and tests share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import BranchAnalysisStats, stats_from_bundle
from repro.analysis.tracegen import TraceBundle, TraceParameters, generate_trace_bundle
from repro.arch.executor import ExecutionResult
from repro.crypto.programs.common import KernelProgram
from repro.crypto.workloads import get_workload, workload_names
from repro.engine.batch import BatchStats, PointSpec, simulate_batch
from repro.engine.lowering import LOWERING_FORMAT_VERSION, LoweredTrace, lower_execution
from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE
from repro.uarch.core import SimulationResult
from repro.uarch.defenses import (
    CassandraLitePolicy,
    CassandraPolicy,
    CassandraProspectPolicy,
    DefensePolicy,
    ProspectPolicy,
    SptPolicy,
    UnsafeBaseline,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.pipeline.artifacts import ArtifactCache

#: A small representative subset used by the quick benchmarks and tests.
QUICK_WORKLOADS: List[str] = [
    "ChaCha20_ct",
    "SHA-256",
    "Poly1305_ctmul",
    "EC_c25519_i31",
    "ModPow_i31",
    "sphincs-sha2-128s",
]

#: Design-point factories; Cassandra-family policies need the trace bundle.
DESIGN_BUILDERS: Dict[str, Callable[[Optional[TraceBundle]], DefensePolicy]] = {
    "unsafe-baseline": lambda bundle: UnsafeBaseline(),
    "cassandra": lambda bundle: CassandraPolicy(bundle),
    "cassandra+stl": lambda bundle: CassandraPolicy(bundle, protect_stl=True),
    "cassandra-lite": lambda bundle: CassandraLitePolicy(bundle),
    "spt": lambda bundle: SptPolicy(),
    "prospect": lambda bundle: ProspectPolicy(),
    "cassandra+prospect": lambda bundle: CassandraProspectPolicy(bundle),
}

#: A simulation-cache key: (design, config identity, flush interval, warmups).
SimulationKey = Tuple[str, tuple, Optional[int], int]


def simulation_key(
    design: str,
    config: CoreConfig = GOLDEN_COVE_LIKE,
    btu_flush_interval: Optional[int] = None,
    warmup_passes: int = 1,
) -> SimulationKey:
    """The memoization key for one simulation point.

    Every argument that affects the timing result participates: the historic
    key of (design, flush interval) alone silently returned the first
    config's result for every subsequent config in a sweep.
    """
    return (design, config.identity(), btu_flush_interval, warmup_passes)


@dataclass(frozen=True)
class DesignPoint:
    """One simulation point of a workload batch (no workload attached)."""

    design: str
    config: CoreConfig = GOLDEN_COVE_LIKE
    btu_flush_interval: Optional[int] = None
    warmup_passes: int = 1

    def key(self) -> SimulationKey:
        return simulation_key(
            self.design, self.config, self.btu_flush_interval, self.warmup_passes
        )


@dataclass
class WorkloadArtifacts:
    """Everything derived once per workload and shared across design points."""

    name: str
    suite: str
    kernel: KernelProgram
    result: ExecutionResult
    bundle: TraceBundle
    analysis: BranchAnalysisStats
    simulations: Dict[SimulationKey, SimulationResult] = field(default_factory=dict)
    #: Optional disk cache + the workload's content digest; when both are set,
    #: simulation results (small, deterministic) also persist across processes.
    cache: Optional["ArtifactCache"] = field(default=None, repr=False)
    content_digest: Optional[str] = field(default=None, repr=False)

    def simulate(
        self,
        design: str,
        config: CoreConfig = GOLDEN_COVE_LIKE,
        btu_flush_interval: Optional[int] = None,
        warmup_passes: int = 1,
    ) -> SimulationResult:
        """Simulate one design point (memoized on the full argument set)."""
        point = DesignPoint(design, config, btu_flush_interval, warmup_passes)
        return self.simulate_batch([point])[point.key()]

    def _simulation_digest(self, key: SimulationKey) -> Optional[str]:
        """The disk-cache digest of one simulation point (None when uncached)."""
        if self.cache is None or self.content_digest is None:
            return None
        from repro.pipeline.hashing import stable_digest

        return stable_digest(self.content_digest, key)

    def cached_simulation(self, key: SimulationKey) -> Optional[SimulationResult]:
        """A memoized or disk-cached result for ``key``, or ``None``.

        Disk hits are seeded into the in-memory memo.  Execution backends
        that cannot reach the artifact cache from their workers (the
        subprocess shard backend) use this to resolve hits in the parent
        before shipping the remaining points over the wire.
        """
        memoized = self.simulations.get(key)
        if memoized is not None:
            return memoized
        digest = self._simulation_digest(key)
        if digest is not None:
            cached = self.cache.get("simulation", self.name, digest)
            if cached is not None:
                self.simulations[key] = cached
                return cached
        return None

    def persist_simulation(self, key: SimulationKey, result: SimulationResult) -> None:
        """Seed the memo *and* the disk cache with an external result.

        The counterpart of :meth:`store_simulation` for backends whose
        workers computed the result outside this process's cache handle.
        """
        self.simulations[key] = result
        digest = self._simulation_digest(key)
        if digest is not None:
            self.cache.put("simulation", self.name, digest, result)

    def lowered_trace(self) -> LoweredTrace:
        """The workload's columnar timing trace (computed once, disk-cached).

        The lowering is policy- and config-independent, so it is keyed only
        on the workload content digest plus the lowering format version.
        """
        cached = getattr(self.result, "_lowered_trace", None)
        if cached is not None:
            return cached
        if self.cache is not None and self.content_digest is not None:
            from repro.pipeline.hashing import stable_digest

            digest = stable_digest(
                self.content_digest, ("lowered-trace", LOWERING_FORMAT_VERSION)
            )
            payload = self.cache.get("lowered-trace", self.name, digest)
            if payload is not None:
                self.result._lowered_trace = payload  # type: ignore[attr-defined]
                return payload
            trace = lower_execution(self.result)
            self.cache.put("lowered-trace", self.name, digest, trace)
            return trace
        return lower_execution(self.result)

    def simulate_batch(
        self,
        points: Sequence[DesignPoint],
        batch_stats: Optional[BatchStats] = None,
    ) -> Dict[SimulationKey, SimulationResult]:
        """Simulate many design points over one shared lowering and warm state.

        Points already in the memo (or the disk cache) are returned without
        re-simulation; the remainder run through
        :func:`repro.engine.batch.simulate_batch`, which shares the columnar
        trace, the per-workload setup, and the warm-up component snapshots
        across every missing point.  Results are bit-identical to calling
        :meth:`simulate` per point.
        """
        results: Dict[SimulationKey, SimulationResult] = {}
        pending: List[DesignPoint] = []
        pending_digests: Dict[SimulationKey, Optional[str]] = {}
        for point in points:
            cache_key = point.key()
            if cache_key in results or cache_key in pending_digests:
                continue
            memoized = self.simulations.get(cache_key)
            if memoized is not None:
                results[cache_key] = memoized
                continue
            sim_digest = self._simulation_digest(cache_key)
            if sim_digest is not None:
                cached = self.cache.get("simulation", self.name, sim_digest)
                if cached is not None:
                    self.simulations[cache_key] = cached
                    results[cache_key] = cached
                    continue
            pending.append(point)
            pending_digests[cache_key] = sim_digest

        if pending:
            specs = [
                PointSpec(
                    policy=DESIGN_BUILDERS[point.design](self.bundle),
                    config=point.config,
                    btu_flush_interval=point.btu_flush_interval,
                    warmup_passes=point.warmup_passes,
                )
                for point in pending
            ]
            simulations = simulate_batch(
                self.result,
                self.bundle,
                specs,
                trace=self.lowered_trace(),
                program_name=self.kernel.program.name,
                batch_stats=batch_stats,
            )
            for point, simulation in zip(pending, simulations):
                cache_key = point.key()
                self.simulations[cache_key] = simulation
                results[cache_key] = simulation
                sim_digest = pending_digests[cache_key]
                if self.cache is not None and sim_digest is not None:
                    self.cache.put("simulation", self.name, sim_digest, simulation)
        return results

    def store_simulation(self, key: SimulationKey, result: SimulationResult) -> None:
        """Seed the memo with an externally computed result (parallel fan-out)."""
        self.simulations[key] = result

    def normalized_time(self, design: str, baseline: str = "unsafe-baseline") -> float:
        return self.simulate(design).cycles / self.simulate(baseline).cycles


def artifacts_for_kernel(
    kernel: KernelProgram,
    suite: str,
    name: Optional[str] = None,
    cache: Optional["ArtifactCache"] = None,
    trace_params: Optional[TraceParameters] = None,
) -> WorkloadArtifacts:
    """Functionally execute and trace-analyse an already-built kernel.

    With ``cache`` set, the expensive products (the sequential
    :class:`ExecutionResult` and the :class:`TraceBundle`) are loaded from /
    stored to the content-addressed artifact cache, keyed on the program
    content, the confidential-input set, and the trace parameters.  The
    kernel's correctness check always re-runs, so a stale or corrupt cache
    entry cannot silently poison an experiment.
    """
    name = name or kernel.name
    params = trace_params or TraceParameters()

    payload = None
    digest = None
    if cache is not None:
        from repro.pipeline.parallel import workload_artifact_digest

        digest = workload_artifact_digest(kernel, params)
        payload = cache.get("workload-artifacts", name, digest)

    if payload is not None:
        result, bundle = payload
        # A hit still re-verifies: a stale or corrupt entry must not
        # silently poison an experiment.
        if not kernel.verify(result):
            raise RuntimeError(f"workload {name!r} failed its correctness check")
    else:
        result = kernel.run(0)
        # Verify before tracing/caching: a functionally broken kernel must
        # neither pay for Algorithm 2 nor leave a junk entry on disk.
        if not kernel.verify(result):
            raise RuntimeError(f"workload {name!r} failed its correctness check")
        bundle = generate_trace_bundle(
            kernel.program,
            kernel.inputs,
            crypto_only=params.crypto_only,
            max_k=params.max_k,
        )
        if cache is not None and digest is not None:
            cache.put("workload-artifacts", name, digest, (result, bundle))
    return WorkloadArtifacts(
        name=name,
        suite=suite,
        kernel=kernel,
        result=result,
        bundle=bundle,
        analysis=stats_from_bundle(bundle),
        cache=cache,
        content_digest=digest,
    )


def prepare_workload(
    name: str,
    cache: Optional["ArtifactCache"] = None,
    trace_params: Optional[TraceParameters] = None,
) -> WorkloadArtifacts:
    """Build, functionally execute, and trace-analyse one registry workload.

    The kernel is always rebuilt (it is cheap and holds unpicklable
    callbacks); the execution and tracing go through
    :func:`artifacts_for_kernel` and hence the artifact cache when one is
    attached.
    """
    workload = get_workload(name)
    return artifacts_for_kernel(
        workload.kernel(),
        suite=workload.suite,
        name=name,
        cache=cache,
        trace_params=trace_params,
    )


def prepare_workloads(
    names: Optional[Sequence[str]] = None,
    cache: Optional["ArtifactCache"] = None,
    jobs: int = 1,
) -> List[WorkloadArtifacts]:
    """Prepare several workloads (defaults to the full 22-workload suite).

    ``jobs > 1`` fans the preparation out over worker processes via
    :mod:`repro.pipeline.parallel`; results are identical to the serial path.
    """
    chosen = list(names) if names is not None else workload_names()
    if jobs > 1 and len(chosen) > 1:
        from repro.pipeline.parallel import prepare_workloads_parallel

        return prepare_workloads_parallel(chosen, cache=cache, jobs=jobs)
    return [prepare_workload(name, cache=cache) for name in chosen]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for the ``geomean`` column of Figure 7).

    Zeros are skipped (a zero factor would collapse the mean to zero and the
    paper's normalized-time columns treat empty cells as zero); negative
    inputs are an error — silently dropping them, as this function once did,
    skews the mean without any indication that the data is invalid.

    Raises
    ------
    ValueError
        If any value is negative.
    """
    values = list(values)
    negatives = [value for value in values if value < 0]
    if negatives:
        raise ValueError(f"geometric_mean got negative value(s): {negatives!r}")
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dictionaries as an aligned text table.

    An empty ``rows`` list still renders the header and separator lines.
    """
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column, ""))) for row in rows))
        if rows
        else len(column)
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines = [header, "  ".join("-" * widths[column] for column in columns)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
