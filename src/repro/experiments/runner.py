"""Shared experiment infrastructure: build, trace, and simulate workloads."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.stats import BranchAnalysisStats, stats_from_bundle
from repro.analysis.tracegen import TraceBundle, generate_trace_bundle
from repro.arch.executor import ExecutionResult
from repro.crypto.programs.common import KernelProgram
from repro.crypto.workloads import get_workload, workload_names
from repro.uarch.config import CoreConfig, GOLDEN_COVE_LIKE
from repro.uarch.core import SimulationResult, simulate
from repro.uarch.defenses import (
    CassandraLitePolicy,
    CassandraPolicy,
    CassandraProspectPolicy,
    DefensePolicy,
    ProspectPolicy,
    SptPolicy,
    UnsafeBaseline,
)

#: A small representative subset used by the quick benchmarks and tests.
QUICK_WORKLOADS: List[str] = [
    "ChaCha20_ct",
    "SHA-256",
    "Poly1305_ctmul",
    "EC_c25519_i31",
    "ModPow_i31",
    "sphincs-sha2-128s",
]

#: Design-point factories; Cassandra-family policies need the trace bundle.
DESIGN_BUILDERS: Dict[str, Callable[[Optional[TraceBundle]], DefensePolicy]] = {
    "unsafe-baseline": lambda bundle: UnsafeBaseline(),
    "cassandra": lambda bundle: CassandraPolicy(bundle),
    "cassandra+stl": lambda bundle: CassandraPolicy(bundle, protect_stl=True),
    "cassandra-lite": lambda bundle: CassandraLitePolicy(bundle),
    "spt": lambda bundle: SptPolicy(),
    "prospect": lambda bundle: ProspectPolicy(),
    "cassandra+prospect": lambda bundle: CassandraProspectPolicy(bundle),
}


@dataclass
class WorkloadArtifacts:
    """Everything derived once per workload and shared across design points."""

    name: str
    suite: str
    kernel: KernelProgram
    result: ExecutionResult
    bundle: TraceBundle
    analysis: BranchAnalysisStats
    simulations: Dict[str, SimulationResult] = field(default_factory=dict)

    def simulate(
        self,
        design: str,
        config: CoreConfig = GOLDEN_COVE_LIKE,
        btu_flush_interval: Optional[int] = None,
        warmup_passes: int = 1,
    ) -> SimulationResult:
        """Simulate one design point (cached per design name)."""
        cache_key = design if btu_flush_interval is None else f"{design}@flush{btu_flush_interval}"
        if cache_key not in self.simulations:
            policy = DESIGN_BUILDERS[design](self.bundle)
            self.simulations[cache_key] = simulate(
                self.kernel.program,
                policy=policy,
                config=config,
                bundle=self.bundle,
                result=self.result,
                btu_flush_interval=btu_flush_interval,
                warmup_passes=warmup_passes,
            )
        return self.simulations[cache_key]

    def normalized_time(self, design: str, baseline: str = "unsafe-baseline") -> float:
        return self.simulate(design).cycles / self.simulate(baseline).cycles


def prepare_workload(name: str) -> WorkloadArtifacts:
    """Build, functionally execute, and trace-analyse one workload."""
    workload = get_workload(name)
    kernel = workload.kernel()
    result = kernel.run(0)
    if not kernel.verify(result):
        raise RuntimeError(f"workload {name!r} failed its correctness check")
    bundle = generate_trace_bundle(kernel.program, kernel.inputs)
    return WorkloadArtifacts(
        name=name,
        suite=workload.suite,
        kernel=kernel,
        result=result,
        bundle=bundle,
        analysis=stats_from_bundle(bundle),
    )


def prepare_workloads(names: Optional[Sequence[str]] = None) -> List[WorkloadArtifacts]:
    """Prepare several workloads (defaults to the full 22-workload suite)."""
    chosen = list(names) if names is not None else workload_names()
    return [prepare_workload(name) for name in chosen]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used for the ``geomean`` column of Figure 7)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dictionaries as an aligned text table."""
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines = [header, "  ".join("-" * widths[column] for column in columns)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
