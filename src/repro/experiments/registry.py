"""Registry of the paper's experiments for the ``python -m repro`` CLI.

Each experiment module registers one :class:`ExperimentSpec` declaring its
:class:`~repro.api.matrix.ScenarioMatrix` — the full set of simulation
points it consumes, as a declarative cross-product — and a ``run(ctx)``
entry point receiving the uniform
:class:`~repro.api.service.ExperimentContext`.  The CLI expands the union
of all selected specs' matrices (set-ordered unique, so shared designs are
prefetched once), runs it through the
:class:`~repro.api.service.SimulationService` backend, and then each
experiment's own ``ctx.run`` calls resolve from warm memos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.matrix import EMPTY_MATRIX, ScenarioMatrix


@dataclass(frozen=True)
class ExperimentSpec:
    """How the CLI drives one experiment module.

    Attributes
    ----------
    name:
        CLI name (``python -m repro <name>``).
    title:
        The paper artefact this reproduces, for ``--list`` and headers.
    run:
        ``run(ctx)`` — every experiment takes the one uniform
        :class:`~repro.api.service.ExperimentContext` and returns its plain
        data structure.
    format:
        Renders the data structure as the printed table.
    matrix:
        The experiment's declared simulation points.  The CLI prefetches
        the union of the selected experiments' matrices through the
        service backend before any experiment renders.
    needs_artifacts:
        Whether the experiment reads the *registry* workload set's prepared
        artifacts (``ctx.artifacts()``).  False for Table 2 (a pure
        semantics study touching no artifacts) and for Figure 8, whose
        matrix pins its own synthetic workload axis instead of expanding
        over the registry set.
    jsonify:
        Optional converter to JSON-serializable data (defaults to the raw
        run() output, which for most experiments is already plain).
    """

    name: str
    title: str
    run: Callable[..., Any]
    format: Callable[[Any], str]
    matrix: ScenarioMatrix = EMPTY_MATRIX
    needs_artifacts: bool = True
    jsonify: Optional[Callable[[Any], Any]] = None

    def describe(self) -> Dict[str, Any]:
        """The machine-readable registry row (``--list --format json``)."""
        return {
            "name": self.name,
            "title": self.title,
            "needs_artifacts": self.needs_artifacts,
            "matrix": self.matrix.summary(),
        }


#: Name → spec, in registration (paper artefact) order.
EXPERIMENT_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or re-register) a spec under its CLI name.

    Idempotent by name: ``python -m repro.experiments.table2`` re-executes a
    module body that the package ``__init__`` already imported, so the same
    registration legitimately runs twice.
    """
    EXPERIMENT_REGISTRY[spec.name] = spec
    return spec


def experiment_names() -> List[str]:
    return list(EXPERIMENT_REGISTRY)


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError as exc:
        import difflib

        close = difflib.get_close_matches(name, list(EXPERIMENT_REGISTRY), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise KeyError(
            f"unknown experiment {name!r}{hint} "
            f"(available: {', '.join(experiment_names())})"
        ) from exc


def resolve_experiments(names: Sequence[str]) -> List[ExperimentSpec]:
    """Map CLI arguments to specs; ``all`` (or nothing) selects everything.

    Every non-``all`` name is validated even when ``all`` is present, so a
    typo never silently vanishes into the full-suite selection.
    """
    specs = [get_experiment(name) for name in names if name != "all"]
    if not names or "all" in names:
        return list(EXPERIMENT_REGISTRY.values())
    return specs
