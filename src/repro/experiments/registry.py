"""Registry of the paper's experiments for the ``python -m repro`` CLI.

Each experiment module registers one :class:`ExperimentSpec` describing how
to run it against shared pipeline artifacts, how to format its output, and —
crucially for the parallel fan-out — which simulation points it will consume,
so the CLI can prefetch the union of all selected experiments' points across
worker processes before any experiment runs serially over warm memos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ExperimentSpec:
    """How the CLI drives one experiment module.

    Attributes
    ----------
    name:
        CLI name (``python -m repro <name>``).
    title:
        The paper artefact this reproduces, for ``--list`` and headers.
    run:
        ``run(artifacts=...)`` when ``uses_artifacts``, else ``run()``.
        Returns the experiment's plain data structure.
    format:
        Renders the data structure as the printed table.
    uses_artifacts:
        Whether the experiment consumes shared workload artifacts.
    wants_cache:
        Whether ``run`` accepts a ``cache=`` keyword for artifacts outside
        the workload registry (the Figure 8 synthetic mixes).
    wants_pipeline:
        Whether ``run`` accepts a ``pipeline=`` keyword (granting access to
        the shared cache *and* the worker-pool ``jobs`` setting, e.g. for
        fanning out non-registry simulation points).
    designs:
        Design points the experiment simulates on every workload
        (prefetched with default config/flush/warmup).
    flush_points:
        Extra ``(design, btu_flush_interval)`` points (the interrupt study).
    extra_points:
        Optional ``f(workload_names) -> [SimulationPoint]`` producing
        additional prefetchable points that ``designs`` cannot express —
        e.g. the config sweep's non-default ``CoreConfig`` points.
    jsonify:
        Optional converter to JSON-serializable data (defaults to the raw
        run() output, which for most experiments is already plain).
    """

    name: str
    title: str
    run: Callable[..., Any]
    format: Callable[[Any], str]
    uses_artifacts: bool = True
    wants_cache: bool = False
    wants_pipeline: bool = False
    designs: Tuple[str, ...] = ()
    flush_points: Tuple[Tuple[str, int], ...] = ()
    extra_points: Optional[Callable[[Sequence[str]], List[Any]]] = None
    jsonify: Optional[Callable[[Any], Any]] = None


#: Name → spec, in registration (paper artefact) order.
EXPERIMENT_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or re-register) a spec under its CLI name.

    Idempotent by name: ``python -m repro.experiments.table2`` re-executes a
    module body that the package ``__init__`` already imported, so the same
    registration legitimately runs twice.
    """
    EXPERIMENT_REGISTRY[spec.name] = spec
    return spec


def experiment_names() -> List[str]:
    return list(EXPERIMENT_REGISTRY)


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENT_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()!r}"
        ) from exc


def resolve_experiments(names: Sequence[str]) -> List[ExperimentSpec]:
    """Map CLI arguments to specs; ``all`` (or nothing) selects everything.

    Every non-``all`` name is validated even when ``all`` is present, so a
    typo never silently vanishes into the full-suite selection.
    """
    specs = [get_experiment(name) for name in names if name != "all"]
    if not names or "all" in names:
        return list(EXPERIMENT_REGISTRY.values())
    return specs
