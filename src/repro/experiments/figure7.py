"""Figure 7: normalized execution time of the four design points."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table

#: The four designs of Figure 7, in plotting order.
FIGURE7_DESIGNS = ("unsafe-baseline", "cassandra", "cassandra+stl", "spt")


def figure7_matrix(designs: Sequence[str] = FIGURE7_DESIGNS) -> ScenarioMatrix:
    return ScenarioMatrix(designs=tuple(designs))


def run_figure7(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
    designs: Sequence[str] = FIGURE7_DESIGNS,
) -> List[Dict[str, object]]:
    """Normalized execution time per workload and design, plus the geomean."""
    ctx = default_context(ctx, names=names)
    results = ctx.run(figure7_matrix(designs))
    rows: List[Dict[str, object]] = []
    for workload, group in results.group_by("workload").items():
        baseline = group.cycles(design="unsafe-baseline")
        row: Dict[str, object] = {
            "workload": workload,
            "suite": ctx.artifact(workload).suite,
            "baseline_cycles": baseline,
        }
        for design in designs:
            row[design] = group.normalized_time(design)
        rows.append(row)
    geomean_row: Dict[str, object] = {
        "workload": "geomean",
        "suite": "all",
        "baseline_cycles": "",
    }
    for design in designs:
        geomean_row[design] = results.geomean_normalized_time(design)
    rows.append(geomean_row)
    return rows


def format_figure7(rows: Sequence[Dict[str, object]], designs: Sequence[str] = FIGURE7_DESIGNS) -> str:
    columns = ["workload", "suite", "baseline_cycles", *designs]
    return format_table(rows, columns)


def summarize_speedup(rows: Sequence[Dict[str, object]], design: str = "cassandra") -> float:
    """The headline number: geomean speedup of ``design`` over the baseline."""
    geomean_row = rows[-1]
    normalized = float(geomean_row[design])
    return (1.0 - normalized) * 100.0


register_experiment(
    ExperimentSpec(
        name="figure7",
        title="Figure 7: normalized execution time of the four design points",
        run=run_figure7,
        format=format_figure7,
        matrix=figure7_matrix(),
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    table = run_figure7()
    print(format_figure7(table))
    print(f"\nCassandra speedup over the unsafe baseline: {summarize_speedup(table):.2f}%")
