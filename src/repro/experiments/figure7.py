"""Figure 7: normalized execution time of the four design points."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import (
    WorkloadArtifacts,
    format_table,
    geometric_mean,
    prepare_workloads,
)

#: The four designs of Figure 7, in plotting order.
FIGURE7_DESIGNS = ("unsafe-baseline", "cassandra", "cassandra+stl", "spt")


def run_figure7(
    names: Optional[Sequence[str]] = None,
    artifacts: Optional[Sequence[WorkloadArtifacts]] = None,
    designs: Sequence[str] = FIGURE7_DESIGNS,
) -> List[Dict[str, object]]:
    """Normalized execution time per workload and design, plus the geomean."""
    artifacts = list(artifacts) if artifacts is not None else prepare_workloads(names)
    rows: List[Dict[str, object]] = []
    for artifact in artifacts:
        baseline = artifact.simulate("unsafe-baseline")
        row: Dict[str, object] = {
            "workload": artifact.name,
            "suite": artifact.suite,
            "baseline_cycles": baseline.cycles,
        }
        for design in designs:
            row[design] = artifact.simulate(design).cycles / baseline.cycles
        rows.append(row)
    geomean_row: Dict[str, object] = {
        "workload": "geomean",
        "suite": "all",
        "baseline_cycles": "",
    }
    for design in designs:
        geomean_row[design] = geometric_mean(
            float(row[design]) for row in rows if isinstance(row[design], float)
        )
    rows.append(geomean_row)
    return rows


def format_figure7(rows: Sequence[Dict[str, object]], designs: Sequence[str] = FIGURE7_DESIGNS) -> str:
    columns = ["workload", "suite", "baseline_cycles", *designs]
    return format_table(rows, columns)


def summarize_speedup(rows: Sequence[Dict[str, object]], design: str = "cassandra") -> float:
    """The headline number: geomean speedup of ``design`` over the baseline."""
    geomean_row = rows[-1]
    normalized = float(geomean_row[design])
    return (1.0 - normalized) * 100.0


register_experiment(
    ExperimentSpec(
        name="figure7",
        title="Figure 7: normalized execution time of the four design points",
        run=run_figure7,
        format=format_figure7,
        designs=FIGURE7_DESIGNS,
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    table = run_figure7()
    print(format_figure7(table))
    print(f"\nCassandra speedup over the unsafe baseline: {summarize_speedup(table):.2f}%")
