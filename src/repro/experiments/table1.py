"""Table 1: branch analysis and k-mers compression statistics."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import combine_stats, stats_from_bundle_scaled
from repro.api.service import ExperimentContext, default_context
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table

#: Number of back-to-back primitive invocations the Table 1 traces model.
#: The paper profiles full benchmark executions (traces of up to 90 M
#: elements); tiling the per-invocation traces reproduces that regime while
#: keeping the timing experiments on short, simulable inputs.
DEFAULT_INVOCATIONS = 256


def run_table1(
    ctx: Optional[ExperimentContext] = None,
    names: Optional[Sequence[str]] = None,
    invocations: int = DEFAULT_INVOCATIONS,
) -> List[Dict[str, object]]:
    """Compute the Table 1 rows (one per workload plus the ``All`` row).

    A pure trace-analysis study: no simulation requests, only the prepared
    artifacts' trace bundles.
    """
    ctx = default_context(ctx, names=names)
    all_stats = []
    rows: List[Dict[str, object]] = []
    for artifact in ctx.artifacts():
        stats = (
            stats_from_bundle_scaled(artifact.bundle, invocations)
            if invocations > 1
            else artifact.analysis
        )
        all_stats.append(stats)
        row = stats.as_table_row()
        row["suite"] = artifact.suite
        rows.append(row)
    combined = combine_stats(all_stats).as_table_row()
    combined["suite"] = "all"
    rows.append(combined)
    return rows


def format_table1(rows: Sequence[Dict[str, object]]) -> str:
    columns = [
        "program",
        "suite",
        "vanilla_avg",
        "vanilla_max",
        "kmers_avg",
        "kmers_max",
        "compression_avg",
        "compression_max",
    ]
    return format_table(rows, columns)


register_experiment(
    ExperimentSpec(
        name="table1",
        title="Table 1: branch analysis and k-mers compression statistics",
        run=run_table1,
        format=format_table1,
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_table1(run_table1()))
