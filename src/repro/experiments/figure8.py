"""Figure 8: ProSpeCT vs Cassandra+ProSpeCT on the synthetic mixes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.crypto.synthetic import mix_labels
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import WorkloadArtifacts, format_table

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.pipeline.artifacts import ArtifactCache
    from repro.pipeline.pipeline import ExperimentPipeline

#: The two crypto primitives of Figure 8 and their stack secrecy.
FIGURE8_PRIMITIVES = ("chacha20", "curve25519")
FIGURE8_DESIGNS = ("prospect", "cassandra+prospect")


def run_figure8(
    primitives: Sequence[str] = FIGURE8_PRIMITIVES,
    mixes: Optional[Sequence[str]] = None,
    cache: Optional["ArtifactCache"] = None,
    jobs: int = 1,
    pipeline: Optional["ExperimentPipeline"] = None,
) -> List[Dict[str, object]]:
    """Execution-time overhead (%) of each design over the unsafe baseline.

    The synthetic mixes are not part of the 22-workload registry, but their
    execution, tracing, and simulations flow through the same shared
    pipeline machinery, so an attached artifact cache persists them too.
    *Preparation* builds the mixes from picklable (primitive, mix)
    :class:`~repro.pipeline.parallel.KernelSpec`\\ s inside worker processes
    (one per mix) instead of serially in the parent, and all (mix × design)
    simulation points fan out through the same grouped
    :func:`~repro.pipeline.parallel.simulate_points` batching as the
    registry workloads.
    """
    from repro.pipeline.parallel import (
        KernelSpec,
        SimulationPoint,
        prepare_kernels_parallel,
        simulate_points,
    )

    if pipeline is not None:
        cache = pipeline.cache if cache is None else cache
        jobs = pipeline.jobs
    mixes = list(mixes) if mixes is not None else mix_labels()
    specs = [
        KernelSpec(
            kind="synthetic",
            name=f"synthetic-{primitive}-{mix}",
            args=(primitive, mix),
            suite="synthetic",
        )
        for primitive in primitives
        for mix in mixes
    ]
    artifacts: List[WorkloadArtifacts] = prepare_kernels_parallel(
        specs, cache=cache, jobs=jobs
    )
    simulate_points(
        artifacts,
        (
            SimulationPoint(workload=artifact.name, design=design)
            for artifact in artifacts
            for design in ("unsafe-baseline", *FIGURE8_DESIGNS)
        ),
        jobs=jobs,
    )

    rows: List[Dict[str, object]] = []
    artifacts_by_name = {artifact.name: artifact for artifact in artifacts}
    for primitive in primitives:
        for mix in mixes:
            artifact = artifacts_by_name[f"synthetic-{primitive}-{mix}"]
            baseline = artifact.simulate("unsafe-baseline")
            row: Dict[str, object] = {"primitive": primitive, "mix": mix}
            for design in FIGURE8_DESIGNS:
                sim = artifact.simulate(design)
                row[design] = (sim.cycles / baseline.cycles - 1.0) * 100.0
            rows.append(row)
    return rows


def format_figure8(rows: Sequence[Dict[str, object]]) -> str:
    columns = ["primitive", "mix", *FIGURE8_DESIGNS]
    return format_table(rows, columns)


register_experiment(
    ExperimentSpec(
        name="figure8",
        title="Figure 8: ProSpeCT vs Cassandra+ProSpeCT on the synthetic mixes",
        run=run_figure8,
        format=format_figure8,
        uses_artifacts=False,
        wants_cache=True,
        wants_pipeline=True,
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure8(run_figure8()))
