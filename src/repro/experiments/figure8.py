"""Figure 8: ProSpeCT vs Cassandra+ProSpeCT on the synthetic mixes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tracegen import generate_trace_bundle
from repro.crypto.synthetic import build_synthetic, mix_labels
from repro.experiments.runner import DESIGN_BUILDERS, format_table
from repro.uarch.core import simulate

#: The two crypto primitives of Figure 8 and their stack secrecy.
FIGURE8_PRIMITIVES = ("chacha20", "curve25519")
FIGURE8_DESIGNS = ("prospect", "cassandra+prospect")


def run_figure8(
    primitives: Sequence[str] = FIGURE8_PRIMITIVES,
    mixes: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Execution-time overhead (%) of each design over the unsafe baseline."""
    mixes = list(mixes) if mixes is not None else mix_labels()
    rows: List[Dict[str, object]] = []
    for primitive in primitives:
        for mix in mixes:
            kernel = build_synthetic(primitive, mix)
            result = kernel.run(0)
            bundle = generate_trace_bundle(kernel.program, kernel.inputs)
            baseline = simulate(
                kernel.program,
                policy=DESIGN_BUILDERS["unsafe-baseline"](bundle),
                bundle=bundle,
                result=result,
            )
            row: Dict[str, object] = {"primitive": primitive, "mix": mix}
            for design in FIGURE8_DESIGNS:
                sim = simulate(
                    kernel.program,
                    policy=DESIGN_BUILDERS[design](bundle),
                    bundle=bundle,
                    result=result,
                )
                row[design] = (sim.cycles / baseline.cycles - 1.0) * 100.0
            rows.append(row)
    return rows


def format_figure8(rows: Sequence[Dict[str, object]]) -> str:
    columns = ["primitive", "mix", *FIGURE8_DESIGNS]
    return format_table(rows, columns)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure8(run_figure8()))
