"""Figure 8: ProSpeCT vs Cassandra+ProSpeCT on the synthetic mixes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.matrix import ScenarioMatrix
from repro.api.request import WorkloadRef
from repro.api.service import ExperimentContext, default_context
from repro.crypto.synthetic import mix_labels
from repro.experiments.registry import ExperimentSpec, register_experiment
from repro.experiments.runner import format_table

#: The two crypto primitives of Figure 8 and their stack secrecy.
FIGURE8_PRIMITIVES = ("chacha20", "curve25519")
FIGURE8_DESIGNS = ("prospect", "cassandra+prospect")


def figure8_matrix(
    primitives: Sequence[str] = FIGURE8_PRIMITIVES,
    mixes: Optional[Sequence[str]] = None,
) -> ScenarioMatrix:
    """The (primitive × mix) synthetic grid under baseline + both designs.

    The synthetic mixes are not part of the 22-workload registry, so the
    matrix pins its own workload axis with ``synthetic``-kind refs; the
    service builds them from their kernel specs inside worker processes and
    persists them through the same artifact cache as registry workloads.
    """
    mixes = list(mixes) if mixes is not None else mix_labels()
    return ScenarioMatrix(
        workloads=tuple(
            WorkloadRef.synthetic(primitive, mix)
            for primitive in primitives
            for mix in mixes
        ),
        designs=("unsafe-baseline", *FIGURE8_DESIGNS),
    )


def run_figure8(
    ctx: Optional[ExperimentContext] = None,
    primitives: Sequence[str] = FIGURE8_PRIMITIVES,
    mixes: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Execution-time overhead (%) of each design over the unsafe baseline."""
    ctx = default_context(ctx, jobs=jobs)
    mixes = list(mixes) if mixes is not None else mix_labels()
    results = ctx.run(figure8_matrix(primitives, mixes))

    rows: List[Dict[str, object]] = []
    for primitive in primitives:
        for mix in mixes:
            name = f"synthetic-{primitive}-{mix}"
            group = results.where(workload=name)
            baseline = group.cycles(design="unsafe-baseline")
            row: Dict[str, object] = {"primitive": primitive, "mix": mix}
            for design in FIGURE8_DESIGNS:
                row[design] = (group.cycles(design=design) / baseline - 1.0) * 100.0
            rows.append(row)
    return rows


def format_figure8(rows: Sequence[Dict[str, object]]) -> str:
    columns = ["primitive", "mix", *FIGURE8_DESIGNS]
    return format_table(rows, columns)


register_experiment(
    ExperimentSpec(
        name="figure8",
        title="Figure 8: ProSpeCT vs Cassandra+ProSpeCT on the synthetic mixes",
        run=run_figure8,
        format=format_figure8,
        matrix=figure8_matrix(),
        needs_artifacts=False,
    )
)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(format_figure8(run_figure8()))
