"""The ``python -m repro`` command line interface.

Runs any subset of the paper's experiments in one pass over a shared
:class:`~repro.api.service.SimulationService`::

    python -m repro --list
    python -m repro --list --format json
    python -m repro table1 figure7 --workloads quick --jobs 4
    python -m repro all --format json > results.json
    python -m repro figure7 --workloads quick --backend shard --jobs 2

Each workload is built, sequentially executed, and trace-analysed exactly
once per invocation regardless of how many experiments consume it; with the
on-disk cache (the default) that work persists across invocations, so a
warm rerun skips straight to the timing simulations.  Every selected
experiment declares its simulation points as a
:class:`~repro.api.matrix.ScenarioMatrix`; the CLI expands the set-ordered
unique union — experiments sharing designs prefetch each point once — and
submits it as one tagged scheduler job through the selected execution
backend (``--backend serial|fork|shard|remote``) before the experiments
render over warm memos.  Job events feed a live progress line on stderr
(``--progress``, automatic on a tty).

The networked tier::

    python -m repro serve --port 8765 --workloads quick --jobs 4
    python -m repro figure7 --backend remote --connect localhost:8765

``serve`` keeps one service (artifact cache, scheduler, backend) alive for
any number of remote callers; ``--backend remote`` runs every simulation
point on that server while preparation-independent rendering stays local.

The untrusted-client front door::

    python -m repro gateway --port 8080 --state-dir state
    python -m repro gateway admin --state-dir state create-key TENANT

``gateway`` mounts the multi-tenant HTTP/JSON gateway (API-key auth,
quotas, usage accounting, Server-Sent-Events job streaming) over the same
durable journaled scheduler — see :mod:`repro.api.gateway`.

The result warehouse::

    python -m repro figure7 --workloads quick --warehouse wh.sqlite3
    python -m repro warehouse query --design cassandra --format csv
    python -m repro warehouse regressions --threshold 0.02

``--warehouse`` (and every serve/gateway ``--state-dir``) records answered
points into the queryable result warehouse — see :mod:`repro.warehouse`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import __version__
from repro.api import build_service, expand_many, make_backend
from repro.api.backends import BACKENDS
from repro.engine.kernels import ENGINE_TIERS, TIER_ENV
from repro.experiments import resolve_experiments
from repro.experiments.registry import EXPERIMENT_REGISTRY
from repro.pipeline import default_cache_dir


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures over a shared, "
        "disk-cached, parallel simulation service.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to run (see --list); 'all' or nothing runs every one",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--workloads",
        default="all",
        help="'all' (22 workloads), 'quick' (6), or a comma-separated list of names",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for preparation and simulation (default: auto)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS) + ["remote"],
        default="fork",
        help="execution backend for simulation points (default: fork); "
        "'remote' needs --connect",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="address of a running 'repro serve' (required by --backend remote)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream a live job-progress line to stderr (automatic on a tty)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"artifact cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk artifact cache"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format; 'csv' prints every simulated point as one "
        "stable-sorted row table (ResultSet.export_csv)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print pipeline/cache statistics"
    )
    parser.add_argument(
        "--warehouse",
        default=None,
        metavar="PATH",
        help="record every simulated point into this result-warehouse "
        "SQLite file (see 'python -m repro warehouse')",
    )
    _add_engine_tier_argument(parser)
    return parser


def _add_engine_tier_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine-tier",
        choices=ENGINE_TIERS,
        default=None,
        metavar="TIER",
        help="measured-pass execution tier: 'native' (C kernels compiled "
        "through the system toolchain, cached as shared objects; falls back "
        "per point when no compiler works), 'columns' (NumPy multi-config "
        "cohorts where provably exact; the default), 'python' (per-config "
        "generated kernels), or 'interp' (the generic interpreter); "
        f"equivalent to setting {TIER_ENV}",
    )


def _apply_engine_tier(tier: Optional[str]) -> None:
    """Propagate ``--engine-tier`` through the environment.

    The environment variable is the one switch every layer — in-process
    batches, forked workers, remote shard services — already honors, so the
    flag simply pins it for this process tree (without clobbering an
    explicit setting when the flag is absent).
    """
    if tier is not None:
        os.environ[TIER_ENV] = tier


def _list_experiments(fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            [spec.describe() for spec in EXPERIMENT_REGISTRY.values()], indent=2
        )
    width = max(len(name) for name in EXPERIMENT_REGISTRY)
    lines = ["available experiments:"]
    for name, spec in EXPERIMENT_REGISTRY.items():
        lines.append(f"  {name.ljust(width)}  {spec.title}")
    lines.append(f"  {'all'.ljust(width)}  every experiment above, sharing one service")
    return "\n".join(lines)


class ProgressLine:
    """A one-line live progress display fed by scheduler job events.

    Tracks every job it observes (local scheduler jobs *and* the remote
    backend's forwarded server-side jobs) and repaints one stderr line per
    event; terminal events finalize the line.  Quiet on non-tty runs
    unless ``--progress`` forces it.
    """

    def __init__(self, out=None) -> None:
        self._out = out or sys.stderr
        self._lock = threading.Lock()
        self._jobs: Dict[str, Dict[str, Any]] = {}

    def __call__(self, event) -> None:  # a scheduler/remote JobEvent
        with self._lock:
            job = self._jobs.setdefault(
                event.job_id, {"total": 0, "done": 0, "hits": 0, "tag": event.job_id}
            )
            payload = event.payload or {}
            if event.kind == "queued":
                job["total"] = payload.get("points", 0)
                tags = payload.get("tags") or []
                if tags:
                    job["tag"] = tags[0]
            elif event.kind == "point-done":
                job["done"] += 1
            elif event.kind == "cache-hit":
                job["hits"] += 1
            if event.kind in ("done", "failed", "cancelled"):
                self._out.write(
                    f"\r{job['tag']}: {job['done']} computed, {job['hits']} cached "
                    f"/ {job['total']} points — {event.kind}\n"
                )
            else:
                answered = job["done"] + job["hits"]
                self._out.write(
                    f"\r{job['tag']}: {answered}/{job['total']} points "
                    f"({job['hits']} cached)"
                )
            self._out.flush()


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a long-lived SimulationService over TCP: clients "
        "submit jobs (python -m repro ... --backend remote --connect HOST:PORT "
        "or repro.api.remote.RemoteServiceClient), stream typed job events, "
        "and receive full-fidelity result payloads.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, metavar="N",
                        help="TCP port (default: an ephemeral port, printed)")
    parser.add_argument(
        "--workloads",
        default="all",
        help="workload set open matrices expand over ('all', 'quick', or names)",
    )
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes (default: auto)")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="fork",
        help="execution backend the server computes with (default: fork)",
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact cache")
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state directory: jobs are recorded in an append-only "
        "write-ahead journal (DIR/journal.jsonl) so a crashed or killed "
        "server resumes interrupted jobs on restart, re-executing only "
        "their unfinished points (completed points replay as disk-cache "
        "hits).  SIGTERM/SIGINT drain running jobs at the next round "
        "boundary, checkpoint the journal, and exit 0.  Unless --cache-dir "
        "is given, the artifact cache lives in DIR/cache, making the "
        "state dir self-contained.  Every answered point is also recorded "
        "in the result warehouse (DIR/warehouse.sqlite3 — see 'python -m "
        "repro warehouse').",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    _add_engine_tier_argument(parser)
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro serve --port N`` — the long-lived job server."""
    import signal

    from repro.api.journal import JobJournal, resume_jobs
    from repro.api.remote import JobServer

    args = _build_serve_parser().parse_args(argv)
    _apply_engine_tier(args.engine_tier)
    # Arm any REPRO_FAULT_PLAN schedule, like the worker entry points and
    # the gateway do: the chaos suite kills the server at a chosen
    # warehouse write (or other site) this way.
    from repro.testing.faults import activate_from_env

    activate_from_env()
    journal = None
    cache_dir = args.cache_dir
    if args.state_dir is not None:
        journal = JobJournal(args.state_dir)
        if cache_dir is None:
            # Self-contained state dir: journal and artifact cache travel
            # together, so "resume = journal + disk cache" needs one path.
            cache_dir = os.path.join(args.state_dir, "cache")
    try:
        service = build_service(
            workloads=args.workloads,
            cache_dir=cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            backend=args.backend,
            journal=journal,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    try:
        server = JobServer(service, host=args.host, port=args.port)
    except OSError as exc:
        print(_bind_diagnosis("repro serve", args.host, args.port, exc), file=sys.stderr)
        service.close()
        if journal is not None:
            journal.close()
        return 2
    warehouse_store = None
    if args.state_dir is not None:
        from repro.warehouse import WarehouseStore, attach_ingestor

        # Ingestor before resume: a resumed job's completed points replay
        # as cache-hit events through this listener, so a crash mid-ingest
        # converges back to the exact store (idempotent upserts).
        warehouse_store = WarehouseStore(args.state_dir)
        attach_ingestor(service, warehouse_store)
    resumed = resume_jobs(service, journal) if journal is not None else []
    print(
        f"repro serve: listening on {server.address} "
        f"(backend {service.backend.name}, {len(service.workloads)} workloads, "
        f"{service.jobs} jobs)",
        flush=True,
    )
    for handle in resumed:
        print(
            f"repro serve: resumed {handle.job_id} "
            f"({len(handle.requests)} points) from the journal",
            flush=True,
        )

    # A signal only closes the listen socket (signal-handler-safe); the
    # drain — stop jobs at their round boundary, journal a checkpoint —
    # runs below, in the main thread, after serve_forever returns.
    def _request_shutdown(signum, _frame):
        print(f"repro serve: caught signal {signum}, draining", flush=True)
        server.close()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_shutdown)

    # Fork-based backend workers must NOT inherit the drain handlers:
    # multiprocessing.Pool.terminate() stops stragglers with SIGTERM, and
    # a worker that swallows that signal into _request_shutdown never
    # exits — the parent's join() inside Pool.__exit__ then wedges the
    # dispatcher thread (and with it the drain) forever.
    def _reset_signals_in_child() -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, signal.SIG_DFL)

    os.register_at_fork(after_in_child=_reset_signals_in_child)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.drain()
        service.close()
        if warehouse_store is not None:
            warehouse_store.close()
    print("repro serve: drained, exiting", flush=True)
    return 0


def _bind_diagnosis(prog: str, host: str, port: int, exc: OSError) -> str:
    """One line saying why the listen socket could not bind (exit 2)."""
    import errno

    if exc.errno == errno.EADDRINUSE:
        why = "address already in use (is another server listening there?)"
    else:
        why = exc.strerror or str(exc)
    return f"{prog}: cannot bind {host}:{port}: {why}"


def _env_number(name: str, cast):
    """``REPRO_GATEWAY_*`` fallback for a quota/window flag (None = unset)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    try:
        return cast(raw)
    except ValueError:
        print(f"warning: ignoring non-numeric {name}={raw!r}", file=sys.stderr)
        return None


def _build_gateway_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro gateway",
        description="Serve the multi-tenant HTTP/JSON gateway: API-key "
        "authenticated job submission (POST /v1/jobs), Server-Sent-Events "
        "job streaming with Last-Event-ID resume, quotas, and a usage "
        "ledger, all over the same durable journaled scheduler as 'repro "
        "serve'.  Provision tenants and keys with 'repro gateway admin'.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, metavar="N",
                        help="HTTP port (default: an ephemeral port, printed)")
    parser.add_argument(
        "--workloads",
        default="all",
        help="workload set open matrices expand over ('all', 'quick', or names)",
    )
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="worker processes (default: auto)")
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="fork",
        help="execution backend the gateway computes with (default: fork)",
    )
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory (default: STATE_DIR/cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact cache")
    parser.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="durable state directory: the job journal (DIR/journal.jsonl), "
        "the tenant/key/usage store (DIR/gateway.sqlite3), the result "
        "warehouse (DIR/warehouse.sqlite3), and — unless --cache-dir is "
        "given — the artifact cache (DIR/cache).  Interrupted jobs resume "
        "on restart with their tenant ownership intact.",
    )
    parser.add_argument(
        "--max-concurrent-jobs",
        type=int,
        default=_env_number("REPRO_GATEWAY_MAX_CONCURRENT_JOBS", int),
        metavar="N",
        help="default per-tenant live-job cap (env: "
        "REPRO_GATEWAY_MAX_CONCURRENT_JOBS; default: unlimited)",
    )
    parser.add_argument(
        "--max-queued-points",
        type=int,
        default=_env_number("REPRO_GATEWAY_MAX_QUEUED_POINTS", int),
        metavar="N",
        help="default per-tenant cap on points across live jobs (env: "
        "REPRO_GATEWAY_MAX_QUEUED_POINTS; default: unlimited)",
    )
    parser.add_argument(
        "--points-per-day",
        type=int,
        default=_env_number("REPRO_GATEWAY_POINTS_PER_DAY", int),
        metavar="N",
        help="default per-tenant points per rolling usage window (env: "
        "REPRO_GATEWAY_POINTS_PER_DAY; default: unlimited)",
    )
    parser.add_argument(
        "--usage-window",
        type=float,
        default=_env_number("REPRO_GATEWAY_USAGE_WINDOW", float) or 86400.0,
        metavar="SECONDS",
        help="rolling usage window behind --points-per-day (env: "
        "REPRO_GATEWAY_USAGE_WINDOW; default: 86400)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    _add_engine_tier_argument(parser)
    return parser


def gateway_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro gateway`` — the multi-tenant HTTP front door."""
    import signal

    from repro.api.gateway.admin import admin_main
    from repro.api.gateway.http import GatewayServer
    from repro.api.gateway.quota import QuotaDefaults
    from repro.api.gateway.store import GatewayStore
    from repro.api.journal import JobJournal, resume_jobs

    argv = list(argv or ())
    if argv and argv[0] == "admin":
        return admin_main(argv[1:])
    args = _build_gateway_parser().parse_args(argv)
    _apply_engine_tier(args.engine_tier)
    # Arm any REPRO_FAULT_PLAN schedule, like the worker entry points do:
    # the chaos suite kills the gateway at a chosen request this way.
    from repro.testing.faults import activate_from_env

    activate_from_env()
    journal = JobJournal(args.state_dir)
    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = os.path.join(args.state_dir, "cache")
    store = GatewayStore(args.state_dir)
    try:
        service = build_service(
            workloads=args.workloads,
            cache_dir=cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            backend=args.backend,
            journal=journal,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        store.close()
        journal.close()
        return 2
    try:
        # The gateway (and its usage listener) first, resume second: the
        # resumed jobs' re-queued events then flow through the listener and
        # re-attach tenant ownership before any client reconnects.
        server = GatewayServer(
            service,
            store,
            host=args.host,
            port=args.port,
            usage_window=args.usage_window,
            defaults=QuotaDefaults(
                max_concurrent_jobs=args.max_concurrent_jobs,
                max_queued_points=args.max_queued_points,
                points_per_day=args.points_per_day,
            ),
        )
    except OSError as exc:
        print(
            _bind_diagnosis("repro gateway", args.host, args.port, exc),
            file=sys.stderr,
        )
        service.close()
        store.close()
        journal.close()
        return 2
    from repro.warehouse import WarehouseStore, attach_ingestor

    # Like the usage listener: attached before resume, so resumed jobs'
    # replayed point events land in the warehouse (tenant tags included).
    warehouse_store = WarehouseStore(args.state_dir)
    attach_ingestor(service, warehouse_store)
    resumed = resume_jobs(service, journal)
    print(
        f"repro gateway: listening on http://{server.host}:{server.port} "
        f"(backend {service.backend.name}, {len(service.workloads)} workloads, "
        f"{service.jobs} jobs)",
        flush=True,
    )
    for handle in resumed:
        print(
            f"repro gateway: resumed {handle.job_id} "
            f"({len(handle.requests)} points) from the journal",
            flush=True,
        )

    # Same drain choreography as serve_main: the handler only stops the
    # HTTP loop (signal-safe); the drain runs in the main thread after
    # serve_forever returns.
    def _request_shutdown(signum, _frame):
        print(f"repro gateway: caught signal {signum}, draining", flush=True)
        threading.Thread(target=server.close, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_shutdown)

    def _reset_signals_in_child() -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, signal.SIG_DFL)

    os.register_at_fork(after_in_child=_reset_signals_in_child)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.drain()
        service.close()
        warehouse_store.close()
    print("repro gateway: drained, exiting", flush=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "gateway":
        return gateway_main(argv[1:])
    if argv and argv[0] == "warehouse":
        from repro.warehouse.cli import warehouse_main

        return warehouse_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.list:
        print(_list_experiments(args.format))
        return 0
    _apply_engine_tier(args.engine_tier)

    progress = ProgressLine() if (args.progress or sys.stderr.isatty()) else None
    try:
        specs = resolve_experiments(args.experiments)
        backend = make_backend(args.backend, connect=args.connect, listener=progress)
        service = build_service(
            workloads=args.workloads,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            backend=backend,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if progress is not None:
        service.scheduler.add_listener(progress)
    warehouse_store = None
    if args.warehouse is not None:
        from repro.warehouse import WarehouseStore, attach_ingestor

        # Attached before any job runs, so the prefetch and every
        # experiment's points land in the warehouse as they complete.
        warehouse_store = WarehouseStore(args.warehouse)
        attach_ingestor(service, warehouse_store)

    started = time.perf_counter()
    ctx = service.context()
    # Prefetch the set-ordered unique union of every selected experiment's
    # declared points through the backend; the experiments' own ctx.run
    # calls below then resolve from warm memos.
    union = expand_many(
        [spec.matrix for spec in specs], default_workloads=service.workloads
    )
    if union:
        ctx.run(union, tags=("prefetch",))

    report: Dict[str, Any] = {}
    for spec in specs:
        ctx.tag = spec.name
        data = spec.run(ctx)
        if args.format == "text":
            print(f"== {spec.name}: {spec.title} ==")
            print(spec.format(data))
            print()
        elif args.format == "json":
            report[spec.name] = spec.jsonify(data) if spec.jsonify else data

    elapsed = time.perf_counter() - started
    stats = dict(service.stats())
    stats["total_seconds"] = round(elapsed, 3)
    if args.format == "json":
        payload: Dict[str, Any] = {
            "workloads": list(service.workloads),
            "experiments": report,
            "stats": stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    elif args.format == "csv":
        # One stable-sorted row per simulated point — everything the
        # prefetch and the selected experiments ran this invocation.
        sys.stdout.write(ctx.results.export_csv())
    if args.stats:
        print(f"pipeline: {_summarize_stats(stats)}", file=sys.stderr)
    service.close()
    if warehouse_store is not None:
        warehouse_store.close()
    return 0


def _summarize_stats(stats: Dict[str, Any]) -> str:
    parts = [
        f"{stats['workloads']} workloads",
        f"{stats['points_simulated']} points simulated",
        f"{stats['jobs']} jobs",
        f"backend {stats['backend']}",
        f"{stats['total_seconds']}s total",
        f"prepare {stats['prepare_seconds']}s",
    ]
    if "disk_hits" in stats:
        parts.append(f"cache {stats['disk_hits']} hits / {stats['disk_misses']} misses")
    return ", ".join(parts)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
