"""The ``python -m repro`` command line interface.

Runs any subset of the paper's eight experiments in one pass over shared
pipeline artifacts::

    python -m repro --list
    python -m repro table1 figure7 --workloads quick --jobs 4
    python -m repro all --format json > results.json
    python -m repro interrupts --workloads ChaCha20_ct,SHA-256 --no-cache

Each workload is built, sequentially executed, and trace-analysed exactly
once per invocation regardless of how many experiments consume it; with the
on-disk cache (the default) that work persists across invocations, so a
warm rerun skips straight to the timing simulations.  Independent
(workload × design) simulation points for every selected experiment are
prefetched across ``--jobs`` worker processes before the experiments render.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import resolve_experiments
from repro.experiments.registry import EXPERIMENT_REGISTRY, ExperimentSpec
from repro.pipeline import SimulationPoint, build_pipeline, default_cache_dir


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures over a shared, "
        "disk-cached, parallel experiment pipeline.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to run (see --list); 'all' or nothing runs every one",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--workloads",
        default="all",
        help="'all' (22 workloads), 'quick' (6), or a comma-separated list of names",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for preparation and simulation (default: auto)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"artifact cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk artifact cache"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print pipeline/cache statistics"
    )
    return parser


def _list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENT_REGISTRY)
    lines = ["available experiments:"]
    for name, spec in EXPERIMENT_REGISTRY.items():
        lines.append(f"  {name.ljust(width)}  {spec.title}")
    lines.append(f"  {'all'.ljust(width)}  every experiment above, sharing one pipeline")
    return "\n".join(lines)


def _prefetch_points(specs: Sequence[ExperimentSpec], names: Sequence[str]) -> List[SimulationPoint]:
    """The union of simulation points the selected experiments will consume."""
    points: List[SimulationPoint] = []
    for spec in specs:
        if not spec.uses_artifacts:
            continue
        for name in names:
            for design in spec.designs:
                points.append(SimulationPoint(workload=name, design=design))
            for design, flush_interval in spec.flush_points:
                points.append(
                    SimulationPoint(
                        workload=name, design=design, btu_flush_interval=flush_interval
                    )
                )
        if spec.extra_points is not None:
            points.extend(spec.extra_points(names))
    return points


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        print(_list_experiments())
        return 0

    try:
        specs = resolve_experiments(args.experiments)
        pipeline = build_pipeline(
            workloads=args.workloads,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    artifacts = None
    if any(spec.uses_artifacts for spec in specs):
        artifacts = pipeline.artifacts()
        pipeline.prefetch(_prefetch_points(specs, pipeline.names))

    report: Dict[str, Any] = {}
    for spec in specs:
        if spec.uses_artifacts:
            data = spec.run(artifacts=artifacts)
        elif spec.wants_pipeline:
            data = spec.run(pipeline=pipeline)
        elif spec.wants_cache:
            data = spec.run(cache=pipeline.cache)
        else:
            data = spec.run()
        if args.format == "text":
            print(f"== {spec.name}: {spec.title} ==")
            print(spec.format(data))
            print()
        else:
            report[spec.name] = spec.jsonify(data) if spec.jsonify else data

    elapsed = time.perf_counter() - started
    stats = dict(pipeline.stats())
    stats["total_seconds"] = round(elapsed, 3)
    if args.format == "json":
        payload: Dict[str, Any] = {
            "workloads": list(pipeline.names),
            "experiments": report,
            "stats": stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    if args.stats:
        print(f"pipeline: {_summarize_stats(stats)}", file=sys.stderr)
    return 0


def _summarize_stats(stats: Dict[str, Any]) -> str:
    parts = [
        f"{stats['workloads']} workloads",
        f"{stats['points_simulated']} points simulated",
        f"{stats['jobs']} jobs",
        f"{stats['total_seconds']}s total",
        f"prepare {stats['prepare_seconds']}s",
    ]
    if "disk_hits" in stats:
        parts.append(f"cache {stats['disk_hits']} hits / {stats['disk_misses']} misses")
    return ", ".join(parts)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
