"""The ``python -m repro`` command line interface.

Runs any subset of the paper's experiments in one pass over a shared
:class:`~repro.api.service.SimulationService`::

    python -m repro --list
    python -m repro --list --format json
    python -m repro table1 figure7 --workloads quick --jobs 4
    python -m repro all --format json > results.json
    python -m repro figure7 --workloads quick --backend shard --jobs 2

Each workload is built, sequentially executed, and trace-analysed exactly
once per invocation regardless of how many experiments consume it; with the
on-disk cache (the default) that work persists across invocations, so a
warm rerun skips straight to the timing simulations.  Every selected
experiment declares its simulation points as a
:class:`~repro.api.matrix.ScenarioMatrix`; the CLI expands the set-ordered
unique union — experiments sharing designs prefetch each point once — and
dispatches it through the selected execution backend (``--backend
serial|fork|shard``) before the experiments render over warm memos.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.api import build_service, expand_many
from repro.api.backends import BACKENDS
from repro.experiments import resolve_experiments
from repro.experiments.registry import EXPERIMENT_REGISTRY
from repro.pipeline import default_cache_dir


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures over a shared, "
        "disk-cached, parallel simulation service.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to run (see --list); 'all' or nothing runs every one",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--workloads",
        default="all",
        help="'all' (22 workloads), 'quick' (6), or a comma-separated list of names",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for preparation and simulation (default: auto)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="fork",
        help="execution backend for simulation points (default: fork)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"artifact cache directory (default: $REPRO_CACHE_DIR or {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk artifact cache"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print pipeline/cache statistics"
    )
    return parser


def _list_experiments(fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            [spec.describe() for spec in EXPERIMENT_REGISTRY.values()], indent=2
        )
    width = max(len(name) for name in EXPERIMENT_REGISTRY)
    lines = ["available experiments:"]
    for name, spec in EXPERIMENT_REGISTRY.items():
        lines.append(f"  {name.ljust(width)}  {spec.title}")
    lines.append(f"  {'all'.ljust(width)}  every experiment above, sharing one service")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        print(_list_experiments(args.format))
        return 0

    try:
        specs = resolve_experiments(args.experiments)
        service = build_service(
            workloads=args.workloads,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            jobs=args.jobs,
            backend=args.backend,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    ctx = service.context()
    # Prefetch the set-ordered unique union of every selected experiment's
    # declared points through the backend; the experiments' own ctx.run
    # calls below then resolve from warm memos.
    union = expand_many(
        [spec.matrix for spec in specs], default_workloads=service.workloads
    )
    if union:
        ctx.run(union)

    report: Dict[str, Any] = {}
    for spec in specs:
        data = spec.run(ctx)
        if args.format == "text":
            print(f"== {spec.name}: {spec.title} ==")
            print(spec.format(data))
            print()
        else:
            report[spec.name] = spec.jsonify(data) if spec.jsonify else data

    elapsed = time.perf_counter() - started
    stats = dict(service.stats())
    stats["total_seconds"] = round(elapsed, 3)
    if args.format == "json":
        payload: Dict[str, Any] = {
            "workloads": list(service.workloads),
            "experiments": report,
            "stats": stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    if args.stats:
        print(f"pipeline: {_summarize_stats(stats)}", file=sys.stderr)
    return 0


def _summarize_stats(stats: Dict[str, Any]) -> str:
    parts = [
        f"{stats['workloads']} workloads",
        f"{stats['points_simulated']} points simulated",
        f"{stats['jobs']} jobs",
        f"backend {stats['backend']}",
        f"{stats['total_seconds']}s total",
        f"prepare {stats['prepare_seconds']}s",
    ]
    if "disk_hits" in stats:
        parts.append(f"cache {stats['disk_hits']} hits / {stats['disk_misses']} misses")
    return ", ".join(parts)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
