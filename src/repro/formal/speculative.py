"""Speculative hardware semantics with an attacker-controlled predictor.

This is the execution-driven counterpart of the timing model: it really
executes wrong-path instructions (on a copy of the architectural state) and
records their attacker-visible observations, which is what the security
analysis needs.  Two semantics are provided:

* ``unsafe`` — any branch may be steered by the attacker to an arbitrary
  transient target (modelling full control over the PHT/BTB/RSB, as in the
  Pathfinder-style attacks the paper cites);
* ``cassandra`` — crypto branches follow the sequential contract trace (the
  BTU replay), so they can never be steered, and non-crypto branches whose
  steered target lies inside a crypto PC range are blocked by the integrity
  check (Section 5.3); everything else may still speculate.

The attacker observes the ⟦·⟧ct leakage of both committed and transient
execution: program counters, memory addresses, and explicit ``leak``
transmitter values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.executor import ExecutionError, SequentialExecutor
from repro.arch.observations import Observation, ObservationKind
from repro.arch.state import ArchState
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

MemoryInput = Mapping[int, int]

#: An attacker strategy maps (branch PC, instruction, correct next PC) to a
#: transient target to steer fetch to, or None to leave the branch alone.
AttackerStrategy = Callable[[int, Instruction, int], Optional[int]]


@dataclass(frozen=True)
class HardwareObservation:
    """One attacker-visible event of a speculative run."""

    kind: ObservationKind
    value: int
    transient: bool
    crypto: bool
    pc: int

    def key(self) -> Tuple[str, int, bool]:
        return (self.kind.value, self.value, self.transient)


@dataclass
class SpeculativeRun:
    """The result of running a program on the speculative machine."""

    observations: List[HardwareObservation] = field(default_factory=list)
    squashes: int = 0
    transient_instructions: int = 0
    state: Optional[ArchState] = None

    def attacker_view(self) -> List[Tuple[str, int, bool]]:
        """The trace an attacker compares across runs.

        Committed (non-transient) ``leak`` observations are the program's
        intended, declassified outputs — constant-time indistinguishability
        is defined up to declassified outputs, so they are excluded from the
        comparison.  Every transient observation and every committed
        control-flow / memory-address observation is included.
        """
        return [
            obs.key()
            for obs in self.observations
            if obs.transient or obs.kind is not ObservationKind.LEAK
        ]

    def transient_observations(self) -> List[HardwareObservation]:
        return [obs for obs in self.observations if obs.transient]


class SpeculativeMachine:
    """Execution-driven machine with attacker-directed misspeculation."""

    def __init__(
        self,
        mode: str = "unsafe",
        speculation_window: int = 48,
        max_steps: int = 500_000,
    ) -> None:
        if mode not in ("unsafe", "cassandra"):
            raise ValueError("mode must be 'unsafe' or 'cassandra'")
        self.mode = mode
        self.speculation_window = speculation_window
        self.max_steps = max_steps
        self._executor = SequentialExecutor(max_steps=max_steps, record_dynamic=False)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Program,
        memory_overrides: Optional[MemoryInput] = None,
        attacker: Optional[AttackerStrategy] = None,
    ) -> SpeculativeRun:
        state = ArchState(pc=program.entry)
        state.memory.update(program.initial_memory)
        if memory_overrides:
            state.memory.update(memory_overrides)
        state.mark_secret_addresses(program.secret_addresses)

        run = SpeculativeRun()
        steps = 0
        while not state.halted:
            if steps >= self.max_steps:
                raise ExecutionError("speculative machine exceeded its step budget")
            pc = state.pc
            instruction = program.fetch(pc)

            if instruction.is_branch and attacker is not None:
                self._maybe_speculate(program, state, instruction, pc, attacker, run)

            observations: List[Observation] = []
            self._executor._step(program, state, instruction, pc, steps, observations)
            for obs in observations:
                run.observations.append(
                    HardwareObservation(
                        kind=obs.kind,
                        value=obs.value,
                        transient=False,
                        crypto=obs.crypto,
                        pc=obs.pc,
                    )
                )
            steps += 1
        run.state = state
        return run

    # ------------------------------------------------------------------ #
    # Speculation
    # ------------------------------------------------------------------ #
    def _maybe_speculate(
        self,
        program: Program,
        state: ArchState,
        instruction: Instruction,
        pc: int,
        attacker: AttackerStrategy,
        run: SpeculativeRun,
    ) -> None:
        correct_next = self._correct_next_pc(program, state, instruction, pc)
        is_crypto_branch = instruction.crypto or program.is_crypto_pc(pc)

        if self.mode == "cassandra" and is_crypto_branch:
            # Crypto fetch flow: the BTU enforces the contract trace, so the
            # attacker cannot induce any transient path here.
            return

        steered = attacker(pc, instruction, correct_next)
        if steered is None or steered == correct_next:
            return
        if not program.is_valid_pc(steered):
            return
        if self.mode == "cassandra" and program.is_crypto_pc(steered):
            # Non-crypto fetch flow integrity check: speculative redirection
            # into the crypto PC range is forbidden (fetch stalls instead).
            return

        # Transient execution on a copy of the architectural state.
        shadow = state.copy()
        shadow.pc = steered
        shadow.halted = False
        for depth in range(self.speculation_window):
            if shadow.halted or not program.is_valid_pc(shadow.pc):
                break
            shadow_pc = shadow.pc
            shadow_instruction = program.fetch(shadow_pc)
            observations: List[Observation] = []
            self._executor._step(
                program, shadow, shadow_instruction, shadow_pc, depth, observations
            )
            run.transient_instructions += 1
            for obs in observations:
                run.observations.append(
                    HardwareObservation(
                        kind=obs.kind,
                        value=obs.value,
                        transient=True,
                        crypto=obs.crypto,
                        pc=obs.pc,
                    )
                )
        run.squashes += 1

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _correct_next_pc(
        program: Program, state: ArchState, instruction: Instruction, pc: int
    ) -> int:
        """Architecturally correct successor of a branch (without side effects)."""
        opcode = instruction.opcode
        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            cond = state.read_reg(instruction.srcs[0])
            taken = (cond == 0) if opcode is Opcode.BEQZ else (cond != 0)
            return int(instruction.imm) if taken else pc + 1
        if opcode in (Opcode.JMP, Opcode.CALL):
            return int(instruction.imm)
        if opcode in (Opcode.JMPI, Opcode.CALLI):
            return state.read_reg(instruction.srcs[0])
        if opcode is Opcode.RET:
            return state.call_stack[-1] if state.call_stack else pc
        return pc + 1


def hardware_trace(
    program: Program,
    memory_input: Optional[MemoryInput] = None,
    mode: str = "unsafe",
    attacker: Optional[AttackerStrategy] = None,
    speculation_window: int = 48,
) -> List[Tuple[str, int, bool]]:
    """Convenience wrapper returning the attacker-visible trace of one run."""
    machine = SpeculativeMachine(mode=mode, speculation_window=speculation_window)
    return machine.run(program, memory_overrides=memory_input, attacker=attacker).attacker_view()
