"""Executable version of the paper's formal model (Appendix A).

* :mod:`repro.formal.contract` — contract traces (⟦·⟧ct^seq), the crypto
  control-flow trace C, and the contract-satisfaction check of Definition 3.
* :mod:`repro.formal.speculative` — a speculative hardware semantics with an
  attacker-controlled branch predictor and, under the Cassandra semantics, a
  trace cache that pins crypto fetch redirection to the contract trace.  This
  is the machine the security experiments (Table 2, Spectre-v1) run on; it is
  execution driven (it really follows wrong paths), unlike the trace-driven
  timing model.
"""

from repro.formal.contract import (
    contract_trace,
    crypto_cf_trace,
    contracts_agree,
    check_contract_satisfaction,
)
from repro.formal.speculative import (
    AttackerStrategy,
    HardwareObservation,
    SpeculativeMachine,
    SpeculativeRun,
)

__all__ = [
    "contract_trace",
    "crypto_cf_trace",
    "contracts_agree",
    "check_contract_satisfaction",
    "AttackerStrategy",
    "HardwareObservation",
    "SpeculativeMachine",
    "SpeculativeRun",
]
