"""Contract traces and contract satisfaction (Definitions 1-3, Theorem 1)."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.executor import SequentialExecutor
from repro.arch.observations import (
    Observation,
    crypto_control_flow_trace,
    ct_trace,
)
from repro.isa.program import Program

MemoryInput = Mapping[int, int]


def contract_trace(program: Program, memory_input: Optional[MemoryInput] = None) -> List[Observation]:
    """The ⟦·⟧ct^seq contract trace of a program for one input.

    The sequential executor produces the full observation stream; the
    constant-time leakage model keeps control flow and memory addresses and
    drops values.
    """
    executor = SequentialExecutor(record_dynamic=False)
    result = executor.run(program, memory_overrides=dict(memory_input or {}))
    return ct_trace(result.observations)


def crypto_cf_trace(program: Program, memory_input: Optional[MemoryInput] = None) -> List[Observation]:
    """The crypto control-flow trace C (Definition 1)."""
    executor = SequentialExecutor(record_dynamic=False)
    result = executor.run(program, memory_overrides=dict(memory_input or {}))
    return crypto_control_flow_trace(result.observations)


def _observable(trace: Sequence[Observation]) -> List[Tuple[str, int, bool]]:
    """Strip PCs so traces compare on (kind, value, crypto) as in the paper."""
    return [(obs.kind.value, obs.value, obs.crypto) for obs in trace]


def contracts_agree(
    program: Program, input_a: MemoryInput, input_b: MemoryInput
) -> bool:
    """Whether two initial states produce identical contract traces."""
    return _observable(contract_trace(program, input_a)) == _observable(
        contract_trace(program, input_b)
    )


def check_contract_satisfaction(
    program: Program,
    input_a: MemoryInput,
    input_b: MemoryInput,
    hardware_trace_fn: Callable[[Program, MemoryInput], Sequence],
) -> bool:
    """Definition 3: ⟦p⟧(σ) = ⟦p⟧(σ') ⇒ hardware traces are equal.

    ``hardware_trace_fn`` maps (program, input) to the attacker-visible
    hardware observation trace (e.g. produced by the speculative machine).
    Returns True when the implication holds for this pair of inputs; pairs
    whose contract traces already differ satisfy the implication trivially.
    """
    if not contracts_agree(program, input_a, input_b):
        return True
    trace_a = list(hardware_trace_fn(program, input_a))
    trace_b = list(hardware_trace_fn(program, input_b))
    return trace_a == trace_b
