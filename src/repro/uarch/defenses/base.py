"""Defense policy interface for the timing core."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.arch.executor import DynamicInstruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.uarch.core import CoreModel


class FetchMechanism(enum.Enum):
    """How the frontend obtained (or failed to obtain) a branch's target."""

    BPU = "bpu"
    BTU = "btu"
    SINGLE_TARGET = "single_target"
    STALL = "stall"


@dataclass
class BranchFetchOutcome:
    """The frontend consequence of one dynamic branch under a policy.

    Attributes
    ----------
    mechanism:
        Which unit redirected fetch.
    mispredicted:
        True when the speculatively chosen target was wrong (squash +
        redirect penalty is charged).
    stall_until_resolve:
        True when fetch must wait for the branch to resolve before
        continuing (no squash, but the frontend bubbles until resolution).
    extra_fetch_latency:
        Additional frontend latency (e.g. a BTU trace miss being filled).
    creates_speculation_window:
        True when younger instructions execute under an unresolved
        control-flow speculation (used by the issue-gating defenses).
    integrity_stall:
        True when the stall came from the crypto-PC-range integrity check of
        the non-crypto fetch flow (Scenario 5/6 in Table 2).
    """

    mechanism: FetchMechanism
    mispredicted: bool = False
    stall_until_resolve: bool = False
    extra_fetch_latency: int = 0
    creates_speculation_window: bool = False
    integrity_stall: bool = False


@dataclass(frozen=True)
class EnginePolicySpec:
    """A policy lowered to flags the columnar engine can execute inline.

    This is the index-based counterpart of the object hook protocol below:
    instead of calling ``gates_issue(dyn)`` / ``allow_store_forwarding(dyn)``
    / ``on_branch(dyn)`` per instruction, the engine tests ``gate_mask``
    against the lowered ``flags`` column, uses ``allow_store_forwarding`` as
    a loop constant, and selects its inline branch flow by ``kind``.

    Attributes
    ----------
    kind:
        ``"bpu"`` — every branch predicts through the BPU and opens a
        speculation window (unsafe / SPT / ProSpeCT behaviour); or
        ``"cassandra"`` — crypto branches take the BTU fetch flow, non-crypto
        branches take the BPU flow with the crypto-PC integrity check.
    gate_mask:
        Lowered flag bits (``repro.engine.lowering.F_*``) whose instructions
        must wait for older speculation windows to resolve before issuing.
    allow_store_forwarding:
        Whether loads may forward from in-flight stores.
    lite:
        Cassandra-lite: crypto branches are single-target or fetch-stall;
        the BTU is never consulted.
    """

    kind: str
    gate_mask: int = 0
    allow_store_forwarding: bool = True
    lite: bool = False

    @property
    def bpu_warm_class(self) -> str:
        """Which branch subsequence trains the BPU during warm-up."""
        return "noncrypto" if self.kind == "cassandra" else "all"

    @property
    def btu_warm_class(self) -> str:
        """Whether warm-up advances the BTU replay state."""
        return "replay" if self.kind == "cassandra" and not self.lite else "none"


class DefensePolicy:
    """Base class: the unsafe behaviour with every hook overridable."""

    #: Human-readable configuration name (used in experiment reports).
    name = "base"
    #: Whether the policy needs pre-computed traces (a TraceBundle) attached.
    requires_traces = False

    def attach(self, core: "CoreModel") -> None:
        """Called once by the core so the policy can reach shared units."""
        self.core = core

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        """The policy lowered for the columnar engine, or ``None``.

        Concrete policies return a spec *only for their exact type*: a
        subclass that overrides any object hook inherits the ``None``
        default and falls back to the object loop, so customized behaviour
        is never silently replaced by the built-in fast path.
        """
        return None

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def on_branch(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        """Decide how fetch proceeds past a dynamic branch."""
        raise NotImplementedError

    def gates_issue(self, dyn: DynamicInstruction) -> bool:
        """Whether ``dyn`` must wait for older speculation windows to resolve."""
        return False

    def allow_store_forwarding(self, dyn: DynamicInstruction) -> bool:
        """Whether a load may forward from an in-flight older store."""
        return True

    def on_commit(self, dyn: DynamicInstruction) -> None:
        """Called when an instruction commits (BTU checkpointing)."""

    def describe(self) -> str:
        return self.name
