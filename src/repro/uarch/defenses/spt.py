"""Speculative Privacy Tracking (SPT) as a comparison point (Section 7.2).

SPT [Choudhary et al., MICRO 2021] delays *transmitting* instructions whose
operands may carry secrets until they become non-speculative.  Under a
constant-time policy every architectural value is potentially secret, so the
relevant timing effect is that transmitters (loads, whose addresses form the
cache side channel) cannot execute while an older, unresolved control-flow
speculation is in flight.  The policy predicts every branch with the BPU and
applies that issue gate, which reproduces SPT's per-application overhead
pattern: cheap when branches resolve quickly, expensive when loads trail
long-latency branch conditions.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.executor import DynamicInstruction
from repro.engine.lowering import F_LEAK, F_LOAD
from repro.uarch.defenses.base import (
    BranchFetchOutcome,
    DefensePolicy,
    EnginePolicySpec,
    FetchMechanism,
)


class SptPolicy(DefensePolicy):
    """Delay transmitters until older speculation resolves."""

    name = "spt"
    requires_traces = False

    def __init__(self, protect_stl: bool = True) -> None:
        self.protect_stl = protect_stl

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not SptPolicy:
            return None
        return EnginePolicySpec(
            kind="bpu",
            gate_mask=F_LOAD | F_LEAK,
            allow_store_forwarding=not self.protect_stl,
        )

    def on_branch(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        predicted = self.core.bpu.predict(dyn)
        correct = self.core.bpu.update(dyn, predicted)
        return BranchFetchOutcome(
            mechanism=FetchMechanism.BPU,
            mispredicted=not correct,
            creates_speculation_window=True,
        )

    def gates_issue(self, dyn: DynamicInstruction) -> bool:
        # Loads are the transmitters in the ct leakage model: their addresses
        # reach the cache hierarchy.  LEAK models an explicit transmitter.
        return dyn.is_load or dyn.opcode.name == "LEAK"

    def allow_store_forwarding(self, dyn: DynamicInstruction) -> bool:
        return not self.protect_stl
