"""The Cassandra defense policies (Sections 5 and 8 of the paper).

* :class:`CassandraPolicy` — crypto branches are redirected by the Branch
  Trace Unit (single-target branches directly from their hint, multi-target
  branches by trace replay, input-dependent branches by a fetch stall); the
  branch predictor is neither accessed nor updated for crypto branches.
  Non-crypto branches still use the BPU, with the crypto-PC-range integrity
  check preventing speculative redirection into crypto code.  An optional
  store-to-load forwarding restriction turns the policy into the paper's
  ``Cassandra+STL`` configuration.
* :class:`CassandraLitePolicy` — the Q3 variant: only single-target branches
  are handled; every other crypto branch stalls fetch until it resolves.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.hints import BranchHint
from repro.analysis.tracegen import TraceBundle
from repro.arch.executor import DynamicInstruction
from repro.uarch.defenses.base import (
    BranchFetchOutcome,
    DefensePolicy,
    EnginePolicySpec,
    FetchMechanism,
)


class ReplayMismatchError(RuntimeError):
    """Raised when a BTU-replayed target disagrees with the sequential trace.

    This should never fire: it indicates a bug in the branch analysis or the
    trace lowering, and the test-suite treats it as a hard failure.
    """


class CassandraPolicy(DefensePolicy):
    """Record-and-replay fetch redirection for crypto branches."""

    name = "cassandra"
    requires_traces = True

    def __init__(self, bundle: TraceBundle, protect_stl: bool = False) -> None:
        self.bundle = bundle
        self.hint_table = bundle.hint_table
        self.protect_stl = protect_stl
        if protect_stl:
            self.name = "cassandra+stl"

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not CassandraPolicy:
            return None
        return EnginePolicySpec(
            kind="cassandra", allow_store_forwarding=not self.protect_stl
        )

    # ------------------------------------------------------------------ #
    # Fetch flows
    # ------------------------------------------------------------------ #
    def on_branch(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        if self._is_crypto_branch(dyn):
            return self._crypto_fetch_flow(dyn)
        return self._non_crypto_fetch_flow(dyn)

    def _is_crypto_branch(self, dyn: DynamicInstruction) -> bool:
        return dyn.crypto or self.hint_table.is_crypto_pc(dyn.pc)

    def _crypto_fetch_flow(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        """Section 5.3 crypto fetch flow: BTU replay, never the BPU."""
        hint: Optional[BranchHint] = self.hint_table.lookup(dyn.pc)
        stats = self.core.stats

        if hint is not None and hint.single_target:
            stats.single_target_branches += 1
            if hint.single_target_pc is not None and hint.single_target_pc != dyn.next_pc:
                raise ReplayMismatchError(
                    f"single-target hint for PC {dyn.pc} points at "
                    f"{hint.single_target_pc} but execution went to {dyn.next_pc}"
                )
            return BranchFetchOutcome(mechanism=FetchMechanism.SINGLE_TARGET)

        if hint is not None and hint.has_trace and self.core.btu.has_trace(dyn.pc):
            lookup = self.core.btu.lookup(dyn.pc)
            stats.btu_replayed += 1
            if not lookup.hit:
                stats.btu_misses += 1
            if lookup.prefetched:
                stats.btu_prefetches += 1
            if lookup.target != dyn.next_pc:
                raise ReplayMismatchError(
                    f"BTU replay for PC {dyn.pc} produced target {lookup.target} "
                    f"but the sequential execution went to {dyn.next_pc}"
                )
            return BranchFetchOutcome(
                mechanism=FetchMechanism.BTU,
                extra_fetch_latency=lookup.extra_latency,
            )

        # Input-dependent branch or missing trace: stall fetch until the
        # branch resolves (Section 4.3, footnote 4).
        stats.fetch_stall_branches += 1
        return BranchFetchOutcome(
            mechanism=FetchMechanism.STALL,
            stall_until_resolve=True,
        )

    def _non_crypto_fetch_flow(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        """Non-crypto branches predict normally, with the integrity check."""
        predicted = self.core.bpu.predict(dyn)
        correct = self.core.bpu.update(dyn, predicted)
        if self.hint_table.is_crypto_pc(predicted) or self.hint_table.is_crypto_pc(dyn.next_pc):
            # Speculative redirection into crypto code is forbidden: wait for
            # the branch to resolve instead (Scenarios 5 and 6 of Table 2).
            self.core.stats.integrity_stall_branches += 1
            return BranchFetchOutcome(
                mechanism=FetchMechanism.STALL,
                stall_until_resolve=True,
                integrity_stall=True,
            )
        return BranchFetchOutcome(
            mechanism=FetchMechanism.BPU,
            mispredicted=not correct,
            creates_speculation_window=True,
        )

    # ------------------------------------------------------------------ #
    # Other hooks
    # ------------------------------------------------------------------ #
    def allow_store_forwarding(self, dyn: DynamicInstruction) -> bool:
        return not self.protect_stl

    def on_commit(self, dyn: DynamicInstruction) -> None:
        if dyn.is_branch and self._is_crypto_branch(dyn):
            self.core.btu.commit(dyn.pc)


class CassandraLitePolicy(CassandraPolicy):
    """Cassandra-lite (Q3): single-target branches only, no BTU."""

    name = "cassandra-lite"

    def __init__(self, bundle: TraceBundle) -> None:
        super().__init__(bundle, protect_stl=False)
        self.name = "cassandra-lite"

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not CassandraLitePolicy:
            return None
        return EnginePolicySpec(kind="cassandra", lite=True)

    def _crypto_fetch_flow(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        hint = self.hint_table.lookup(dyn.pc)
        stats = self.core.stats
        if hint is not None and hint.single_target:
            stats.single_target_branches += 1
            return BranchFetchOutcome(mechanism=FetchMechanism.SINGLE_TARGET)
        stats.fetch_stall_branches += 1
        return BranchFetchOutcome(
            mechanism=FetchMechanism.STALL,
            stall_until_resolve=True,
        )
