"""The unprotected out-of-order baseline (``Unsafe Baseline`` in Figure 7)."""

from __future__ import annotations

from typing import Optional

from repro.arch.executor import DynamicInstruction
from repro.uarch.defenses.base import (
    BranchFetchOutcome,
    DefensePolicy,
    EnginePolicySpec,
    FetchMechanism,
)


class UnsafeBaseline(DefensePolicy):
    """Predict every branch with the BPU; no speculation restrictions."""

    name = "unsafe-baseline"
    requires_traces = False

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not UnsafeBaseline:
            return None
        return EnginePolicySpec(kind="bpu")

    def on_branch(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        predicted = self.core.bpu.predict(dyn)
        correct = self.core.bpu.update(dyn, predicted)
        return BranchFetchOutcome(
            mechanism=FetchMechanism.BPU,
            mispredicted=not correct,
            creates_speculation_window=True,
        )
