"""Defense design points evaluated in the paper (Figures 7 and 8).

Each defense is a :class:`~repro.uarch.defenses.base.DefensePolicy` plugged
into the timing core.  Policies decide, per dynamic branch, how fetch is
redirected (branch predictor, Branch Trace Unit replay, or a stall until the
branch resolves), whether store-to-load forwarding is permitted, and which
instructions must wait for older speculation to resolve before executing.
"""

from repro.uarch.defenses.base import BranchFetchOutcome, DefensePolicy, FetchMechanism
from repro.uarch.defenses.unsafe import UnsafeBaseline
from repro.uarch.defenses.cassandra import CassandraLitePolicy, CassandraPolicy
from repro.uarch.defenses.spt import SptPolicy
from repro.uarch.defenses.prospect import ProspectPolicy, CassandraProspectPolicy

__all__ = [
    "BranchFetchOutcome",
    "DefensePolicy",
    "FetchMechanism",
    "UnsafeBaseline",
    "CassandraPolicy",
    "CassandraLitePolicy",
    "SptPolicy",
    "ProspectPolicy",
    "CassandraProspectPolicy",
]
