"""ProSpeCT and Cassandra+ProSpeCT (Section 7.3 / Figure 8).

ProSpeCT [Daniel et al., USENIX Security 2023] annotates secret memory
regions and blocks the speculative execution of any instruction that is about
to process a secret: an instruction with a tainted operand may only execute
once it is no longer speculative (no older unresolved control-flow
speculation).  Register taint is derived architecturally by the sequential
executor (loads from secret regions taint their destination, taint propagates
through arithmetic, ``DECLASSIFY`` clears it), matching the paper's
implementation where destination registers of loads from secret regions are
taint sources and registers are declassified at the end of crypto primitives.

``CassandraProspectPolicy`` combines the two mechanisms exactly as Section
7.3 describes: Cassandra removes control-flow speculation from the crypto
component (crypto branches never create a speculation window), while
ProSpeCT continues to protect annotated secrets under the speculation windows
of the remaining non-crypto branches.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tracegen import TraceBundle
from repro.arch.executor import DynamicInstruction
from repro.engine.lowering import F_SECRET
from repro.isa.instructions import Opcode
from repro.uarch.defenses.base import (
    BranchFetchOutcome,
    DefensePolicy,
    EnginePolicySpec,
    FetchMechanism,
)
from repro.uarch.defenses.cassandra import CassandraPolicy


class ProspectPolicy(DefensePolicy):
    """Block speculative execution of instructions that process secrets.

    Following the paper's gem5 implementation of ProSpeCT (Section 7.3), an
    instruction is blocked when (1) it is speculative — an older control
    inducer is still unresolved — and (2) at least one of its operands is
    tainted.  Taint comes from the annotated secret memory regions, so the
    public-stack chacha20 benchmark has little to block while the
    secret-stack curve25519 benchmark loses its cross-iteration overlap
    (the Figure 8 contrast).
    """

    name = "prospect"
    requires_traces = False

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not ProspectPolicy:
            return None
        return EnginePolicySpec(kind="bpu", gate_mask=F_SECRET)

    def on_branch(self, dyn: DynamicInstruction) -> BranchFetchOutcome:
        predicted = self.core.bpu.predict(dyn)
        correct = self.core.bpu.update(dyn, predicted)
        return BranchFetchOutcome(
            mechanism=FetchMechanism.BPU,
            mispredicted=not correct,
            creates_speculation_window=True,
        )

    def gates_issue(self, dyn: DynamicInstruction) -> bool:
        return dyn.secret_operand


class CassandraProspectPolicy(CassandraPolicy):
    """Cassandra fetch redirection plus ProSpeCT issue gating."""

    name = "cassandra+prospect"
    requires_traces = True

    def __init__(self, bundle: TraceBundle) -> None:
        super().__init__(bundle, protect_stl=False)
        self.name = "cassandra+prospect"

    def engine_spec(self) -> Optional[EnginePolicySpec]:
        if type(self) is not CassandraProspectPolicy:
            return None
        return EnginePolicySpec(kind="cassandra", gate_mask=F_SECRET)

    def gates_issue(self, dyn: DynamicInstruction) -> bool:
        return dyn.secret_operand
