"""Set-associative cache models and the three-level hierarchy."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.uarch.config import CacheConfig, CoreConfig


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with LRU replacement.

    The model tracks tags only (no data); ``access`` returns whether the line
    hit and installs it on a miss.  Sets are stored sparsely (a defaultdict
    keyed by set index): the paper's L3 has tens of thousands of sets of
    which small kernels touch a handful, so dense per-set lists made cache
    construction and warm-state snapshots the dominant cost of a batched
    sweep.  An absent key and an empty way-list are equivalent.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: Dict[int, List[int]] = defaultdict(list)

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return index, tag

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit."""
        self.stats.accesses += 1
        index, tag = self._locate(address)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or statistics."""
        index, tag = self._locate(address)
        ways = self._sets.get(index)
        return ways is not None and tag in ways

    def flush(self) -> None:
        self._sets = defaultdict(list)

    def reset_stats(self) -> None:
        """Fresh counters, warmed contents (warm-up / measured passes)."""
        self.stats = CacheStats()

    def snapshot_state(self) -> Dict[int, List[int]]:
        """Copy the occupied sets (LRU order included); stats are excluded."""
        return {index: list(ways) for index, ways in self._sets.items() if ways}

    def restore_state(self, state: Dict[int, List[int]]) -> None:
        restored: Dict[int, List[int]] = defaultdict(list)
        for index, ways in state.items():
            restored[index] = list(ways)
        self._sets = restored


class CacheHierarchy:
    """L1D + L2 + L3 + memory, with additive miss latencies."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.l3 = Cache(config.l3)

    def load_latency(self, word_address: int) -> int:
        """Latency in cycles to satisfy a load of the given word address."""
        address = word_address * self.config.word_bytes
        latency = self.config.l1d.latency
        if self.l1d.access(address):
            return latency
        latency += self.config.l2.latency
        if self.l2.access(address):
            return latency
        latency += self.config.l3.latency
        if self.l3.access(address):
            return latency
        return latency + self.config.memory_latency

    def store_latency(self, word_address: int) -> int:
        """Stores install the line; commit-time latency is hidden by the SQ."""
        self.load_latency(word_address)
        return self.config.store_latency

    def flush(self) -> None:
        self.l1d.flush()
        self.l2.flush()
        self.l3.flush()

    def reset_stats(self) -> None:
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.l3.reset_stats()

    def snapshot_state(self) -> Tuple[Dict[int, List[int]], ...]:
        return (
            self.l1d.snapshot_state(),
            self.l2.snapshot_state(),
            self.l3.snapshot_state(),
        )

    def restore_state(self, state: Tuple[Dict[int, List[int]], ...]) -> None:
        self.l1d.restore_state(state[0])
        self.l2.restore_state(state[1])
        self.l3.restore_state(state[2])


class InstructionCache:
    """A lightweight L1I model charging miss latency per new line."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cache = Cache(config.l1i)
        #: Instruction "bytes" per ISA slot: assume 4-byte fixed encoding.
        self.instruction_bytes = 4

    def fetch_latency(self, pc: int) -> int:
        address = pc * self.instruction_bytes
        if self.cache.access(address):
            return 0
        # A miss goes to L2 in this simplified frontend model.
        return self.config.l2.latency

    def flush(self) -> None:
        self.cache.flush()

    def reset_stats(self) -> None:
        self.cache.reset_stats()

    def snapshot_state(self) -> Dict[int, List[int]]:
        return self.cache.snapshot_state()

    def restore_state(self, state: Dict[int, List[int]]) -> None:
        self.cache.restore_state(state)
