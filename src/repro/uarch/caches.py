"""Set-associative cache models and the three-level hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.uarch.config import CacheConfig, CoreConfig


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with LRU replacement.

    The model tracks tags only (no data); ``access`` returns whether the line
    hit and installs it on a miss.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return index, tag

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit."""
        self.stats.accesses += 1
        index, tag = self._locate(address)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or statistics."""
        index, tag = self._locate(address)
        return tag in self._sets[index]

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]


class CacheHierarchy:
    """L1D + L2 + L3 + memory, with additive miss latencies."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.l3 = Cache(config.l3)

    def load_latency(self, word_address: int) -> int:
        """Latency in cycles to satisfy a load of the given word address."""
        address = word_address * self.config.word_bytes
        latency = self.config.l1d.latency
        if self.l1d.access(address):
            return latency
        latency += self.config.l2.latency
        if self.l2.access(address):
            return latency
        latency += self.config.l3.latency
        if self.l3.access(address):
            return latency
        return latency + self.config.memory_latency

    def store_latency(self, word_address: int) -> int:
        """Stores install the line; commit-time latency is hidden by the SQ."""
        self.load_latency(word_address)
        return self.config.store_latency

    def flush(self) -> None:
        self.l1d.flush()
        self.l2.flush()
        self.l3.flush()


class InstructionCache:
    """A lightweight L1I model charging miss latency per new line."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.cache = Cache(config.l1i)
        #: Instruction "bytes" per ISA slot: assume 4-byte fixed encoding.
        self.instruction_bytes = 4

    def fetch_latency(self, pc: int) -> int:
        address = pc * self.instruction_bytes
        if self.cache.access(address):
            return 0
        # A miss goes to L2 in this simplified frontend model.
        return self.config.l2.latency

    def flush(self) -> None:
        self.cache.flush()
