"""Core, cache, and BTU configuration (the paper's Table 3).

Defaults model the Golden-Cove-like configuration of the paper: an 8-wide
machine with a 512-entry ROB, large load/store queues, an LTAGE-class branch
predictor (modelled as a generously sized gshare + BTB + RSB), 48 KB L1D,
32 KB L1I, 1.25 MB L2, and 30 MB L3.  The BTU has 16 entries in each of its
three tables with 16 elements per entry (1.74 KiB of storage).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Dict


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int
    latency: int
    name: str = "cache"

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.associativity)
        return max(sets, 1)


@dataclass(frozen=True)
class BtuConfig:
    """Branch Trace Unit sizing (Section 5.3 / Table 3)."""

    entries: int = 16
    elements_per_entry: int = 16
    #: Cycles to load a missing trace from the memory hierarchy into the BTU.
    miss_latency: int = 20
    #: Cycles to prefetch the next chunk of a long (>16 element) trace.
    prefetch_latency: int = 4

    @property
    def storage_bits(self) -> int:
        """Approximate storage: PAT (20b) + TRC (32b) + CPT (~52b) elements."""
        pattern_bits = self.entries * self.elements_per_entry * 20
        trace_bits = self.entries * self.elements_per_entry * 32
        checkpoint_bits = self.entries * 52
        return pattern_bits + trace_bits + checkpoint_bits


@dataclass(frozen=True)
class CoreConfig:
    """The simulated out-of-order core (Golden-Cove-like, Table 3)."""

    # Pipeline widths.
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8

    # Structure sizes.
    rob_size: int = 512
    iq_size: int = 96
    lq_size: int = 192
    sq_size: int = 114

    # Frontend depth: cycles between fetch and dispatch (rename included).
    frontend_depth: int = 6
    #: Extra cycles to restart fetch after a squash (redirect + refill).
    mispredict_penalty: int = 12
    #: Cycles from issue to resolution for a conditional branch.
    branch_resolve_latency: int = 1

    # Execution latencies by operation class.
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    store_latency: int = 1
    store_forward_latency: int = 2

    # Branch predictor sizing.
    pht_bits: int = 14
    btb_entries: int = 4096
    rsb_entries: int = 32
    global_history_bits: int = 14

    # Memory hierarchy.
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 64, 8, 5, name="L1I")
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(48 * 1024, 64, 12, 5, name="L1D")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1280 * 1024, 64, 16, 14, name="L2")
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(30 * 1024 * 1024, 64, 16, 40, name="L3")
    )
    memory_latency: int = 200

    # Branch Trace Unit.
    btu: BtuConfig = field(default_factory=BtuConfig)

    #: Word size of the ISA in bytes (used to map word addresses to cache lines).
    word_bytes: int = 8

    def identity(self) -> tuple:
        """A stable, hashable tuple covering every configuration field.

        Used as (part of) cache keys: two configs with equal identity must
        produce identical simulation results.  Frozen dataclasses already
        hash, but their ``hash()`` is not stable across processes; this tuple
        of plain values is, which the on-disk pipeline cache relies on.

        Computed once per instance: the fields are frozen, so the flattened
        tuple cannot change, and identity participates in every simulation
        key — point memos, scheduler claims, request sorting — where the
        recursive field walk would otherwise dominate the bookkeeping cost.
        """
        try:
            return object.__getattribute__(self, "_identity_cache")
        except AttributeError:
            value = config_identity(self)
            object.__setattr__(self, "_identity_cache", value)
            return value

    def digest(self) -> str:
        """A short stable hex digest of :meth:`identity` (cache-key material)."""
        try:
            return object.__getattribute__(self, "_digest_cache")
        except AttributeError:
            payload = repr(self.identity()).encode("utf-8")
            value = hashlib.sha256(payload).hexdigest()[:16]
            object.__setattr__(self, "_digest_cache", value)
            return value

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dict covering every field (nested configs too).

        The inverse of :meth:`from_dict`; the pair is what lets a
        :class:`~repro.api.request.SimulationRequest` round-trip through
        JSON (and hence cross process/host boundaries as plain text).
        """
        return config_as_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CoreConfig":
        """Rebuild a config from :meth:`as_dict` output (strict on keys)."""
        return config_from_dict(cls, payload)


#: CoreConfig fields holding nested config dataclasses, and their types.
_NESTED_CONFIG_FIELDS = {
    "l1i": CacheConfig,
    "l1d": CacheConfig,
    "l2": CacheConfig,
    "l3": CacheConfig,
    "btu": BtuConfig,
}


def config_as_dict(config: object) -> Dict[str, Any]:
    """Recursively flatten a config dataclass into plain JSON types."""
    payload: Dict[str, Any] = {}
    for f in fields(config):  # type: ignore[arg-type]
        value = getattr(config, f.name)
        if hasattr(value, "__dataclass_fields__"):
            value = config_as_dict(value)
        payload[f.name] = value
    return payload


def config_from_dict(cls, payload: Dict[str, Any]):
    """Rebuild ``cls`` from :func:`config_as_dict` output.

    Unknown keys are an error (a mistyped field must not silently become
    the default), and nested cache/BTU payloads are rebuilt into their
    frozen dataclasses so the result compares and hashes equal to the
    original.
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown {cls.__name__} field(s): {unknown!r}")
    kwargs: Dict[str, Any] = {}
    for name, value in payload.items():
        nested = _NESTED_CONFIG_FIELDS.get(name) if cls is CoreConfig else None
        if nested is not None and isinstance(value, dict):
            value = nested(**value)
        kwargs[name] = value
    return cls(**kwargs)


def config_identity(config: object) -> tuple:
    """Recursively flatten a (possibly nested) config dataclass to a tuple."""
    items = []
    for f in fields(config):  # type: ignore[arg-type]
        value = getattr(config, f.name)
        if hasattr(value, "__dataclass_fields__"):
            value = config_identity(value)
        items.append((f.name, value))
    return tuple(items)


#: The default configuration used throughout the evaluation.
GOLDEN_COVE_LIKE = CoreConfig()
