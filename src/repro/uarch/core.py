"""The out-of-order core timing model.

The model is trace driven: it walks the architecturally correct dynamic
instruction stream produced by the sequential executor and assigns each
instruction a fetch, dispatch, issue, completion, and commit cycle subject to
the machine's structural constraints (pipeline widths, ROB occupancy, cache
latencies, store-to-load forwarding) and to the active defense policy's
constraints (fetch redirection mechanism per branch, issue gating, forwarding
restrictions).  Wrong-path work is not simulated; its first-order cost — the
squash-and-refill penalty after a misprediction, and frontend bubbles while a
branch that may not be predicted resolves — is charged explicitly, which is
the behaviour the paper's evaluation depends on (crypto branches under
Cassandra never pay it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tracegen import TraceBundle
from repro.arch.executor import DynamicInstruction, ExecutionResult, SequentialExecutor
from repro.isa.instructions import Opcode
from repro.isa.program import Program
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.caches import CacheHierarchy, InstructionCache
from repro.uarch.config import GOLDEN_COVE_LIKE, CoreConfig
from repro.uarch.defenses.base import BranchFetchOutcome, DefensePolicy
from repro.uarch.defenses.unsafe import UnsafeBaseline
from repro.uarch.stats import PipelineStats

if False:  # pragma: no cover - typing only; the engine is imported lazily
    from repro.engine.lowering import LoweredTrace  # noqa: F401

# ``repro.engine`` is imported inside methods: the engine modules import the
# unit models from ``repro.uarch``, whose package __init__ imports this
# module, so a top-level import here would be circular.


@dataclass
class SimulationResult:
    """Outcome of one timing simulation."""

    program_name: str
    policy_name: str
    stats: PipelineStats
    config: CoreConfig

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def normalized_time(self, baseline: "SimulationResult") -> float:
        """Execution time normalized to a baseline run (Figure 7's metric)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles

    def as_dict(self) -> Dict[str, object]:
        """A JSON-able payload carrying the full result across the wire."""
        return {
            "program_name": self.program_name,
            "policy_name": self.policy_name,
            "stats": self.stats.as_dict(),
            "config": self.config.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`as_dict` output (the wire inverse)."""
        return cls(
            program_name=payload["program_name"],
            policy_name=payload["policy_name"],
            stats=PipelineStats.from_dict(payload["stats"]),
            config=CoreConfig.from_dict(payload["config"]),
        )


class CoreModel:
    """Cycle-accounting model of the Golden-Cove-like out-of-order core."""

    def __init__(
        self,
        config: CoreConfig = GOLDEN_COVE_LIKE,
        policy: Optional[DefensePolicy] = None,
        bundle: Optional[TraceBundle] = None,
        btu_flush_interval: Optional[int] = None,
    ) -> None:
        self.config = config
        self.policy = policy or UnsafeBaseline()
        self.bundle = bundle
        self.btu_flush_interval = btu_flush_interval

        self.bpu = BranchPredictionUnit(config)
        self.caches = CacheHierarchy(config)
        self.icache = InstructionCache(config)
        traces = bundle.hardware_traces() if bundle is not None else {}
        hint_table = bundle.hint_table if bundle is not None else None
        self.btu = BranchTraceUnit(config.btu, traces, hint_table)
        self.stats = PipelineStats()
        self.policy.attach(self)

        if self.policy.requires_traces and bundle is None:
            raise ValueError(
                f"policy {self.policy.name!r} requires a TraceBundle with branch traces"
            )

    def reset_stats(self) -> None:
        """Clear accumulated counters while keeping warmed predictor/cache state.

        Used for warm-up passes: the paper simulates SimPoint regions of warm
        steady-state execution, so measured passes here start with trained
        BPU/caches/BTU contents but fresh statistics.  Cache counters are
        reset too: the measured pass's ``l1d_miss_rate`` / ``l1i_miss_rate``
        must describe the measured pass alone, not aggregate the warm-up
        accesses (historically they did — see the regression test in
        ``tests/uarch/test_core_and_defenses.py``).
        """
        self.stats = PipelineStats()
        self.bpu.stats = type(self.bpu.stats)()
        self.btu.reset_stats()
        self.caches.reset_stats()
        self.icache.reset_stats()

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self, dynamic: Union[Sequence[DynamicInstruction], LoweredTrace]
    ) -> SimulationResult:
        """Simulate the dynamic instruction stream and return statistics.

        Policies that provide an :meth:`~repro.uarch.defenses.base.DefensePolicy.engine_spec`
        run on the columnar engine (lowering ``dynamic`` on the fly when it
        is not already a :class:`LoweredTrace`); any other policy — e.g. a
        user subclass overriding a hook — takes the object-based
        :meth:`run_reference` loop.  Both produce bit-identical results for
        the built-in policies, which the engine parity tests assert.
        """
        from repro.engine.engine import run_trace
        from repro.engine.lowering import LoweredTrace, lower_dynamic

        spec = self.policy.engine_spec()
        if spec is None:
            if isinstance(dynamic, LoweredTrace):
                raise TypeError(
                    f"policy {self.policy.name!r} has no engine spec and cannot "
                    "consume a LoweredTrace; pass the dynamic instruction list"
                )
            return self.run_reference(dynamic)
        trace = dynamic if isinstance(dynamic, LoweredTrace) else lower_dynamic(dynamic)
        hint_table = self.bundle.hint_table if self.bundle is not None else None
        run_trace(
            trace,
            self.config,
            spec,
            self.bpu,
            self.caches,
            self.icache,
            self.btu,
            hint_table,
            self.stats,
            btu_flush_interval=self.btu_flush_interval,
        )
        program_name = self.bundle.program.name if self.bundle is not None else "program"
        return SimulationResult(
            program_name=program_name,
            policy_name=self.policy.name,
            stats=self.stats,
            config=self.config,
        )

    # ------------------------------------------------------------------ #
    # Reference loop (object-based)
    # ------------------------------------------------------------------ #
    def run_reference(self, dynamic: Sequence[DynamicInstruction]) -> SimulationResult:
        """The object-based cycle-accounting loop (the engine's golden model).

        This is the original per-``DynamicInstruction`` implementation; it
        drives every policy through the full hook protocol and serves as the
        behavioural reference the columnar engine is tested against, and as
        the fallback for policies without an engine spec.
        """
        config = self.config
        stats = self.stats
        policy = self.policy

        # Per-register availability (idealised renaming: no false dependencies).
        reg_ready: Dict[str, int] = {}
        # Commit cycle of every instruction, used for the ROB occupancy limit.
        commit_cycles: List[int] = []
        # In-flight stores for store-to-load forwarding: addr -> (data_ready, commit).
        store_inflight: Dict[int, Tuple[int, int]] = {}

        # Frontend state.
        fetch_cycle = 0
        fetched_this_cycle = 0
        fetch_not_before = 0

        # Issue / commit bandwidth bookkeeping.
        issue_busy: Dict[int, int] = {}
        last_commit_cycle = 0
        committed_this_cycle = 0

        # Speculation window tracking for issue-gating defenses.
        window_resolve_cycle = 0

        # Periodic BTU flush (the Q4 interrupt experiment).
        next_btu_flush = self.btu_flush_interval if self.btu_flush_interval else None

        for dyn in dynamic:
            # ---------------------------- FETCH ---------------------------- #
            candidate = max(fetch_cycle, fetch_not_before)
            icache_delay = self.icache.fetch_latency(dyn.pc)
            if icache_delay:
                candidate += icache_delay
            if candidate > fetch_cycle:
                fetch_cycle = candidate
                fetched_this_cycle = 0
            if fetched_this_cycle >= config.fetch_width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            fetched_this_cycle += 1
            this_fetch = fetch_cycle
            stats.fetched_instructions += 1

            # ------------------------- DISPATCH ---------------------------- #
            dispatch_cycle = this_fetch + config.frontend_depth
            index = len(commit_cycles)
            if index >= config.rob_size:
                dispatch_cycle = max(dispatch_cycle, commit_cycles[index - config.rob_size])
            stats.renamed_instructions += 1

            # -------------------------- OPERANDS --------------------------- #
            ready = dispatch_cycle
            for src in dyn.srcs:
                producer_ready = reg_ready.get(src)
                if producer_ready is not None and producer_ready > ready:
                    ready = producer_ready

            # Memory access latency (loads) and store-to-load forwarding.
            exec_latency = self._latency(dyn)
            if dyn.is_load and dyn.mem_address is not None:
                stats.loads += 1
                inflight = store_inflight.get(dyn.mem_address)
                # A prior store only forwards while it still occupies the
                # store queue (it has not committed before this load reaches
                # the backend); older stores are served by the cache.
                if inflight is not None and inflight[1] <= dispatch_cycle:
                    inflight = None
                if inflight is not None:
                    data_ready, store_commit = inflight
                    if policy.allow_store_forwarding(dyn):
                        stats.store_forwards += 1
                        ready = max(ready, data_ready)
                        exec_latency = config.store_forward_latency
                    else:
                        stats.stl_blocked += 1
                        ready = max(ready, store_commit)
                        exec_latency = self.caches.load_latency(dyn.mem_address)
                else:
                    exec_latency = self.caches.load_latency(dyn.mem_address)
            elif dyn.is_store and dyn.mem_address is not None:
                stats.stores += 1

            # ------------------------ DEFENSE GATE -------------------------- #
            if policy.gates_issue(dyn) and window_resolve_cycle > ready:
                stats.delayed_instructions += 1
                stats.delay_cycles += window_resolve_cycle - ready
                ready = window_resolve_cycle

            # --------------------------- ISSUE ------------------------------ #
            issue_cycle = ready
            while issue_busy.get(issue_cycle, 0) >= config.issue_width:
                issue_cycle += 1
            issue_busy[issue_cycle] = issue_busy.get(issue_cycle, 0) + 1
            stats.issued_instructions += 1

            complete_cycle = issue_cycle + exec_latency

            if dyn.dst is not None:
                reg_ready[dyn.dst] = complete_cycle
            if dyn.is_store and dyn.mem_address is not None:
                self.caches.store_latency(dyn.mem_address)

            # --------------------------- COMMIT ----------------------------- #
            commit_cycle = max(complete_cycle + 1, last_commit_cycle)
            if commit_cycle == last_commit_cycle and committed_this_cycle >= config.commit_width:
                commit_cycle += 1
            if commit_cycle > last_commit_cycle:
                last_commit_cycle = commit_cycle
                committed_this_cycle = 0
            committed_this_cycle += 1
            commit_cycles.append(commit_cycle)
            stats.committed_instructions += 1
            if dyn.is_store and dyn.mem_address is not None:
                store_inflight[dyn.mem_address] = (complete_cycle, commit_cycle)
                if len(store_inflight) > config.sq_size:
                    store_inflight.pop(next(iter(store_inflight)))
            policy.on_commit(dyn)

            # -------------------------- BRANCHES ---------------------------- #
            if dyn.is_branch:
                stats.branches += 1
                if dyn.crypto:
                    stats.crypto_branches += 1
                resolve_cycle = complete_cycle
                outcome = policy.on_branch(dyn)
                self._account_branch(outcome, stats)

                if outcome.stall_until_resolve:
                    stall_target = resolve_cycle + 1
                    stats.fetch_stall_cycles += max(0, stall_target - this_fetch)
                    fetch_not_before = max(fetch_not_before, stall_target)
                elif outcome.mispredicted:
                    redirect = resolve_cycle + config.mispredict_penalty
                    stats.squash_cycles += max(0, redirect - this_fetch)
                    fetch_not_before = max(fetch_not_before, redirect)
                if outcome.extra_fetch_latency:
                    fetch_not_before = max(
                        fetch_not_before, this_fetch + outcome.extra_fetch_latency
                    )
                if outcome.creates_speculation_window:
                    window_resolve_cycle = max(window_resolve_cycle, resolve_cycle)

            # ----------------------- PERIODIC BTU FLUSH --------------------- #
            if next_btu_flush is not None and last_commit_cycle >= next_btu_flush:
                self.btu.flush()
                next_btu_flush += self.btu_flush_interval  # type: ignore[operator]

        stats.instructions = len(commit_cycles)
        stats.cycles = last_commit_cycle
        stats.bpu_predicted = self.bpu.stats.lookups
        stats.bpu_mispredicted = self.bpu.stats.total_mispredictions
        stats.extra["l1d_miss_rate"] = self.caches.l1d.stats.miss_rate
        stats.extra["l1i_miss_rate"] = self.icache.cache.stats.miss_rate
        stats.extra["btu_occupancy"] = self.btu.occupancy()

        program_name = self.bundle.program.name if self.bundle is not None else "program"
        return SimulationResult(
            program_name=program_name,
            policy_name=self.policy.name,
            stats=stats,
            config=self.config,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _latency(self, dyn: DynamicInstruction) -> int:
        opcode = dyn.opcode
        config = self.config
        if opcode is Opcode.MUL:
            return config.mul_latency
        if opcode in (Opcode.DIV, Opcode.MOD):
            return config.div_latency
        if opcode is Opcode.STORE:
            return config.store_latency
        if dyn.is_branch:
            return config.branch_resolve_latency
        return config.alu_latency

    @staticmethod
    def _account_branch(outcome: BranchFetchOutcome, stats: PipelineStats) -> None:
        if outcome.integrity_stall:
            stats.integrity_stall_branches += 1


def simulate(
    program: Program,
    policy: Optional[DefensePolicy] = None,
    config: CoreConfig = GOLDEN_COVE_LIKE,
    bundle: Optional[TraceBundle] = None,
    result: Optional[ExecutionResult] = None,
    memory_overrides: Optional[Dict[int, int]] = None,
    btu_flush_interval: Optional[int] = None,
    warmup_passes: int = 1,
    max_steps: int = 5_000_000,
) -> SimulationResult:
    """Convenience wrapper: execute ``program`` sequentially, then time it.

    Parameters
    ----------
    program:
        The program to simulate.
    policy:
        Defense policy (defaults to the unsafe baseline).
    bundle:
        Pre-computed trace bundle; required by Cassandra-family policies.
    result:
        A pre-computed sequential execution (re-used across policies so the
        functional work is done once per workload).
    btu_flush_interval:
        When set, the BTU is flushed every this-many cycles (the Q4
        interrupt experiment).
    warmup_passes:
        Number of untimed passes over the dynamic stream before the measured
        pass, so predictors and caches reach the warm steady state the paper
        measures (its SimPoint regions execute long after warm-up).
    """
    if result is None:
        executor = SequentialExecutor(max_steps=max_steps)
        result = executor.run(program, memory_overrides=memory_overrides)
    core = CoreModel(
        config=config,
        policy=policy,
        bundle=bundle,
        btu_flush_interval=btu_flush_interval,
    )
    # Lower once per ExecutionResult (memoized on the result) so warm-up and
    # measured passes — and every other policy sharing this execution —
    # reuse the columnar trace.  Policies without an engine spec walk the
    # object stream through the reference loop instead.
    from repro.engine.lowering import lower_execution

    stream: Union[Sequence[DynamicInstruction], "LoweredTrace"]
    if core.policy.engine_spec() is not None:
        stream = lower_execution(result)
    else:
        stream = result.dynamic
    for _ in range(max(warmup_passes, 0)):
        core.run(stream)
        core.reset_stats()
    simulation = core.run(stream)
    simulation.program_name = program.name
    return simulation
