"""Out-of-order core timing model, Branch Trace Unit, and defense policies.

The timing model is *trace driven*: the sequential executor produces the
architecturally correct dynamic instruction stream, and the core model
replays it through a cycle-accounting pipeline (fetch → dispatch → issue →
execute → commit) with a reorder buffer, load/store queue with store-to-load
forwarding, a gshare/BTB/RSB branch predictor, a three-level cache hierarchy,
and — for Cassandra configurations — the Branch Trace Unit of Section 5.
Wrong-path instructions are not simulated for timing; their first-order cost
(squash and frontend refill after a misprediction, fetch stalls while a
branch resolves) is charged explicitly.  Security experiments that need
wrong-path *semantics* use :mod:`repro.formal` and :mod:`repro.attacks`
instead.

Defense design points (the bars of Figures 7 and 8) are expressed as
:class:`~repro.uarch.defenses.base.DefensePolicy` objects that hook fetch
redirection, issue gating, and store-to-load forwarding.
"""

from repro.uarch.config import CoreConfig, CacheConfig, BtuConfig
from repro.uarch.core import CoreModel, SimulationResult, simulate
from repro.uarch.stats import PipelineStats

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "BtuConfig",
    "CoreModel",
    "SimulationResult",
    "simulate",
    "PipelineStats",
]
