"""Branch Prediction Unit: gshare PHT, BTB, and RSB.

The paper's baseline uses an LTAGE predictor; a well-sized gshare with a
large BTB and a return stack captures the behaviour that matters for the
evaluation — crypto loop branches predict well except at loop exits, returns
with multiple call sites occasionally mispredict, and indirect branches rely
on the BTB.  The unit also counts its accesses and updates so the power model
can charge (or, under Cassandra, avoid charging) BPU energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.executor import DynamicInstruction
from repro.isa.instructions import Opcode
from repro.uarch.config import CoreConfig


@dataclass
class BpuStats:
    """Access and outcome counters for the branch prediction unit."""

    lookups: int = 0
    updates: int = 0
    conditional_predictions: int = 0
    conditional_mispredictions: int = 0
    btb_lookups: int = 0
    btb_misses: int = 0
    rsb_predictions: int = 0
    rsb_mispredictions: int = 0
    indirect_mispredictions: int = 0

    @property
    def total_mispredictions(self) -> int:
        return (
            self.conditional_mispredictions
            + self.rsb_mispredictions
            + self.indirect_mispredictions
        )


class _LoopEntry:
    """Per-branch loop-trip tracking (the loop-predictor part of LTAGE)."""

    __slots__ = ("current_run", "last_trip", "confidence")

    def __init__(self) -> None:
        self.current_run = 0
        self.last_trip = -1
        self.confidence = 0


class BranchPredictionUnit:
    """A gshare + loop predictor + BTB + RSB unit.

    The paper's baseline uses LTAGE; the loop-predictor component matters for
    crypto code because fixed-trip loops dominate, so it is modelled
    explicitly: once a branch has exhibited the same trip count twice, its
    loop exit is predicted correctly.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._pht_size = 1 << config.pht_bits
        self._pht: List[int] = [2] * self._pht_size  # weakly taken
        self._history = 0
        self._history_mask = (1 << config.global_history_bits) - 1
        self._btb: Dict[int, int] = {}
        self._btb_entries = config.btb_entries
        self._rsb: List[int] = []
        self._rsb_entries = config.rsb_entries
        self._loops: Dict[int, _LoopEntry] = {}
        self.stats = BpuStats()

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _pht_index(self, pc: int) -> int:
        return (pc ^ self._history) & (self._pht_size - 1)

    def predict(self, dyn: DynamicInstruction) -> int:
        """Predict the next PC for a dynamic branch instruction."""
        self.stats.lookups += 1
        opcode = dyn.opcode
        pc = dyn.pc

        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            self.stats.conditional_predictions += 1
            taken = self._pht[self._pht_index(pc)] >= 2
            loop = self._loops.get(pc)
            if loop is not None and loop.confidence >= 2 and loop.last_trip >= 0:
                # Confident loop branch.  Loop-head branches in this ISA fall
                # through (not taken) for every body iteration and are taken
                # once at the exit, so predict "exit" exactly when the learned
                # trip count has been reached.
                taken = loop.current_run >= loop.last_trip
            if not taken:
                return pc + 1
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1  # cannot redirect without a target
            return target

        if opcode in (Opcode.JMP, Opcode.CALL):
            # Direct targets are available from the instruction bytes.
            if opcode is Opcode.CALL:
                self._push_rsb(pc + 1)
            return dyn.next_pc

        if opcode is Opcode.CALLI:
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            self._push_rsb(pc + 1)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1
            return target

        if opcode is Opcode.JMPI:
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1
            return target

        if opcode is Opcode.RET:
            self.stats.rsb_predictions += 1
            if self._rsb:
                return self._rsb.pop()
            return pc + 1

        return pc + 1  # pragma: no cover - non-branch opcodes

    # ------------------------------------------------------------------ #
    # Update (at branch resolution)
    # ------------------------------------------------------------------ #
    def update(self, dyn: DynamicInstruction, predicted: int) -> bool:
        """Train the predictor; returns True when the prediction was correct."""
        self.stats.updates += 1
        correct = predicted == dyn.next_pc
        opcode = dyn.opcode

        if opcode in (Opcode.BEQZ, Opcode.BNEZ):
            index = self._pht_index(dyn.pc)
            counter = self._pht[index]
            if dyn.taken:
                self._pht[index] = min(counter + 1, 3)
            else:
                self._pht[index] = max(counter - 1, 0)
            self._history = ((self._history << 1) | int(bool(dyn.taken))) & self._history_mask
            loop = self._loops.setdefault(dyn.pc, _LoopEntry())
            if dyn.taken:
                # Taken terminates the current body run (the loop exit).
                if loop.last_trip == loop.current_run:
                    loop.confidence = min(loop.confidence + 1, 7)
                else:
                    loop.confidence = 0
                    loop.last_trip = loop.current_run
                loop.current_run = 0
                self._btb_insert(dyn.pc, dyn.next_pc)
            else:
                loop.current_run += 1
            if not correct:
                self.stats.conditional_mispredictions += 1
        elif opcode in (Opcode.JMPI, Opcode.CALLI):
            self._btb_insert(dyn.pc, dyn.next_pc)
            if not correct:
                self.stats.indirect_mispredictions += 1
        elif opcode is Opcode.RET:
            if not correct:
                self.stats.rsb_mispredictions += 1
        return correct

    # ------------------------------------------------------------------ #
    # Internal structures
    # ------------------------------------------------------------------ #
    def _btb_insert(self, pc: int, target: int) -> None:
        if len(self._btb) >= self._btb_entries and pc not in self._btb:
            # Evict an arbitrary (oldest-inserted) entry.
            self._btb.pop(next(iter(self._btb)))
        self._btb[pc] = target

    def _push_rsb(self, return_pc: int) -> None:
        if len(self._rsb) >= self._rsb_entries:
            self._rsb.pop(0)
        self._rsb.append(return_pc)

    def flush(self) -> None:
        """Clear all predictor state (used by some experiments)."""
        self._pht = [2] * self._pht_size
        self._history = 0
        self._btb.clear()
        self._rsb.clear()
        self._loops.clear()
