"""Branch Prediction Unit: gshare PHT, BTB, and RSB.

The paper's baseline uses an LTAGE predictor; a well-sized gshare with a
large BTB and a return stack captures the behaviour that matters for the
evaluation — crypto loop branches predict well except at loop exits, returns
with multiple call sites occasionally mispredict, and indirect branches rely
on the BTB.  The unit also counts its accesses and updates so the power model
can charge (or, under Cassandra, avoid charging) BPU energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.executor import DynamicInstruction
from repro.engine.lowering import B_CALL, B_CALLI, B_COND, B_JMP, B_JMPI, B_RET, bclass_of
from repro.isa.instructions import Opcode
from repro.uarch.config import CoreConfig


@dataclass
class BpuStats:
    """Access and outcome counters for the branch prediction unit."""

    lookups: int = 0
    updates: int = 0
    conditional_predictions: int = 0
    conditional_mispredictions: int = 0
    btb_lookups: int = 0
    btb_misses: int = 0
    rsb_predictions: int = 0
    rsb_mispredictions: int = 0
    indirect_mispredictions: int = 0

    @property
    def total_mispredictions(self) -> int:
        return (
            self.conditional_mispredictions
            + self.rsb_mispredictions
            + self.indirect_mispredictions
        )


class _LoopEntry:
    """Per-branch loop-trip tracking (the loop-predictor part of LTAGE)."""

    __slots__ = ("current_run", "last_trip", "confidence")

    def __init__(self) -> None:
        self.current_run = 0
        self.last_trip = -1
        self.confidence = 0


class BranchPredictionUnit:
    """A gshare + loop predictor + BTB + RSB unit.

    The paper's baseline uses LTAGE; the loop-predictor component matters for
    crypto code because fixed-trip loops dominate, so it is modelled
    explicitly: once a branch has exhibited the same trip count twice, its
    loop exit is predicted correctly.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._pht_size = 1 << config.pht_bits
        self._pht: List[int] = [2] * self._pht_size  # weakly taken
        self._history = 0
        self._history_mask = (1 << config.global_history_bits) - 1
        self._btb: Dict[int, int] = {}
        self._btb_entries = config.btb_entries
        self._rsb: List[int] = []
        self._rsb_entries = config.rsb_entries
        self._loops: Dict[int, _LoopEntry] = {}
        self.stats = BpuStats()

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _pht_index(self, pc: int) -> int:
        return (pc ^ self._history) & (self._pht_size - 1)

    def predict(self, dyn: DynamicInstruction) -> int:
        """Predict the next PC for a dynamic branch instruction."""
        return self.predict_class(bclass_of(dyn.opcode), dyn.pc, dyn.next_pc)

    def predict_class(self, bclass: int, pc: int, next_pc: int) -> int:
        """Index-based prediction: the engine protocol over lowered columns.

        ``bclass`` is one of the ``B_*`` branch classes of
        :mod:`repro.engine.lowering`; behaviour is identical to the object
        form, which delegates here.
        """
        self.stats.lookups += 1

        if bclass == B_COND:
            self.stats.conditional_predictions += 1
            taken = self._pht[self._pht_index(pc)] >= 2
            loop = self._loops.get(pc)
            if loop is not None and loop.confidence >= 2 and loop.last_trip >= 0:
                # Confident loop branch.  Loop-head branches in this ISA fall
                # through (not taken) for every body iteration and are taken
                # once at the exit, so predict "exit" exactly when the learned
                # trip count has been reached.
                taken = loop.current_run >= loop.last_trip
            if not taken:
                return pc + 1
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1  # cannot redirect without a target
            return target

        if bclass == B_JMP or bclass == B_CALL:
            # Direct targets are available from the instruction bytes.
            if bclass == B_CALL:
                self._push_rsb(pc + 1)
            return next_pc

        if bclass == B_CALLI:
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            self._push_rsb(pc + 1)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1
            return target

        if bclass == B_JMPI:
            self.stats.btb_lookups += 1
            target = self._btb.get(pc)
            if target is None:
                self.stats.btb_misses += 1
                return pc + 1
            return target

        if bclass == B_RET:
            self.stats.rsb_predictions += 1
            if self._rsb:
                return self._rsb.pop()
            return pc + 1

        return pc + 1  # pragma: no cover - non-branch classes

    # ------------------------------------------------------------------ #
    # Update (at branch resolution)
    # ------------------------------------------------------------------ #
    def update(self, dyn: DynamicInstruction, predicted: int) -> bool:
        """Train the predictor; returns True when the prediction was correct."""
        return self.update_class(
            bclass_of(dyn.opcode), dyn.pc, dyn.next_pc, bool(dyn.taken), predicted
        )

    def update_class(
        self, bclass: int, pc: int, next_pc: int, taken: bool, predicted: int
    ) -> bool:
        """Index-based training; the object form delegates here."""
        self.stats.updates += 1
        correct = predicted == next_pc

        if bclass == B_COND:
            index = self._pht_index(pc)
            counter = self._pht[index]
            if taken:
                self._pht[index] = min(counter + 1, 3)
            else:
                self._pht[index] = max(counter - 1, 0)
            self._history = ((self._history << 1) | int(taken)) & self._history_mask
            loop = self._loops.setdefault(pc, _LoopEntry())
            if taken:
                # Taken terminates the current body run (the loop exit).
                if loop.last_trip == loop.current_run:
                    loop.confidence = min(loop.confidence + 1, 7)
                else:
                    loop.confidence = 0
                    loop.last_trip = loop.current_run
                loop.current_run = 0
                self._btb_insert(pc, next_pc)
            else:
                loop.current_run += 1
            if not correct:
                self.stats.conditional_mispredictions += 1
        elif bclass == B_JMPI or bclass == B_CALLI:
            self._btb_insert(pc, next_pc)
            if not correct:
                self.stats.indirect_mispredictions += 1
        elif bclass == B_RET:
            if not correct:
                self.stats.rsb_mispredictions += 1
        return correct

    # ------------------------------------------------------------------ #
    # Internal structures
    # ------------------------------------------------------------------ #
    def _btb_insert(self, pc: int, target: int) -> None:
        if len(self._btb) >= self._btb_entries and pc not in self._btb:
            # Evict an arbitrary (oldest-inserted) entry.
            self._btb.pop(next(iter(self._btb)))
        self._btb[pc] = target

    def _push_rsb(self, return_pc: int) -> None:
        if len(self._rsb) >= self._rsb_entries:
            self._rsb.pop(0)
        self._rsb.append(return_pc)

    def flush(self) -> None:
        """Clear all predictor state (used by some experiments)."""
        self._pht = [2] * self._pht_size
        self._history = 0
        self._btb.clear()
        self._rsb.clear()
        self._loops.clear()

    # ------------------------------------------------------------------ #
    # Warm-state snapshot / restore (shared warm-up across policies)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Tuple:
        """An immutable-enough copy of the predictor's trained state.

        Statistics are deliberately excluded: warm-up resets them anyway.
        """
        loops = {
            pc: (entry.current_run, entry.last_trip, entry.confidence)
            for pc, entry in self._loops.items()
        }
        return (list(self._pht), self._history, dict(self._btb), list(self._rsb), loops)

    def restore_state(self, state: Tuple) -> None:
        """Restore a snapshot taken by :meth:`snapshot_state`."""
        pht, history, btb, rsb, loops = state
        self._pht = list(pht)
        self._history = history
        self._btb = dict(btb)
        self._rsb = list(rsb)
        self._loops = {}
        for pc, (current_run, last_trip, confidence) in loops.items():
            entry = _LoopEntry()
            entry.current_run = current_run
            entry.last_trip = last_trip
            entry.confidence = confidence
            self._loops[pc] = entry
