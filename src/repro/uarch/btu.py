"""The Branch Trace Unit (Section 5 of the paper).

The BTU holds, per resident static branch, one Pattern Table entry, one Trace
Cache entry, and one Checkpoint Table entry.  During the crypto fetch flow it
supplies the next target for a crypto branch by replaying the branch's
compressed trace; on a miss the trace is loaded from its data page (charged
as :attr:`~repro.uarch.config.BtuConfig.miss_latency` cycles) and on long
traces the upcoming elements are prefetched as the head elements commit.

The timing model drives the BTU only along the architecturally correct path
(the trace-driven design never fetches wrong-path instructions), so the
checkpointed commit state is used for eviction/flush recovery rather than for
squash rollback; squash recovery is exercised separately by the formal model
in :mod:`repro.formal.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.hints import HintTable
from repro.analysis.representation import BTU_ENTRY_ELEMENTS, HardwareTrace
from repro.uarch.config import BtuConfig


@dataclass
class BtuStats:
    """Activity counters for the Branch Trace Unit."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetches: int = 0
    flushes: int = 0
    replay_wraps: int = 0


@dataclass
class BtuLookup:
    """Result of a crypto-branch lookup in the BTU."""

    target: int
    hit: bool
    extra_latency: int = 0
    prefetched: bool = False


@dataclass
class _ReplayState:
    """Replay progress of one branch, persistent across evictions (the CPT
    backing store in data pages)."""

    targets: List[int]
    element_ids: List[int]
    position: int = 0
    committed_position: int = 0

    def current(self) -> Tuple[int, int]:
        index = self.position % len(self.targets)
        return self.targets[index], self.element_ids[index]

    def advance(self) -> bool:
        """Move to the next target; returns True when the trace wrapped."""
        self.position += 1
        return self.position % len(self.targets) == 0


class BranchTraceUnit:
    """Replay engine for pre-computed sequential branch traces."""

    def __init__(
        self,
        config: BtuConfig,
        traces: Dict[int, HardwareTrace],
        hint_table: Optional[HintTable] = None,
    ) -> None:
        self.config = config
        self.hint_table = hint_table
        self.stats = BtuStats()
        self._states: Dict[int, _ReplayState] = {}
        self._resident: List[int] = []  # LRU order, most recent last
        for branch_pc, trace in traces.items():
            targets = trace.replay()
            if not targets:
                continue
            element_ids = self._element_ids(trace)
            self._states[branch_pc] = _ReplayState(targets=targets, element_ids=element_ids)
        self._long_trace: Dict[int, bool] = {
            pc: not trace.is_short_trace for pc, trace in traces.items()
        }

    @staticmethod
    def _element_ids(trace: HardwareTrace) -> List[int]:
        """Map each replayed target to the trace-element index that produced it."""
        ids: List[int] = []
        for element_index, element in enumerate(trace.trace_elements):
            if element.end_of_trace:
                continue
            window = trace.pattern_window(element)
            per_iteration = sum(p.repetitions for p in window)
            ids.extend([element_index] * (per_iteration * element.trace_counter))
        return ids

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_trace(self, branch_pc: int) -> bool:
        return branch_pc in self._states

    def is_resident(self, branch_pc: int) -> bool:
        return branch_pc in self._resident

    # ------------------------------------------------------------------ #
    # Crypto fetch flow
    # ------------------------------------------------------------------ #
    def lookup(self, branch_pc: int) -> BtuLookup:
        """Return the next enforced target for ``branch_pc``.

        Raises ``KeyError`` when the branch has no recorded trace (the caller
        must fall back to a fetch stall, per Section 4.3).
        """
        state = self._states[branch_pc]
        self.stats.lookups += 1

        extra_latency = 0
        hit = branch_pc in self._resident
        if hit:
            self.stats.hits += 1
            self._resident.remove(branch_pc)
            self._resident.append(branch_pc)
        else:
            self.stats.misses += 1
            extra_latency += self.config.miss_latency
            self._install(branch_pc)

        target, element_id = state.current()
        prefetched = False
        # Long traces shift/prefetch once the replay advances past the
        # elements resident in the single Trace Cache entry.
        if self._long_trace.get(branch_pc, False) and element_id >= self.config.elements_per_entry:
            if element_id % self.config.elements_per_entry == 0:
                prefetched = True
                self.stats.prefetches += 1
                extra_latency += self.config.prefetch_latency
        if state.advance():
            self.stats.replay_wraps += 1
        return BtuLookup(target=target, hit=hit, extra_latency=extra_latency, prefetched=prefetched)

    def commit(self, branch_pc: int) -> None:
        """Record committed progress in the Checkpoint Table."""
        state = self._states.get(branch_pc)
        if state is not None:
            state.committed_position = state.position

    def squash(self, branch_pc: int) -> None:
        """Undo fetch-flow progress back to the committed checkpoint."""
        state = self._states.get(branch_pc)
        if state is not None:
            state.position = state.committed_position

    # ------------------------------------------------------------------ #
    # Residency management
    # ------------------------------------------------------------------ #
    def _install(self, branch_pc: int) -> None:
        if len(self._resident) >= self.config.entries:
            evicted = self._resident.pop(0)
            self.stats.evictions += 1
            # The evicted branch's checkpoint is written back to memory; its
            # replay position is preserved in ``_states``.
            self.commit(evicted)
        self._resident.append(branch_pc)

    def flush(self) -> None:
        """Flush residency (context switch between crypto applications, Q4)."""
        self.stats.flushes += 1
        for branch_pc in self._resident:
            self.commit(branch_pc)
        self._resident.clear()

    # ------------------------------------------------------------------ #
    # Warm-state snapshot / restore (shared warm-up across policies)
    # ------------------------------------------------------------------ #
    def replay_data(self) -> Tuple[Dict[int, List[int]], Dict[int, List[int]], Dict[int, bool]]:
        """The immutable replay payload the generated kernels share.

        Returns ``(targets, element_ids, long_trace)`` keyed by branch PC —
        exactly the per-branch data this unit decompressed in its
        constructor.  The lists are the unit's own (they are never mutated
        after construction), so extracting them once per workload lets every
        simulation point reuse the expensive
        :meth:`~BranchTraceUnit._element_ids` walk instead of re-running it
        per point.
        """
        return (
            {pc: state.targets for pc, state in self._states.items()},
            {pc: state.element_ids for pc, state in self._states.items()},
            dict(self._long_trace),
        )

    def snapshot_state(self) -> Tuple[Dict[int, Tuple[int, int]], List[int]]:
        """Replay positions + residency; the (immutable) targets are shared."""
        positions = {
            pc: (state.position, state.committed_position)
            for pc, state in self._states.items()
        }
        return positions, list(self._resident)

    def restore_state(self, snapshot: Tuple[Dict[int, Tuple[int, int]], List[int]]) -> None:
        positions, resident = snapshot
        for pc, (position, committed) in positions.items():
            state = self._states[pc]
            state.position = position
            state.committed_position = committed
        self._resident = list(resident)

    def reset_stats(self) -> None:
        self.stats = BtuStats()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        return len(self._resident)

    def reset_replay(self) -> None:
        """Reset all replay positions (start of a fresh program run)."""
        for state in self._states.values():
            state.position = 0
            state.committed_position = 0
        self._resident.clear()
