"""Pipeline statistics collected by the timing model.

The counters double as the event inputs of the power model (Section 7.4):
BPU lookups avoided, BTU accesses added, fetch/rename/issue/commit activity,
and cache accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PipelineStats:
    """Aggregate counters for one simulation."""

    cycles: int = 0
    instructions: int = 0

    # Branch behaviour.
    branches: int = 0
    crypto_branches: int = 0
    bpu_predicted: int = 0
    bpu_mispredicted: int = 0
    btu_replayed: int = 0
    btu_misses: int = 0
    btu_prefetches: int = 0
    single_target_branches: int = 0
    fetch_stall_branches: int = 0
    integrity_stall_branches: int = 0
    squash_cycles: int = 0
    fetch_stall_cycles: int = 0

    # Memory behaviour.
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    stl_blocked: int = 0

    # Defense activity.
    delayed_instructions: int = 0
    delay_cycles: int = 0

    # Structure activity (power model inputs).
    fetched_instructions: int = 0
    renamed_instructions: int = 0
    issued_instructions: int = 0
    committed_instructions: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.bpu_mispredicted / self.branches if self.branches else 0.0

    def as_dict(self) -> Dict[str, float]:
        result = {
            name: getattr(self, name)
            for name in (
                "cycles",
                "instructions",
                "branches",
                "crypto_branches",
                "bpu_predicted",
                "bpu_mispredicted",
                "btu_replayed",
                "btu_misses",
                "btu_prefetches",
                "single_target_branches",
                "fetch_stall_branches",
                "integrity_stall_branches",
                "squash_cycles",
                "fetch_stall_cycles",
                "loads",
                "stores",
                "store_forwards",
                "stl_blocked",
                "delayed_instructions",
                "delay_cycles",
                "fetched_instructions",
                "renamed_instructions",
                "issued_instructions",
                "committed_instructions",
            )
        }
        result["ipc"] = self.ipc
        result.update(self.extra)
        return result
