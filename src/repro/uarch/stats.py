"""Pipeline statistics collected by the timing model.

The counters double as the event inputs of the power model (Section 7.4):
BPU lookups avoided, BTU accesses added, fetch/rename/issue/commit activity,
and cache accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class PipelineStats:
    """Aggregate counters for one simulation."""

    cycles: int = 0
    instructions: int = 0

    # Branch behaviour.
    branches: int = 0
    crypto_branches: int = 0
    bpu_predicted: int = 0
    bpu_mispredicted: int = 0
    btu_replayed: int = 0
    btu_misses: int = 0
    btu_prefetches: int = 0
    single_target_branches: int = 0
    fetch_stall_branches: int = 0
    integrity_stall_branches: int = 0
    squash_cycles: int = 0
    fetch_stall_cycles: int = 0

    # Memory behaviour.
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    stl_blocked: int = 0

    # Defense activity.
    delayed_instructions: int = 0
    delay_cycles: int = 0

    # Structure activity (power model inputs).
    fetched_instructions: int = 0
    renamed_instructions: int = 0
    issued_instructions: int = 0
    committed_instructions: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.bpu_mispredicted / self.branches if self.branches else 0.0

    # ``COUNTER_FIELDS`` — the counter names in declaration order (the
    # ``as_dict`` layout) — is attached right after the class body, derived
    # from the dataclass fields so a counter added later participates in
    # serialization automatically.  (It cannot be declared here: an
    # annotated class attribute would itself become a dataclass field.)

    def as_dict(self) -> Dict[str, float]:
        result = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        result["ipc"] = self.ipc
        result.update(self.extra)
        return result

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "PipelineStats":
        """Rebuild stats from :meth:`as_dict` output (the wire inverse).

        ``ipc`` is derived and ignored; unknown keys land back in
        :attr:`extra`, mirroring how ``as_dict`` flattened them out.
        """
        stats = cls()
        for key, value in payload.items():
            if key == "ipc":
                continue
            if key in cls.COUNTER_FIELDS:
                setattr(stats, key, value)
            else:
                stats.extra[key] = value
        return stats


#: Every plain counter (everything but the ``extra`` dict), in declaration
#: order — computed from the dataclass itself so the wire layout can never
#: silently drift from the fields.
PipelineStats.COUNTER_FIELDS = tuple(
    f.name for f in fields(PipelineStats) if f.name != "extra"
)
