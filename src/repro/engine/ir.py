"""The typed kernel IR behind the generated measured-pass kernels.

:mod:`repro.engine.kernels` used to build its specialized source by string
concatenation, which welded the *what* (the measured pass's structure and
its specializations) to the *how* (rendering CPython source).  This module
is the *what*: a small statement/expression tree plus the specialization
decisions as explicit, unit-testable transforms.  Emitters — today
:mod:`repro.engine.emit.python` (exec-compiled per-config source) and
:mod:`repro.engine.emit.columns` (the NumPy multi-config tier) — are the
*how*.

The IR is deliberately thin: kernel code is straight-line Python with
constant-folded arithmetic, so statements are literal lines (:class:`Line`)
grouped by :class:`Block` indentation, and the only structured expressions
are the ones a transform needs to rewrite (:class:`Mod`, :class:`Div`,
:class:`ScaledDiv` — the power-of-two folding sites).  Three node kinds
carry the specialization decisions:

* :class:`Guard` — a generation-time conditional on one boolean *feature*
  (``flush`` / ``icache_resident`` / ``dcache_resident`` / ``btu_elide`` /
  ``stats``), resolved by :func:`specialize`;
* :class:`Stat` — statements that exist only in statistics-collecting
  kernels, resolved by :func:`strip_stats` (warm-up kernels drop them);
* the pow2-foldable expressions, resolved by :func:`fold_pow2` into
  shift/mask nodes.

:func:`build_kernel_ir` constructs one tree per (spec × config) — the tree
still contains every Guard/Stat variant, so one build (cached per process)
serves all 2⁵ specializations — and :func:`lower_kernel` runs the transform
pipeline for one :class:`KernelFeatures` point, checking each transform's
postcondition:

    specialize   →  no Guard nodes remain
    strip_stats  →  no Stat nodes remain
    fold_pow2    →  no foldable Mod/Div/ScaledDiv remains

The python emitter renders the lowered tree into source that is
byte-identical to the historical string-concatenation generator — pinned by
the golden snapshots under ``tests/engine/golden/`` and by the fuzz parity
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec

#: The boolean features a :class:`Guard` may test.
FEATURES = ("flush", "icache_resident", "dcache_resident", "btu_elide", "stats")


def pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expr:
    """Base class for structured (transformable) expression parts.

    Every node renders to two syntaxes: :meth:`render` (Python source, the
    python emitter) and :meth:`render_c` (C source, the native emitter).
    Both targets only ever see non-negative operands, so C's
    truncating ``/`` and ``%`` agree with Python's ``//`` and ``%`` — the
    ``//`` spelling itself cannot be reused because ``//`` opens a comment
    in C.
    """

    def render(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def render_c(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Mod(Expr):
    """``var % n`` — foldable to a mask when ``n`` is a power of two.

    ``bare`` omits the surrounding parentheses (statement-RHS position).
    """

    var: str
    n: int
    bare: bool = False

    def render(self) -> str:
        text = f"{self.var} % {self.n}"
        return text if self.bare else f"({text})"

    def render_c(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Div(Expr):
    """``var // n`` — foldable to a right shift when ``n`` is a power of two."""

    var: str
    n: int

    def render(self) -> str:
        return f"({self.var} // {self.n})"

    def render_c(self) -> str:
        return f"({self.var} / {self.n})"


@dataclass(frozen=True)
class ScaledDiv(Expr):
    """``(var * scale) // line_bytes`` — the cache-line address expression."""

    var: str
    scale: int
    line_bytes: int

    def render(self) -> str:
        return f"(({self.var} * {self.scale}) // {self.line_bytes})"

    def render_c(self) -> str:
        return f"(({self.var} * {self.scale}) / {self.line_bytes})"


@dataclass(frozen=True)
class BitAnd(Expr):
    """``var & mask`` — the folded form of a power-of-two :class:`Mod`."""

    var: str
    mask: int
    bare: bool = False

    def render(self) -> str:
        text = f"{self.var} & {self.mask}"
        return text if self.bare else f"({text})"

    def render_c(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Shr(Expr):
    var: str
    k: int

    def render(self) -> str:
        return f"({self.var} >> {self.k})"

    def render_c(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Shl(Expr):
    var: str
    k: int

    def render(self) -> str:
        return f"({self.var} << {self.k})"

    def render_c(self) -> str:
        return self.render()


Part = Union[str, Expr]


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
class Stmt:
    """Base class for IR statements."""


@dataclass(frozen=True)
class Line(Stmt):
    """One source line: literal strings interleaved with expression nodes."""

    parts: Tuple[Part, ...]


@dataclass(frozen=True)
class Block(Stmt):
    """A statement group rendered ``indent`` levels deeper than its parent."""

    body: Tuple[Stmt, ...]
    indent: int = 0


@dataclass(frozen=True)
class Stat(Stmt):
    """Statements present only when the kernel collects statistics."""

    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Guard(Stmt):
    """A generation-time conditional on one boolean feature."""

    feature: str
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        if self.feature not in FEATURES:
            raise ValueError(f"unknown kernel feature {self.feature!r}")


def L(*parts: Part) -> Line:
    return Line(tuple(parts))


def lines(*texts: str) -> List[Stmt]:
    return [Line((text,)) for text in texts]


def stat(*texts: str) -> Stat:
    return Stat(tuple(lines(*texts)))


# --------------------------------------------------------------------------- #
# Features
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class KernelFeatures:
    """The resolved specialization point one emitted kernel implements.

    Derivation (not construction) is the API: :meth:`derive` applies the
    same semantics the string generator enforced — only trace-replaying
    (non-lite Cassandra) kernels have observable flush behaviour, and the
    BTU elision is only legal for a traced kernel without flushes.
    """

    flush: bool
    icache_resident: bool
    dcache_resident: bool
    btu_elide: bool
    stats: bool

    @classmethod
    def derive(
        cls,
        spec: EnginePolicySpec,
        flush_active: bool,
        icache_resident: bool = False,
        dcache_resident: bool = False,
        btu_elide: bool = False,
        collect_stats: bool = True,
    ) -> "KernelFeatures":
        traced = spec.kind == "cassandra" and not spec.lite
        flush = bool(flush_active) and traced
        if btu_elide and (not traced or flush):
            raise ValueError("btu_elide requires a traced kernel without flushes")
        return cls(
            flush=flush,
            icache_resident=bool(icache_resident),
            dcache_resident=bool(dcache_resident),
            btu_elide=bool(btu_elide),
            stats=bool(collect_stats),
        )

    def as_mapping(self) -> Dict[str, bool]:
        return {
            "flush": self.flush,
            "icache_resident": self.icache_resident,
            "dcache_resident": self.dcache_resident,
            "btu_elide": self.btu_elide,
            "stats": self.stats,
        }


# --------------------------------------------------------------------------- #
# Transforms
# --------------------------------------------------------------------------- #
def specialize(body: Sequence[Stmt], features: Dict[str, bool]) -> List[Stmt]:
    """Resolve every :class:`Guard` against ``features``.

    Postcondition: :func:`guard_features` of the result is empty.
    """
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Guard):
            arm = stmt.then if features[stmt.feature] else stmt.orelse
            out.extend(specialize(arm, features))
        elif isinstance(stmt, Block):
            out.append(Block(tuple(specialize(stmt.body, features)), stmt.indent))
        elif isinstance(stmt, Stat):
            out.append(Stat(tuple(specialize(stmt.body, features))))
        else:
            out.append(stmt)
    return out


def strip_stats(body: Sequence[Stmt], collect_stats: bool) -> List[Stmt]:
    """Unwrap (or drop) every :class:`Stat` marker.

    Postcondition: :func:`has_stats` of the result is False.
    """
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Stat):
            if collect_stats:
                out.extend(strip_stats(stmt.body, collect_stats))
        elif isinstance(stmt, Block):
            out.append(Block(tuple(strip_stats(stmt.body, collect_stats)), stmt.indent))
        elif isinstance(stmt, Guard):
            out.append(
                Guard(
                    stmt.feature,
                    tuple(strip_stats(stmt.then, collect_stats)),
                    tuple(strip_stats(stmt.orelse, collect_stats)),
                )
            )
        else:
            out.append(stmt)
    return out


def _fold_part(part: Part) -> Part:
    if isinstance(part, Mod) and pow2(part.n):
        return BitAnd(part.var, part.n - 1, part.bare)
    if isinstance(part, Div) and pow2(part.n):
        return Shr(part.var, part.n.bit_length() - 1)
    if isinstance(part, ScaledDiv) and pow2(part.scale) and pow2(part.line_bytes):
        shift = part.line_bytes.bit_length() - part.scale.bit_length()
        if shift > 0:
            return Shr(part.var, shift)
        if shift == 0:
            return part.var
        return Shl(part.var, -shift)
    return part


def fold_pow2(body: Sequence[Stmt]) -> List[Stmt]:
    """Fold power-of-two divisions/modulos into shifts and masks.

    Postcondition: :func:`foldable_sites` of the result is empty.
    """
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Line):
            out.append(Line(tuple(_fold_part(part) for part in stmt.parts)))
        elif isinstance(stmt, Block):
            out.append(Block(tuple(fold_pow2(stmt.body)), stmt.indent))
        elif isinstance(stmt, Stat):
            out.append(Stat(tuple(fold_pow2(stmt.body))))
        elif isinstance(stmt, Guard):
            out.append(
                Guard(
                    stmt.feature,
                    tuple(fold_pow2(stmt.then)),
                    tuple(fold_pow2(stmt.orelse)),
                )
            )
        else:  # pragma: no cover - no other statement kinds exist
            out.append(stmt)
    return out


# --------------------------------------------------------------------------- #
# Postcondition probes (used by lower_kernel and the unit tests)
# --------------------------------------------------------------------------- #
def guard_features(body: Sequence[Stmt]) -> List[str]:
    """Every Guard feature present in ``body`` (pre/postcondition probe)."""
    found: List[str] = []
    for stmt in body:
        if isinstance(stmt, Guard):
            found.append(stmt.feature)
            found.extend(guard_features(stmt.then))
            found.extend(guard_features(stmt.orelse))
        elif isinstance(stmt, Block):
            found.extend(guard_features(stmt.body))
        elif isinstance(stmt, Stat):
            found.extend(guard_features(stmt.body))
    return found


def has_stats(body: Sequence[Stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, Stat):
            return True
        if isinstance(stmt, Block) and has_stats(stmt.body):
            return True
        if isinstance(stmt, Guard) and (
            has_stats(stmt.then) or has_stats(stmt.orelse)
        ):
            return True
    return False


def foldable_sites(body: Sequence[Stmt]) -> List[Expr]:
    """Every pow2-foldable expression still present (postcondition probe)."""
    found: List[Expr] = []

    def probe_line(line: Line) -> None:
        for part in line.parts:
            if isinstance(part, Expr) and _fold_part(part) is not part:
                found.append(part)

    for stmt in body:
        if isinstance(stmt, Line):
            probe_line(stmt)
        elif isinstance(stmt, Block):
            found.extend(foldable_sites(stmt.body))
        elif isinstance(stmt, Stat):
            found.extend(foldable_sites(stmt.body))
        elif isinstance(stmt, Guard):
            found.extend(foldable_sites(stmt.then))
            found.extend(foldable_sites(stmt.orelse))
    return found


def lower_kernel(body: Sequence[Stmt], features: KernelFeatures) -> List[Stmt]:
    """Run the full transform pipeline for one specialization point."""
    specialized = specialize(body, features.as_mapping())
    remaining = guard_features(specialized)
    if remaining:  # pragma: no cover - transform invariant
        raise RuntimeError(f"specialize left guards behind: {remaining}")
    stripped = strip_stats(specialized, features.stats)
    if has_stats(stripped):  # pragma: no cover - transform invariant
        raise RuntimeError("strip_stats left Stat nodes behind")
    folded = fold_pow2(stripped)
    sites = foldable_sites(folded)
    if sites:  # pragma: no cover - transform invariant
        raise RuntimeError(f"fold_pow2 left foldable sites behind: {sites}")
    return folded


# --------------------------------------------------------------------------- #
# The kernel tree
# --------------------------------------------------------------------------- #
_IR_CACHE: Dict[Tuple[EnginePolicySpec, tuple], List[Stmt]] = {}


def build_kernel_ir(spec: EnginePolicySpec, config: CoreConfig) -> List[Stmt]:
    """The full measured-pass tree for one (spec × config) pair.

    Spec-level structure (Cassandra vs BPU flow, gate mask, forwarding) and
    config constants are resolved at build time — they change which code
    exists and which literals appear.  The five boolean axes stay in the
    tree as Guard/Stat variants, so one cached build serves every
    :class:`KernelFeatures` point.
    """
    key = (spec, config.identity())
    cached = _IR_CACHE.get(key)
    if cached is not None:
        return cached

    cassandra = spec.kind == "cassandra"
    lite = spec.lite
    traced = cassandra and not lite
    gate_mask = spec.gate_mask
    allow_fwd = spec.allow_store_forwarding
    l1i, l1d, l2, l3 = config.l1i, config.l1d, config.l2, config.l3
    rob = config.rob_size
    pht_mask = (1 << config.pht_bits) - 1
    hist_mask = (1 << config.global_history_bits) - 1
    # The memory/gate section only concerns loads and gated instructions:
    # store bookkeeping is post-commit and store counts are static, so the
    # umbrella test is F_LOAD plus the policy's gate bits.
    mg_mask = 1 | gate_mask

    body: List[Stmt] = []

    # ------------------------------ prologue ------------------------------ #
    body.append(
        Guard(
            "icache_resident",
            (),
            tuple(lines("l1i = state.l1i", "l1i_index = l1i.index")),
        )
    )
    body.append(
        Guard(
            "dcache_resident",
            (),
            tuple(
                lines(
                    "l1d = state.l1d",
                    "l1d_index = l1d.index",
                    "l2_sets = state.l2",
                    "l3_sets = state.l3",
                    "l2_get = l2_sets.get",
                    "l3_get = l3_sets.get",
                )
            ),
        )
    )
    body.extend(
        lines(
            "mem_col = trace.mem",
            "pcs_col = trace.pcs",
            "npcs_col = trace.next_pcs",
            "bcs_col = trace.bclass",
            "pht = state.pht",
            "history = state.history",
            "btb = state.btb",
            "btb_get = btb.get",
            "rsb = state.rsb",
            "loops = state.loops",
            "loops_get = loops.get",
        )
    )
    # The BTU checkpoint table (``btu_committed``) is never read by a
    # measured or warm-up pass — checkpoints only serve squash recovery and
    # eviction write-back inspection, neither of which is observable here —
    # so kernels do not maintain it at all.
    if cassandra:
        body.extend(lines("crypto_pcs_len = len(crypto_pcs)"))
        if not lite:
            body.extend(lines("stp_get = plan_stp.get"))
    if traced:
        body.extend(
            lines(
                "btu_pos = state.btu_pos",
                "btu_targets = state.btu_targets",
                "btu_eids = state.btu_eids",
                "btu_long = state.btu_long",
            )
        )
        body.append(
            Guard("btu_elide", (), tuple(lines("btu_resident = state.btu_resident")))
        )
    body.extend(
        lines(
            # One extra slot: dst == -1 writes reg_ready[-1] (never read).
            "reg_ready = [0] * (trace.num_regs + 1)",
            f"commit_ring = [0] * {rob}",
            "store_inflight = {}",
            "si_get = store_inflight.get",
            # defaultdict: a missed probe reads 0 via C-level __missing__, which
            # is cheaper than a bound .get call (absent and zero are equivalent).
            "issue_busy = __defaultdict_int()",
            "fetch_cycle = 0",
            "fetched_this_cycle = 0",
            "fetch_not_before = 0",
            "last_commit_cycle = 0",
            "committed_this_cycle = 0",
            "window_resolve_cycle = 0",
            "index = 0",
        )
    )
    body.append(Guard("flush", tuple(lines("next_btu_flush = btu_flush_interval"))))
    body.append(Guard("icache_resident", (), (stat("l1i_miss = 0"),)))
    body.append(Guard("dcache_resident", (), (stat("l1d_miss = 0"),)))
    if allow_fwd:
        body.append(stat("n_forwards = 0"))
    else:
        body.append(stat("n_stl_blocked = 0"))
    if gate_mask:
        body.append(stat("n_delayed = delay_cycles = 0"))
    body.append(stat("squash_cycles = fetch_stall_cycles = 0"))
    body.append(stat("n_cond_mis = n_rsb_mis = n_ind_mis = 0"))
    if cassandra:
        body.append(stat("n_integrity = 0"))
    if traced:
        body.append(stat("n_btu_misses = n_btu_prefetches = 0"))
    body.extend(lines("rows_head, rows_tail = rows"))

    # --------------------------- stage builders ---------------------------- #
    def fetch_stage() -> List[Stmt]:
        # Residency variant: no miss is possible, pure width bookkeeping.
        resident = lines(
            "if fetch_not_before > fetch_cycle:",
            "    fetch_cycle = fetch_not_before",
            "    fetched_this_cycle = 1",
            f"elif fetched_this_cycle >= {config.fetch_width}:",
            "    fetch_cycle += 1",
            "    fetched_this_cycle = 1",
            "else:",
            "    fetched_this_cycle += 1",
        )
        # InstructionCache uses 4-byte instruction slots.
        full: List[Stmt] = [
            L("pc = pcs_col[index]"),
            L(
                "candidate = fetch_cycle if fetch_cycle > fetch_not_before"
                " else fetch_not_before"
            ),
            L("line = ", ScaledDiv("pc", 4, l1i.line_bytes)),
            L(
                "seg_end = ",
                Mod("line", l1i.num_sets),
                f" * {l1i.associativity} + {l1i.associativity}",
            ),
            L("tag = ", Div("line", l1i.num_sets)),
            L("try:"),
            L(f"    i = l1i_index(tag, seg_end - {l1i.associativity}, seg_end)"),
            L("    del l1i[i]"),
            L("    l1i.insert(seg_end - 1, tag)"),
            L("except ValueError:"),
            Block((stat("l1i_miss += 1"),), 1),
            L(f"    del l1i[seg_end - {l1i.associativity}]"),
            L("    l1i.insert(seg_end - 1, tag)"),
            L(f"    candidate += {l2.latency}"),
        ]
        full.extend(
            lines(
                "if candidate > fetch_cycle:",
                "    fetch_cycle = candidate",
                "    fetched_this_cycle = 0",
                f"if fetched_this_cycle >= {config.fetch_width}:",
                "    fetch_cycle += 1",
                "    fetched_this_cycle = 0",
                "fetched_this_cycle += 1",
            )
        )
        return [Guard("icache_resident", tuple(resident), tuple(full))]

    def dispatch_stage(rob_active: bool) -> List[Stmt]:
        # ``ready`` starts as the dispatch cycle (fetch + frontend depth,
        # bounded by ROB occupancy).  The head loop covers the first
        # ``rob_size`` instructions, where the bound cannot apply and the
        # ring index is just ``index``; the tail reads the bound
        # unconditionally through a shared ring slot.
        out: List[Stmt] = [L(f"ready = fetch_cycle + {config.frontend_depth}")]
        if rob_active:
            out.append(L("ri = ", Mod("index", rob, bare=True)))
            out.extend(
                lines(
                    "bound = commit_ring[ri]",
                    "if bound > ready:",
                    "    ready = bound",
                )
            )
        return out

    def operand_stage() -> List[Stmt]:
        return lines(
            "if s0 >= 0:",
            "    t = reg_ready[s0]",
            "    if t > ready:",
            "        ready = t",
            "    if s1 >= 0:",
            "        t = reg_ready[s1]",
            "        if t > ready:",
            "            ready = t",
            "        if s2 >= 0:",
            "            t = reg_ready[s2]",
            "            if t > ready:",
            "                ready = t",
        )

    # ------------------------ cache-model builders -------------------------- #
    d_line = ScaledDiv("addr", config.word_bytes, l1d.line_bytes)
    l2_line = ScaledDiv("addr", config.word_bytes, l2.line_bytes)
    l3_line = ScaledDiv("addr", config.word_bytes, l3.line_bytes)

    def sparse_level(level: str, cfg, line_src: Expr, miss: List[Stmt]) -> List[Stmt]:
        """One sparse-dict cache level; ``miss`` statements run on a miss."""
        return [
            L(f"{level}_line = ", line_src),
            L(f"{level}_ways = {level}_get(", Mod(f"{level}_line", cfg.num_sets), ")"),
            L(f"{level}_tag = ", Div(f"{level}_line", cfg.num_sets)),
            L(f"if {level}_ways is None:"),
            L(
                f"    {level}_sets[",
                Mod(f"{level}_line", cfg.num_sets),
                f"] = [{level}_tag]",
            ),
            Block(tuple(miss), 1),
            L(f"elif {level}_tag in {level}_ways:"),
            L(f"    {level}_ways.remove({level}_tag)"),
            L(f"    {level}_ways.append({level}_tag)"),
            L("else:"),
            L(f"    {level}_ways.append({level}_tag)"),
            L(f"    if len({level}_ways) > {cfg.associativity}:"),
            L(f"        del {level}_ways[0]"),
            Block(tuple(miss), 1),
        ]

    def l2_l3_stage(load: bool) -> List[Stmt]:
        """L2 access whose miss arms charge L3 latency and fall to the L3."""

        def l3_level() -> List[Stmt]:
            miss = lines(f"exec_latency += {config.memory_latency}") if load else []
            return sparse_level("l3", l3, l3_line, miss)

        def l2_miss_arm() -> List[Stmt]:
            arm: List[Stmt] = []
            if load:
                arm.extend(lines(f"exec_latency += {l3.latency}"))
            arm.extend(l3_level())
            return arm

        out: List[Stmt] = [
            L("l2_line = ", l2_line),
            L("l2_ways = l2_get(", Mod("l2_line", l2.num_sets), ")"),
            L("l2_tag = ", Div("l2_line", l2.num_sets)),
            L("if l2_ways is None:"),
            L("    l2_sets[", Mod("l2_line", l2.num_sets), "] = [l2_tag]"),
            Block(tuple(l2_miss_arm()), 1),
        ]
        out.extend(
            lines(
                "elif l2_tag in l2_ways:",
                "    l2_ways.remove(l2_tag)",
                "    l2_ways.append(l2_tag)",
                "else:",
                "    l2_ways.append(l2_tag)",
                f"    if len(l2_ways) > {l2.associativity}:",
                "        del l2_ways[0]",
            )
        )
        out.append(Block(tuple(l2_miss_arm()), 1))
        return out

    def l1d_stage(load: bool) -> List[Stmt]:
        """One L1D access: residency-proved constant, or the full model."""
        resident = lines(f"exec_latency = {l1d.latency}") if load else []
        full: List[Stmt] = [
            L("line = ", d_line),
            L(
                "seg_end = ",
                Mod("line", l1d.num_sets),
                f" * {l1d.associativity} + {l1d.associativity}",
            ),
            L("tag = ", Div("line", l1d.num_sets)),
            L("try:"),
            L(f"    i = l1d_index(tag, seg_end - {l1d.associativity}, seg_end)"),
            L("    del l1d[i]"),
            L("    l1d.insert(seg_end - 1, tag)"),
        ]
        if load:
            full.append(Block(tuple(lines(f"exec_latency = {l1d.latency}")), 1))
        full.append(L("except ValueError:"))
        miss_arm: List[Stmt] = [stat("l1d_miss += 1")]
        miss_arm.extend(
            lines(
                f"del l1d[seg_end - {l1d.associativity}]",
                "l1d.insert(seg_end - 1, tag)",
            )
        )
        if load:
            miss_arm.extend(lines(f"exec_latency = {l1d.latency + l2.latency}"))
        miss_arm.extend(l2_l3_stage(load))
        full.append(Block(tuple(miss_arm), 1))
        return [Guard("dcache_resident", tuple(resident), tuple(full))]

    # --------------------------- pipeline stages ----------------------------- #
    def mem_gate_stage() -> List[Stmt]:
        """Load latency / forwarding / STL blocking and the issue gate."""
        out: List[Stmt] = [L(f"if fl & {mg_mask}:")]
        inner: List[Stmt] = [L("if fl & 1:")]  # F_LOAD
        load_body: List[Stmt] = lines(
            "addr = mem_col[index]",
            "inflight = si_get(addr)",
            "if inflight is not None and inflight[1] <= dispatch_cycle:",
            "    inflight = None",
        )
        if allow_fwd:
            load_body.append(L("if inflight is not None:"))
            fwd_arm: List[Stmt] = [stat("n_forwards += 1")]
            fwd_arm.extend(
                lines(
                    "t = inflight[0]",
                    "if t > ready:",
                    "    ready = t",
                    f"exec_latency = {config.store_forward_latency}",
                )
            )
            load_body.append(Block(tuple(fwd_arm), 1))
            load_body.append(L("else:"))
            load_body.append(Block(tuple(l1d_stage(load=True)), 1))
        else:
            load_body.append(L("if inflight is not None:"))
            stl_arm: List[Stmt] = [stat("n_stl_blocked += 1")]
            stl_arm.extend(
                lines(
                    "t = inflight[1]",
                    "if t > ready:",
                    "    ready = t",
                )
            )
            load_body.append(Block(tuple(stl_arm), 1))
            load_body.extend(l1d_stage(load=True))
        inner.append(Block(tuple(load_body), 1))
        if gate_mask:
            inner.append(L(f"if fl & {gate_mask} and window_resolve_cycle > ready:"))
            gate_arm: List[Stmt] = [
                stat(
                    "n_delayed += 1",
                    "delay_cycles += window_resolve_cycle - ready",
                )
            ]
            gate_arm.extend(lines("ready = window_resolve_cycle"))
            inner.append(Block(tuple(gate_arm), 1))
        out.append(Block(tuple(inner), 1))
        return out

    def issue_commit_stage(latency: str, ring_slot: str) -> List[Stmt]:
        """Issue bandwidth, register write-back, and commit bandwidth."""
        return lines(
            "issue_cycle = ready",
            "busy = issue_busy[issue_cycle]",
            f"while busy >= {config.issue_width}:",
            "    issue_cycle += 1",
            "    busy = issue_busy[issue_cycle]",
            "issue_busy[issue_cycle] = busy + 1",
            f"complete_cycle = issue_cycle + {latency}",
            "reg_ready[dst] = complete_cycle",
            "commit_cycle = complete_cycle + 1",
            "if commit_cycle > last_commit_cycle:",
            "    last_commit_cycle = commit_cycle",
            "    committed_this_cycle = 1",
            f"elif committed_this_cycle >= {config.commit_width}:",
            "    last_commit_cycle = commit_cycle = last_commit_cycle + 1",
            "    committed_this_cycle = 1",
            "else:",
            "    commit_cycle = last_commit_cycle",
            "    committed_this_cycle += 1",
            f"commit_ring[{ring_slot}] = commit_cycle",
            "index += 1",
        )

    def store_stage() -> List[Stmt]:
        """Store install + store-queue update under a single F_STORE test.

        The reference installs the store's line between register write-back
        and commit; nothing in between observes the caches, so merging the
        install with the store-queue update is state-equivalent.
        """
        inner: List[Stmt] = [L("addr = mem_col[i0]")]
        inner.extend(l1d_stage(load=False))
        inner.extend(
            lines(
                "store_inflight[addr] = (complete_cycle, commit_cycle)",
                f"if len(store_inflight) > {config.sq_size}:",
                "    del store_inflight[next(iter(store_inflight))]",
            )
        )
        return [L("if fl & 2:"), Block(tuple(inner), 1)]  # F_STORE

    def bpu_flow() -> List[Stmt]:
        """Inline BPU predict+update (flat state); leaves ``predicted``."""
        out: List[Stmt] = [L("taken = fl & 64")]  # F_TAKEN
        # B_COND — by far the most frequent class.
        out.extend(
            lines(
                "if bc == 1:",
                f"    pidx = (pc ^ history) & {pht_mask}",
                "    counter = pht[pidx]",
                "    loop = loops_get(pc)",
                "    if loop is not None and loop[2] >= 2 and loop[1] >= 0:",
                "        taken_pred = loop[0] >= loop[1]",
                "    else:",
                "        taken_pred = counter >= 2",
                "    if taken_pred:",
                "        predicted = btb_get(pc, -1)",
                "        if predicted < 0:",
                "            predicted = pc + 1",
                "    else:",
                "        predicted = pc + 1",
                # The reference updates the PHT, then the history, then the loop
                # entry; both taken arms preserve that order, merged so ``taken``
                # is tested once.
                "    if loop is None:",
                "        loop = loops[pc] = [0, -1, 0]",
                "    if taken:",
                "        pht[pidx] = counter + 1 if counter < 3 else 3",
                f"        history = ((history << 1) | 1) & {hist_mask}",
                "        if loop[1] == loop[0]:",
                "            c = loop[2]",
                "            loop[2] = c + 1 if c < 7 else 7",
                "        else:",
                "            loop[2] = 0",
                "            loop[1] = loop[0]",
                "        loop[0] = 0",
                f"        if pc not in btb and len(btb) >= {config.btb_entries}:",
                "            del btb[next(iter(btb))]",
                "        btb[pc] = npc",
                "    else:",
                "        pht[pidx] = counter - 1 if counter > 0 else 0",
                f"        history = (history << 1) & {hist_mask}",
                "        loop[0] += 1",
            )
        )
        out.append(
            stat(
                "    if predicted != npc:",
                "        n_cond_mis += 1",
            )
        )
        # B_JMP / B_CALL — direct targets, always correct.
        out.extend(
            lines(
                "elif bc == 2:",
                "    predicted = npc",
                "elif bc == 3:",
                f"    if len(rsb) >= {config.rsb_entries}:",
                "        del rsb[0]",
                "    rsb.append(pc + 1)",
                "    predicted = npc",
                # B_RET — pop the RSB.
                "elif bc == 6:",
                "    predicted = rsb.pop() if rsb else pc + 1",
            )
        )
        out.append(
            stat(
                "    if predicted != npc:",
                "        n_rsb_mis += 1",
            )
        )
        # B_CALLI — BTB lookup, RSB push, then BTB training.
        out.extend(
            lines(
                "elif bc == 4:",
                "    predicted = btb_get(pc, -1)",
                f"    if len(rsb) >= {config.rsb_entries}:",
                "        del rsb[0]",
                "    rsb.append(pc + 1)",
                "    if predicted < 0:",
                "        predicted = pc + 1",
                f"    if pc not in btb and len(btb) >= {config.btb_entries}:",
                "        del btb[next(iter(btb))]",
                "    btb[pc] = npc",
            )
        )
        out.append(
            stat(
                "    if predicted != npc:",
                "        n_ind_mis += 1",
            )
        )
        # B_JMPI — BTB lookup + training.
        out.extend(
            lines(
                "elif bc == 5:",
                "    predicted = btb_get(pc, -1)",
                "    if predicted < 0:",
                "        predicted = pc + 1",
                f"    if pc not in btb and len(btb) >= {config.btb_entries}:",
                "        del btb[next(iter(btb))]",
                "    btb[pc] = npc",
            )
        )
        out.append(
            stat(
                "    if predicted != npc:",
                "        n_ind_mis += 1",
            )
        )
        out.extend(
            lines(
                "else:",
                "    predicted = pc + 1",
            )
        )
        return out

    def bpu_outcome() -> List[Stmt]:
        """Mispredict redirect + speculation-window bookkeeping."""
        out: List[Stmt] = lines(
            "if predicted != npc:",
            f"    redirect = resolve_cycle + {config.mispredict_penalty}",
        )
        out.append(
            stat(
                "    d = redirect - fetch_cycle",
                "    if d > 0:",
                "        squash_cycles += d",
            )
        )
        out.extend(
            lines(
                "    if redirect > fetch_not_before:",
                "        fetch_not_before = redirect",
                "if resolve_cycle > window_resolve_cycle:",
                "    window_resolve_cycle = resolve_cycle",
            )
        )
        return out

    def fetch_stall() -> List[Stmt]:
        out: List[Stmt] = [L("stall_target = resolve_cycle + 1")]
        out.append(
            stat(
                "d = stall_target - fetch_cycle",
                "if d > 0:",
                "    fetch_stall_cycles += d",
            )
        )
        out.extend(
            lines(
                "if stall_target > fetch_not_before:",
                "    fetch_not_before = stall_target",
            )
        )
        return out

    def branch_stage() -> List[Stmt]:
        base: List[Stmt] = []
        base.append(
            Guard("icache_resident", tuple(lines("pc = pcs_col[i0]")), ())
        )
        base.extend(
            lines(
                "npc = npcs_col[i0]",
                "bc = bcs_col[i0]",
                "resolve_cycle = complete_cycle",
            )
        )
        if not cassandra:
            base.extend(bpu_flow())
            base.extend(bpu_outcome())
            return [L("if fl & 4:"), Block(tuple(base), 1)]  # F_BRANCH
        # The fetch-flow class is a static per-PC property, resolved by the
        # batch layer into ``plan_cls``.  The reference also checkpoints
        # crypto branches' BTU state at commit here, but the checkpoint
        # table is unobservable in a measured pass, so kernels omit it.
        base.extend(
            lines(
                "cls = plan_cls[pc]",
                "if cls == 0:",
            )
        )
        bpu_arm: List[Stmt] = list(bpu_flow())
        bpu_arm.append(
            L(
                "if (predicted < crypto_pcs_len and crypto_pcs[predicted])"
                " or crypto_pcs[npc]:"
            )
        )
        integrity_arm: List[Stmt] = [stat("n_integrity += 2")]
        integrity_arm.extend(fetch_stall())
        bpu_arm.append(Block(tuple(integrity_arm), 1))
        bpu_arm.append(L("else:"))
        bpu_arm.append(Block(tuple(bpu_outcome()), 1))
        base.append(Block(tuple(bpu_arm), 1))
        base.append(L("elif cls == 1:"))
        if not lite:
            base.append(
                Block(
                    tuple(
                        lines(
                            "stp = stp_get(pc)",
                            "if stp is not None and stp != npc:",
                            "    raise ReplayMismatchError(",
                            '        "single-target hint for PC %d points at %r but "',
                            '        "execution went to %d" % (pc, stp, npc)',
                            "    )",
                        )
                    ),
                    1,
                )
            )
        else:
            base.append(Block(tuple(lines("pass")), 1))
        if traced:
            # No eviction is possible (distinct traced branches fit the
            # BTU) and no flush is active, so a branch misses exactly
            # once — on its first lookup, recognizable as replay
            # position zero — and the LRU residency list needs no
            # maintenance at all.
            elide_arm: List[Stmt] = lines(
                "elif cls == 2:",
                "    pos = btu_pos[pc]",
                "    if pos:",
                "        extra = 0",
                "    else:",
            )
            elide_arm.append(Block((stat("n_btu_misses += 1"),), 2))
            elide_arm.append(
                Block(tuple(lines(f"extra = {config.btu.miss_latency}")), 2)
            )
            # Full residency model; evictions drop the LRU entry (the
            # reference also checkpoints the victim, which kernels omit
            # as unobservable).
            full_arm: List[Stmt] = lines(
                "elif cls == 2:",
                "    extra = 0",
                "    if pc in btu_resident:",
                "        btu_resident.remove(pc)",
                "        btu_resident.append(pc)",
                "    else:",
            )
            full_arm.append(Block((stat("n_btu_misses += 1"),), 2))
            full_arm.append(
                Block(
                    tuple(
                        lines(
                            f"extra = {config.btu.miss_latency}",
                            f"if len(btu_resident) >= {config.btu.entries}:",
                            "    del btu_resident[0]",
                            "btu_resident.append(pc)",
                        )
                    ),
                    2,
                )
            )
            full_arm.append(Block(tuple(lines("pos = btu_pos[pc]")), 1))
            base.append(Guard("btu_elide", tuple(elide_arm), tuple(full_arm)))
            epe = config.btu.elements_per_entry
            replay: List[Stmt] = lines(
                "targets = btu_targets[pc]",
                "tidx = pos % len(targets)",
                "target = targets[tidx]",
                "btu_pos[pc] = pos + 1",
                "if btu_long[pc]:",
                "    eid = btu_eids[pc][tidx]",
            )
            replay.append(
                L(f"    if eid >= {epe} and ", Mod("eid", epe), " == 0:")
            )
            replay.append(Block((stat("n_btu_prefetches += 1"),), 2))
            replay.extend(
                lines(
                    f"        extra += {config.btu.prefetch_latency}",
                    "if target != npc:",
                    "    raise ReplayMismatchError(",
                    '        "BTU replay for PC %d produced target %d but the "',
                    '        "sequential execution went to %d" % (pc, target, npc)',
                    "    )",
                    "if extra:",
                    "    t = fetch_cycle + extra",
                    "    if t > fetch_not_before:",
                    "        fetch_not_before = t",
                )
            )
            base.append(Block(tuple(replay), 1))
        base.append(L("else:"))
        base.append(Block(tuple(fetch_stall()), 1))
        return [L("if fl & 4:"), Block(tuple(base), 1)]  # F_BRANCH

    # -------------------------- instruction body ---------------------------- #
    # The premasked flags word is zero for pure ALU work, which skips the
    # memory, gate, store, and branch stages entirely; the operand-merge and
    # issue/commit blocks are duplicated into both arms so the fast path
    # carries no dead assignments (``dispatch_cycle`` and ``exec_latency``
    # exist only where the memory stage can read them).
    def instruction_body(rob_active: bool) -> List[Stmt]:
        ring_slot = "ri" if rob_active else "index"
        out: List[Stmt] = []
        out.extend(fetch_stage())
        out.extend(dispatch_stage(rob_active))
        out.append(L("if fl:"))
        slow: List[Stmt] = [L("dispatch_cycle = ready")]
        slow.extend(operand_stage())
        slow.append(L("exec_latency = lat"))
        slow.extend(mem_gate_stage())
        slow.append(L("i0 = index"))
        slow.extend(issue_commit_stage("exec_latency", ring_slot))
        slow.extend(store_stage())
        slow.extend(branch_stage())
        out.append(Block(tuple(slow), 1))
        out.append(L("else:"))
        fast: List[Stmt] = list(operand_stage())
        fast.extend(issue_commit_stage("lat", ring_slot))
        out.append(Block(tuple(fast), 1))
        # The reference also checkpoints every resident branch on a flush;
        # only the residency clear is observable (it re-triggers misses).
        out.append(
            Guard(
                "flush",
                tuple(
                    lines(
                        "if last_commit_cycle >= next_btu_flush:",
                        "    del btu_resident[:]",
                        "    next_btu_flush += btu_flush_interval",
                    )
                ),
            )
        )
        return out

    # ``rows`` arrives pre-split at the ROB boundary: the head loop needs no
    # ROB-occupancy bound (nothing has committed ``rob_size`` back yet), the
    # tail reads it unconditionally.  Both unpack pre-zipped 6-tuples of the
    # per-instruction-hot columns; PC / next-PC / address / branch-class
    # columns are indexed on demand in the slow paths.  ``fl`` is the
    # premasked flags word (see :func:`repro.engine.kernels.relevant_flag_mask`):
    # zero means "pure ALU work", the loop's fast path.
    body.append(L("for dst, s0, s1, s2, fl, lat in rows_head:"))
    body.append(Block(tuple(instruction_body(rob_active=False)), 1))
    body.append(L("for dst, s0, s1, s2, fl, lat in rows_tail:"))
    body.append(Block(tuple(instruction_body(rob_active=True)), 1))

    # ------------------------------ epilogue -------------------------------- #
    body.append(L("state.history = history"))

    def counter_line(name: str, value: str) -> Line:
        return L(f'    "{name}": {value},')

    return_block: List[Stmt] = [L("return {")]
    return_block.append(counter_line("cycles", "last_commit_cycle"))
    return_block.append(
        counter_line("store_forwards", "n_forwards" if allow_fwd else "0")
    )
    return_block.append(
        counter_line("stl_blocked", "0" if allow_fwd else "n_stl_blocked")
    )
    return_block.append(
        counter_line("delayed_instructions", "n_delayed" if gate_mask else "0")
    )
    return_block.append(
        counter_line("delay_cycles", "delay_cycles" if gate_mask else "0")
    )
    return_block.append(counter_line("squash_cycles", "squash_cycles"))
    return_block.append(counter_line("fetch_stall_cycles", "fetch_stall_cycles"))
    return_block.append(
        counter_line("integrity_stall_branches", "n_integrity" if cassandra else "0")
    )
    return_block.append(
        counter_line("btu_misses", "n_btu_misses" if traced else "0")
    )
    return_block.append(
        counter_line("btu_prefetches", "n_btu_prefetches" if traced else "0")
    )
    return_block.append(
        counter_line("bpu_mispredicted", "n_cond_mis + n_rsb_mis + n_ind_mis")
    )
    return_block.append(
        Guard(
            "icache_resident",
            (counter_line("l1i_miss", "0"),),
            (counter_line("l1i_miss", "l1i_miss"),),
        )
    )
    return_block.append(
        Guard(
            "dcache_resident",
            (counter_line("l1d_miss", "0"),),
            (counter_line("l1d_miss", "l1d_miss"),),
        )
    )
    # Occupancy = branches looked up and never evicted/flushed; in the
    # elided variant that is exactly "replay position advanced".
    if traced:
        return_block.append(
            Guard(
                "btu_elide",
                (counter_line("btu_occupancy", "sum(1 for v in btu_pos.values() if v)"),),
                (counter_line("btu_occupancy", "len(btu_resident)"),),
            )
        )
    else:
        return_block.append(counter_line("btu_occupancy", "0"))
    return_block.append(L("}"))
    body.append(
        Guard("stats", tuple(return_block), tuple(lines("return None")))
    )

    tree: List[Stmt] = [
        L(
            "def kernel(trace, state, rows, crypto_pcs, plan_cls, plan_stp,"
            " btu_flush_interval):"
        ),
        Block(tuple(body), 1),
    ]
    _IR_CACHE[key] = tree
    return tree


def clear_ir_cache() -> None:
    """Drop every cached kernel tree (test isolation helper)."""
    _IR_CACHE.clear()
