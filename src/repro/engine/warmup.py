"""Shared warm-state construction for batched simulation.

The legacy path re-simulates the full timing model once per policy just to
warm the predictors and caches before the measured pass.  But the warm state
a warm-up pass leaves behind decomposes into four independent components,
each of which evolves as a pure function of the *program-order* event
sequence — not of cycle timing:

* **L1I** — accessed once per instruction, in program order, by every
  policy: one shared replay serves all points.
* **L1D/L2/L3** — accessed per load and store in program order.  Timing
  enters only through store-to-load forwarding, which may skip a forwarded
  load's cache access.  Skipping is invisible to the warm state unless some
  *other* access touches the same L1D set between the store and the
  forwarded load (only then can the skipped recency refresh change an LRU
  eviction).  :meth:`WarmStateBuilder.forwarding_shareable` detects that
  condition exactly, in program order, once per (workload × config); when
  it triggers, forwarding-allowed policies fall back to private full
  warm-up passes (on the engine) instead of the shared snapshot, so the
  bit-parity guarantee holds for arbitrary programs, not just the quick
  suite.
* **BPU** — trained on the branch subsequence a policy predicts: every
  branch for BPU-kind policies, the non-crypto subsequence for the
  Cassandra family.  Two shared replays cover all built-in policies.
* **BTU** — advanced per traced crypto branch by the Cassandra fetch flow
  (commit checkpoint, then trace replay), untouched by everything else.

:class:`WarmStateBuilder` computes each (component, class, passes) snapshot
at most once per (workload × config) and restores it into any number of
per-point unit instances.  The only warm-up that cannot be shared is a BTU
whose periodic flush interval is active — flush points are cycle-triggered,
so those points run private full warm-up passes through the engine instead
(see :mod:`repro.engine.batch`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.hints import HintTable
from repro.engine.engine import (
    _CLS_SINGLE,
    _CLS_STALL,
    _CLS_TRACED,
    _classify_cassandra_branch,
    crypto_pc_table,
)
from repro.engine.lowering import F_BRANCH, F_CRYPTO, F_LOAD, F_TAKEN, LoweredTrace
from repro.engine.state import (
    FlatState,
    flat_bpu_from_snapshot,
    flat_btu_from_snapshot,
    flat_cache_from_sets,
)
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.caches import CacheHierarchy, InstructionCache
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec


class WarmStateBuilder:
    """Shared warm-up components for one (lowered trace, config) pair."""

    def __init__(
        self,
        trace: LoweredTrace,
        config: CoreConfig,
        hint_table: Optional[HintTable] = None,
        btu_factory: Optional[Callable[[], BranchTraceUnit]] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.hint_table = hint_table
        self.btu_factory = btu_factory
        #: Number of trace-order replay walks executed (one per component
        #: class actually needed; the sharing tests assert this stays small).
        self.component_walks = 0
        self._snapshots: Dict[Tuple[str, str, int], object] = {}
        self._rows_ready = False
        self._branch_rows: List[Tuple[int, int, int, bool, bool]] = []
        self._mem_rows: List[Tuple[bool, int]] = []
        self._forwarding_shareable: Optional[bool] = None
        self._icache_resident: Optional[bool] = None
        self._dcache_resident: Optional[bool] = None

    # ------------------------------------------------------------------ #
    # Event-row extraction (one pass over the columns, shared by replays)
    # ------------------------------------------------------------------ #
    def _rows(self) -> None:
        if self._rows_ready:
            return
        trace = self.trace
        crypto_pcs = crypto_pc_table(self.hint_table, trace.max_pc)
        branch_rows = self._branch_rows
        mem_rows = self._mem_rows
        for pc, npc, fl, bc in zip(trace.pcs, trace.next_pcs, trace.flags, trace.bclass):
            if fl & F_BRANCH:
                is_crypto = bool(fl & F_CRYPTO) or bool(crypto_pcs[pc])
                branch_rows.append((bc, pc, npc, (fl & F_TAKEN) != 0, is_crypto))
        for fl, addr in zip(trace.flags, trace.mem):
            if addr >= 0:
                mem_rows.append(((fl & F_LOAD) != 0, addr))
        self._rows_ready = True

    # ------------------------------------------------------------------ #
    # Component snapshots
    # ------------------------------------------------------------------ #
    def _snapshot(self, component: str, cls: str, passes: int, compute) -> object:
        key = (component, cls, passes)
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            snapshot = compute()
            self._snapshots[key] = snapshot
        return snapshot

    def _icache_state(self, passes: int):
        def compute():
            unit = InstructionCache(self.config)
            fetch = unit.fetch_latency
            pcs = self.trace.pcs
            for _ in range(passes):
                self.component_walks += 1
                for pc in pcs:
                    fetch(pc)
            return unit.snapshot_state()

        return self._snapshot("icache", "seq", passes, compute)

    def _dcache_state(self, passes: int):
        def compute():
            self._rows()
            unit = CacheHierarchy(self.config)
            load = unit.load_latency
            store = unit.store_latency
            rows = self._mem_rows
            for _ in range(passes):
                self.component_walks += 1
                for is_load, addr in rows:
                    if is_load:
                        load(addr)
                    else:
                        store(addr)
            return unit.snapshot_state()

        return self._snapshot("dcache", "seq", passes, compute)

    def _bpu_state(self, cls: str, passes: int):
        def compute():
            self._rows()
            unit = BranchPredictionUnit(self.config)
            predict = unit.predict_class
            update = unit.update_class
            rows = self._branch_rows
            crypto_filtered = cls == "noncrypto"
            for _ in range(passes):
                self.component_walks += 1
                for bc, pc, npc, taken, is_crypto in rows:
                    if crypto_filtered and is_crypto:
                        continue
                    update(bc, pc, npc, taken, predict(bc, pc, npc))
            return unit.snapshot_state()

        return self._snapshot("bpu", cls, passes, compute)

    def _btu_state(self, passes: int):
        def compute():
            if self.btu_factory is None or self.hint_table is None:
                raise ValueError("BTU warm-up needs a btu_factory and a hint table")
            self._rows()
            unit = self.btu_factory()
            hint_table = self.hint_table
            crypto_pcs = crypto_pc_table(self.hint_table, self.trace.max_pc)
            plans: Dict[int, int] = {}
            rows = self._branch_rows
            for _ in range(passes):
                self.component_walks += 1
                for bc, pc, npc, taken, is_crypto in rows:
                    if not is_crypto:
                        continue
                    # The reference loop checkpoints at commit *before* the
                    # fetch flow replays the branch.
                    unit.commit(pc)
                    plan = plans.get(pc)
                    if plan is None:
                        plan, _ = _classify_cassandra_branch(
                            pc, F_CRYPTO, crypto_pcs, hint_table, unit, lite=False
                        )
                        plans[pc] = plan
                    if plan == _CLS_TRACED:
                        unit.lookup(pc)
            return unit.snapshot_state()

        return self._snapshot("btu", "replay", passes, compute)

    # ------------------------------------------------------------------ #
    # Flat conversions (the generated-kernel path)
    # ------------------------------------------------------------------ #
    # Each flat snapshot is derived from the corresponding object snapshot
    # (so the golden replay logic runs exactly once either way) and cached
    # under its own key; per-point restoration is then just array copies.
    def _flat_icache(self, passes: int):
        cfg = self.config.l1i
        return self._snapshot(
            "flat-icache",
            "seq",
            passes,
            lambda: flat_cache_from_sets(
                self._icache_state(passes), cfg.num_sets, cfg.associativity
            ),
        )

    def _flat_dcache(self, passes: int):
        def compute():
            l1d_sets, l2_sets, l3_sets = self._dcache_state(passes)
            cfg = self.config.l1d
            flat = flat_cache_from_sets(l1d_sets, cfg.num_sets, cfg.associativity)
            return (flat, l2_sets, l3_sets)

        return self._snapshot("flat-dcache", "seq", passes, compute)

    def _flat_bpu(self, cls: str, passes: int):
        return self._snapshot(
            "flat-bpu",
            cls,
            passes,
            lambda: flat_bpu_from_snapshot(self._bpu_state(cls, passes)),
        )

    def _flat_btu(self, passes: int):
        return self._snapshot(
            "flat-btu",
            "replay",
            passes,
            lambda: flat_btu_from_snapshot(self._btu_state(passes)),
        )

    def warm_flat(
        self,
        spec: EnginePolicySpec,
        passes: int,
        state: FlatState,
        need_icache: bool = True,
        need_dcache: bool = True,
    ) -> None:
        """Restore the shared warm state into a kernel's :class:`FlatState`.

        The flat counterpart of :meth:`warm_units`: identical component
        selection, identical snapshots underneath, restoration by cheap
        array/dict copies.  ``need_icache`` / ``need_dcache`` are cleared
        for residency-proved kernels, whose measured pass never reads the
        corresponding arrays — the warm replay for that component is then
        skipped entirely.
        """
        if passes <= 0:
            return
        if need_icache:
            state.restore_icache(self._flat_icache(passes))
        if need_dcache:
            l1d, l2_sets, l3_sets = self._flat_dcache(passes)
            state.restore_dcache(l1d, l2_sets, l3_sets)
        state.restore_bpu(self._flat_bpu(spec.bpu_warm_class, passes))
        if spec.btu_warm_class == "replay":
            state.restore_btu(self._flat_btu(passes))

    # ------------------------------------------------------------------ #
    # Residency proofs (the generated kernels' cache-elision licence)
    # ------------------------------------------------------------------ #
    # Both proofs are static per (trace, geometry): if every cache set is
    # asked to hold at most ``associativity`` distinct lines over the whole
    # trace, no eviction can ever happen — so once a warm pass has touched
    # every line, a measured pass cannot miss, and the kernel may drop the
    # cache model entirely (miss counters are analytically zero).  The
    # d-cache proof additionally makes the shared warm state exact under
    # store forwarding: a skipped forwarded-load access can only change LRU
    # *order*, which is unobservable when no eviction ever consults it (the
    # forwarded-from store already installed the line at every level).

    def icache_resident(self) -> bool:
        """No L1I eviction is possible for this program (4-byte slots)."""
        if self._icache_resident is None:
            cfg = self.config.l1i
            per_set: Dict[int, set] = {}
            for pc in set(self.trace.pcs):
                line = (pc * 4) // cfg.line_bytes
                per_set.setdefault(line % cfg.num_sets, set()).add(line // cfg.num_sets)
            self._icache_resident = all(
                len(tags) <= cfg.associativity for tags in per_set.values()
            )
        return self._icache_resident

    def dcache_resident(self) -> bool:
        """No L1D eviction is possible for this trace's data footprint."""
        if self._dcache_resident is None:
            cfg = self.config.l1d
            word_bytes = self.config.word_bytes
            per_set: Dict[int, set] = {}
            for addr in set(self.trace.mem):
                if addr < 0:
                    continue
                line = (addr * word_bytes) // cfg.line_bytes
                per_set.setdefault(line % cfg.num_sets, set()).add(line // cfg.num_sets)
            self._dcache_resident = all(
                len(tags) <= cfg.associativity for tags in per_set.values()
            )
        return self._dcache_resident

    # ------------------------------------------------------------------ #
    # Exactness guard for forwarding-allowed policies
    # ------------------------------------------------------------------ #
    def forwarding_shareable(self) -> bool:
        """Whether the shared d-cache replay is exact under store forwarding.

        A forwarded load skips its d-cache access.  The store it forwards
        from accessed the same line moments earlier, so the skip can only
        matter when another access touches the same L1D **set** between the
        (most recent) store to that address and the load — only then does
        the load's recency refresh participate in a later LRU decision.
        This scans the memory-access sequence once, mirroring the reference
        loop's store-queue membership discipline (same-address stores keep
        their queue position; the oldest entry beyond ``sq_size`` is
        evicted), and reports whether any *possibly*-forwarded load has such
        an intervening same-set access.  The check is conservative in the
        timing dimension (every in-queue store counts as forwardable, every
        access counts as intervening), so ``True`` is a proof of exactness
        while ``False`` merely triggers the private warm-up fallback.
        """
        if self._forwarding_shareable is not None:
            return self._forwarding_shareable
        self._rows()
        config = self.config
        word_bytes = config.word_bytes
        line_bytes = config.l1d.line_bytes
        num_sets = config.l1d.num_sets
        sq_size = config.sq_size

        inflight: Dict[int, None] = {}
        last_store_position: Dict[int, int] = {}
        last_set_access: Dict[int, int] = {}
        shareable = True
        for position, (is_load, addr) in enumerate(self._mem_rows):
            set_index = (addr * word_bytes // line_bytes) % num_sets
            if is_load:
                if addr in inflight and last_set_access.get(set_index, -1) > last_store_position[addr]:
                    shareable = False
                    break
            else:
                last_store_position[addr] = position
                inflight[addr] = None
                if len(inflight) > sq_size:
                    del inflight[next(iter(inflight))]
            last_set_access[set_index] = position
        self._forwarding_shareable = shareable
        return shareable

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def warm_units(
        self,
        spec: EnginePolicySpec,
        passes: int,
        bpu: BranchPredictionUnit,
        caches: CacheHierarchy,
        icache: InstructionCache,
        btu: BranchTraceUnit,
    ) -> None:
        """Restore the shared warm state for ``passes`` warm-up passes.

        Components a policy never exercises (e.g. the BTU under BPU-kind
        policies) are left in their freshly-constructed state, exactly as
        the policy's own warm-up would.
        """
        if passes <= 0:
            return
        icache.restore_state(self._icache_state(passes))
        caches.restore_state(self._dcache_state(passes))
        bpu.restore_state(self._bpu_state(spec.bpu_warm_class, passes))
        if spec.btu_warm_class == "replay":
            btu.restore_state(self._btu_state(passes))
