"""Generated per-(policy × config) measured-pass kernels.

This module is the top of the engine's specialization chain::

    kernels.get_kernel()  →  engine.run_trace()  →  CoreModel.run_reference()

Each layer is required to be bit-identical to the one below it; the layer
below is always the golden model.  ``run_trace`` interprets a
:class:`~repro.engine.lowering.LoweredTrace` generically — every constant is
a local variable, every policy decision a runtime test, every cache/BPU/BTU
interaction a method call on the object models.  :func:`get_kernel` instead
**generates Python source** for one exact (:class:`EnginePolicySpec` ×
:class:`CoreConfig`) pair and ``exec``-compiles it once per process:

* geometry and latency constants (set counts, associativities, line sizes,
  widths, predictor masks, BTU sizing) are inlined as literals, with
  divisions/modulos by powers of two folded to shifts and masks at
  generation time;
* dead policy code is dropped at generation time — a no-forwarding policy
  has no forwarding branch, a policy with an empty gate mask has no gate
  test, a BPU-kind policy carries no Cassandra fetch flow or BTU code, a
  lite policy has no trace-replay path, and kernels generated without an
  active BTU-flush interval have no flush check;
* **residency-proved kernels** drop whole model components: when the batch
  layer proves (statically, per workload × geometry — see
  ``WarmStateBuilder.icache_resident`` / ``dcache_resident``) that no cache
  eviction is possible and the point is warmed, the measured pass cannot
  miss, so the L1I and/or L1D+L2+L3 simulation is deleted from the loop and
  the miss counters become analytically zero;
* statistics that are pure trace properties (instruction, load, store,
  branch, crypto-branch counts; the Cassandra per-class branch counts) are
  precomputed once per workload by the batch layer, so the loop accumulates
  only genuinely dynamic counters in local integers;
* the flags column is premasked per policy (:func:`relevant_flag_mask`), so
  pure-ALU instructions — the majority of a crypto trace — take a fast path
  guarded by a single truthiness test;
* the hot structures are the flat-array models of
  :mod:`repro.engine.state` — no per-branch BPU/BTU method calls, the
  Cassandra fetch-flow classification resolved into a flat per-PC plan
  before the run;
* warm-up kernels (``collect_stats=False``) drop the dynamic counters too,
  and always model the caches in full: a cold warm-up pass takes misses,
  and its cycle timing feeds the BTU-flush points that need private warm-up.

Since PR 6 the source itself is produced by the kernel IR: the structure
and every specialization decision live in :mod:`repro.engine.ir` as a typed
tree plus explicit transforms, and :mod:`repro.engine.emit.python` renders
the lowered tree into exactly the source this module always compiled (the
golden snapshots under ``tests/engine/golden/`` pin it byte-for-byte).
This module remains the compile/cache layer and the home of the shared
batch-facing helpers (branch classification, flag premasks, the dynamic
counter contract).

Compiled kernels are cached per process keyed by
``(spec, config.digest(), flush_active, residency, collect_stats)``.  The
``REPRO_ENGINE_TIER`` environment variable selects the execution tier
(``columns`` / ``python`` / ``interp`` — see :func:`engine_tier`); the
legacy ``REPRO_ENGINE_KERNELS=off`` spelling still steers
``simulate_batch`` back onto the PR-2 ``run_trace`` path.
"""

from __future__ import annotations

import collections
import functools
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.hints import HintTable
from repro.engine.emit.python import render
from repro.engine.ir import KernelFeatures, build_kernel_ir, lower_kernel
from repro.engine.lowering import F_CRYPTO
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec
from repro.uarch.defenses.cassandra import ReplayMismatchError

#: The execution-tier switch (``native`` / ``columns`` / ``python`` /
#: ``interp``).
TIER_ENV = "REPRO_ENGINE_TIER"
#: Legacy two-way switch, honored when ``REPRO_ENGINE_TIER`` is unset:
#: any value in ``_OFF_VALUES`` means ``interp``, anything else ``python``.
KERNELS_ENV = "REPRO_ENGINE_KERNELS"
_OFF_VALUES = ("off", "0", "false", "no")
#: Valid ``REPRO_ENGINE_TIER`` values, fastest first.
ENGINE_TIERS = ("native", "columns", "python", "interp")


def engine_tier() -> str:
    """The selected execution tier: one of :data:`ENGINE_TIERS`.

    Resolution order:

    1. ``REPRO_ENGINE_TIER`` if set — must be one of :data:`ENGINE_TIERS`
       (case/whitespace-insensitive); anything else raises ``ValueError``
       rather than silently running a different tier.
    2. The legacy ``REPRO_ENGINE_KERNELS`` switch if set — ``off`` / ``0``
       / ``false`` / ``no`` mean ``interp`` (the historical escape hatch),
       any other value means ``python`` (the historical kernel path, kept
       exact for callers that pinned it).
    3. Neither set: ``columns`` — the auto tier.  The columns emitter only
       engages for cohorts large enough to amortize NumPy dispatch (see
       ``repro.engine.emit.columns``) and falls back to python kernels
       point-by-point otherwise, so "auto" is never slower than ``python``.
       ``native`` (C kernels compiled per specialization point — see
       :mod:`repro.engine.native`) is opt-in: it needs a working C
       toolchain, and degrades point-by-point onto the python kernels when
       none is found.

    Checked at every ``simulate_batch`` call, so tests (and operators
    bisecting a suspected tier bug) can flip the environment at any point
    without restarting the process.
    """
    raw = os.environ.get(TIER_ENV)
    if raw is not None:
        tier = raw.strip().lower()
        if tier not in ENGINE_TIERS:
            raise ValueError(
                f"{TIER_ENV} must be one of {'/'.join(ENGINE_TIERS)}, got {raw!r}"
            )
        return tier
    legacy = os.environ.get(KERNELS_ENV)
    if legacy is not None:
        return "interp" if legacy.strip().lower() in _OFF_VALUES else "python"
    return "columns"


def kernels_enabled() -> bool:
    """Whether generated kernels are active (any tier above ``interp``).

    Back-compat shim over :func:`engine_tier` — the boolean most callers
    need is "fast path or object loop?", which both compiled tiers answer
    the same way.
    """
    return engine_tier() != "interp"


def classify_branch(
    pc: int,
    flags: int,
    crypto_pcs: bytes,
    hint_table: Optional[HintTable],
    btu_targets: Optional[Dict[int, List[int]]],
    lite: bool,
) -> Tuple[int, Optional[int]]:
    """The Section 5.3 fetch-flow selection over flat BTU state.

    Mirrors :func:`repro.engine.engine._classify_cassandra_branch` with
    ``btu.has_trace(pc)`` replaced by ``pc in btu_targets`` (the flat replay
    payload holds exactly the branches the object BTU holds states for).
    The classification is static per PC — it reads only hints and the
    immutable replay payload — which is what lets the batch layer resolve
    it into a flat plan before the run instead of lazily inside it.
    Classes: 0 non-crypto, 1 single-target, 2 traced, 3 fetch-stall.
    """
    if not (flags & F_CRYPTO or crypto_pcs[pc]):
        return 0, None
    hint = hint_table.lookup(pc)  # type: ignore[union-attr]
    if hint is not None and hint.single_target:
        return 1, (None if lite else hint.single_target_pc)
    if not lite and hint is not None and hint.has_trace and pc in btu_targets:  # type: ignore[operator]
        return 2, None
    return 3, None


def relevant_flag_mask(spec: EnginePolicySpec) -> int:
    """The flag bits a kernel generated for ``spec`` can ever read.

    The batch layer premasks the flags column with this once per workload
    (shared by every point with the same mask), so the kernel's dispatch on
    "is there any non-ALU work here?" is a single truthiness test.  Beyond
    F_LOAD/F_STORE/F_BRANCH/F_TAKEN and the gate bits, nothing else is
    consulted at run time — the crypto bit only feeds the static plan and
    the precomputed trace-property counts.
    """
    return 1 | 2 | 4 | 64 | spec.gate_mask  # F_LOAD | F_STORE | F_BRANCH | F_TAKEN


#: The dynamic counters every stats-collecting kernel returns (zeros where
#: specialization removed the code that could increment them).
DYNAMIC_COUNTERS = (
    "cycles",
    "store_forwards",
    "stl_blocked",
    "delayed_instructions",
    "delay_cycles",
    "squash_cycles",
    "fetch_stall_cycles",
    "integrity_stall_branches",
    "btu_misses",
    "btu_prefetches",
    "bpu_mispredicted",
    "l1i_miss",
    "l1d_miss",
    "btu_occupancy",
)


# --------------------------------------------------------------------------- #
# Source generation (IR build → transforms → python emitter)
# --------------------------------------------------------------------------- #
def kernel_source(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> str:
    """Render the specialized kernel source for one (spec × config) pair.

    ``icache_resident`` / ``dcache_resident`` may only be set when the batch
    layer holds the corresponding no-eviction proof *and* the point starts
    from warmed state; the generated code then contains no cache model at
    all for that hierarchy.

    The heavy lifting lives in :mod:`repro.engine.ir` (one cached tree per
    spec × config, specialization as explicit transforms) and
    :mod:`repro.engine.emit.python` (rendering); this function is the
    compatibility surface gluing them together.
    """
    features = KernelFeatures.derive(
        spec,
        flush_active,
        icache_resident=icache_resident,
        dcache_resident=dcache_resident,
        btu_elide=btu_elide,
        collect_stats=collect_stats,
    )
    return render(lower_kernel(build_kernel_ir(spec, config), features))


# --------------------------------------------------------------------------- #
# Compilation cache
# --------------------------------------------------------------------------- #
_KERNEL_CACHE: Dict[Tuple, Callable] = {}

#: Kernels compiled by this process (monotone; surfaced by the benchmarks).
compile_count = 0


@functools.lru_cache(maxsize=None)
def _config_digest(config: CoreConfig) -> str:
    """``config.digest()`` memoized — the sha256 walk is per-point otherwise."""
    return config.digest()


def get_kernel(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> Callable:
    """The compiled kernel for ``(spec, config)``; generated at most once.

    ``flush_active`` selects whether the periodic-BTU-flush check is
    compiled in (the interval itself stays a runtime argument, so every
    interval of a sweep shares one kernel); the residency flags select the
    cache-free variants and are only legal under the batch layer's
    no-eviction proofs.
    """
    key = (
        spec,
        _config_digest(config),
        bool(flush_active),
        bool(icache_resident),
        bool(dcache_resident),
        bool(btu_elide),
        bool(collect_stats),
    )
    fn = _KERNEL_CACHE.get(key)
    if fn is None:
        global compile_count
        source = kernel_source(
            spec,
            config,
            flush_active,
            icache_resident,
            dcache_resident,
            btu_elide,
            collect_stats,
        )
        namespace = {
            "ReplayMismatchError": ReplayMismatchError,
            "__defaultdict_int": lambda: collections.defaultdict(int),
        }
        exec(
            compile(source, f"<repro-kernel:{spec.kind}:{_config_digest(config)}>", "exec"),
            namespace,
        )
        fn = namespace["kernel"]
        fn.__repro_source__ = source  # type: ignore[attr-defined]
        _KERNEL_CACHE[key] = fn
        compile_count += 1
    return fn


def clear_kernel_cache() -> None:
    """Drop every compiled kernel *and* the caches feeding the compile.

    Chains the python/C IR build caches and the native tier's kernel memo so
    bench per-repetition compile timing measures the whole pipeline (IR
    build → transforms → emit → compile), not just the final ``exec``.
    """
    _KERNEL_CACHE.clear()
    from repro.engine.emit.c import clear_c_ir_cache
    from repro.engine.ir import clear_ir_cache
    from repro.engine.native import clear_native_memo

    clear_ir_cache()
    clear_c_ir_cache()
    clear_native_memo()
