"""Generated per-(policy × config) measured-pass kernels.

This module is the top of the engine's specialization chain::

    kernels.get_kernel()  →  engine.run_trace()  →  CoreModel.run_reference()

Each layer is required to be bit-identical to the one below it; the layer
below is always the golden model.  ``run_trace`` interprets a
:class:`~repro.engine.lowering.LoweredTrace` generically — every constant is
a local variable, every policy decision a runtime test, every cache/BPU/BTU
interaction a method call on the object models.  :func:`get_kernel` instead
**generates Python source** for one exact (:class:`EnginePolicySpec` ×
:class:`CoreConfig`) pair and ``exec``-compiles it once per process:

* geometry and latency constants (set counts, associativities, line sizes,
  widths, predictor masks, BTU sizing) are inlined as literals, with
  divisions/modulos by powers of two folded to shifts and masks at
  generation time;
* dead policy code is dropped at generation time — a no-forwarding policy
  has no forwarding branch, a policy with an empty gate mask has no gate
  test, a BPU-kind policy carries no Cassandra fetch flow or BTU code, a
  lite policy has no trace-replay path, and kernels generated without an
  active BTU-flush interval have no flush check;
* **residency-proved kernels** drop whole model components: when the batch
  layer proves (statically, per workload × geometry — see
  ``WarmStateBuilder.icache_resident`` / ``dcache_resident``) that no cache
  eviction is possible and the point is warmed, the measured pass cannot
  miss, so the L1I and/or L1D+L2+L3 simulation is deleted from the loop and
  the miss counters become analytically zero;
* statistics that are pure trace properties (instruction, load, store,
  branch, crypto-branch counts; the Cassandra per-class branch counts) are
  precomputed once per workload by the batch layer, so the loop accumulates
  only genuinely dynamic counters in local integers;
* the flags column is premasked per policy (:func:`relevant_flag_mask`), so
  pure-ALU instructions — the majority of a crypto trace — take a fast path
  guarded by a single truthiness test;
* the hot structures are the flat-array models of
  :mod:`repro.engine.state` — no per-branch BPU/BTU method calls, the
  Cassandra fetch-flow classification resolved into a flat per-PC plan
  before the run;
* warm-up kernels (``collect_stats=False``) drop the dynamic counters too,
  and always model the caches in full: a cold warm-up pass takes misses,
  and its cycle timing feeds the BTU-flush points that need private warm-up.

Compiled kernels are cached per process keyed by
``(spec, config.digest(), flush_active, residency, collect_stats)``.  The
``REPRO_ENGINE_KERNELS`` environment variable is the escape hatch: set it to
``off`` (or ``0`` / ``false`` / ``no``) and :func:`kernels_enabled` steers
``simulate_batch`` back onto the PR-2 ``run_trace`` path.
"""

from __future__ import annotations

import collections
import functools
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.hints import HintTable
from repro.engine.lowering import F_CRYPTO
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec
from repro.uarch.defenses.cassandra import ReplayMismatchError

#: Environment switch: anything in ``_OFF_VALUES`` disables the kernel path.
KERNELS_ENV = "REPRO_ENGINE_KERNELS"
_OFF_VALUES = ("off", "0", "false", "no")


def kernels_enabled() -> bool:
    """Whether generated kernels are active (the ``REPRO_ENGINE_KERNELS`` gate).

    Checked at every ``simulate_batch`` call, so tests (and operators
    bisecting a suspected kernel bug) can flip the environment variable at
    any point without restarting the process.
    """
    return os.environ.get(KERNELS_ENV, "on").strip().lower() not in _OFF_VALUES


def classify_branch(
    pc: int,
    flags: int,
    crypto_pcs: bytes,
    hint_table: Optional[HintTable],
    btu_targets: Optional[Dict[int, List[int]]],
    lite: bool,
) -> Tuple[int, Optional[int]]:
    """The Section 5.3 fetch-flow selection over flat BTU state.

    Mirrors :func:`repro.engine.engine._classify_cassandra_branch` with
    ``btu.has_trace(pc)`` replaced by ``pc in btu_targets`` (the flat replay
    payload holds exactly the branches the object BTU holds states for).
    The classification is static per PC — it reads only hints and the
    immutable replay payload — which is what lets the batch layer resolve
    it into a flat plan before the run instead of lazily inside it.
    Classes: 0 non-crypto, 1 single-target, 2 traced, 3 fetch-stall.
    """
    if not (flags & F_CRYPTO or crypto_pcs[pc]):
        return 0, None
    hint = hint_table.lookup(pc)  # type: ignore[union-attr]
    if hint is not None and hint.single_target:
        return 1, (None if lite else hint.single_target_pc)
    if not lite and hint is not None and hint.has_trace and pc in btu_targets:  # type: ignore[operator]
        return 2, None
    return 3, None


def relevant_flag_mask(spec: EnginePolicySpec) -> int:
    """The flag bits a kernel generated for ``spec`` can ever read.

    The batch layer premasks the flags column with this once per workload
    (shared by every point with the same mask), so the kernel's dispatch on
    "is there any non-ALU work here?" is a single truthiness test.  Beyond
    F_LOAD/F_STORE/F_BRANCH/F_TAKEN and the gate bits, nothing else is
    consulted at run time — the crypto bit only feeds the static plan and
    the precomputed trace-property counts.
    """
    return 1 | 2 | 4 | 64 | spec.gate_mask  # F_LOAD | F_STORE | F_BRANCH | F_TAKEN


#: The dynamic counters every stats-collecting kernel returns (zeros where
#: specialization removed the code that could increment them).
DYNAMIC_COUNTERS = (
    "cycles",
    "store_forwards",
    "stl_blocked",
    "delayed_instructions",
    "delay_cycles",
    "squash_cycles",
    "fetch_stall_cycles",
    "integrity_stall_branches",
    "btu_misses",
    "btu_prefetches",
    "bpu_mispredicted",
    "l1i_miss",
    "l1d_miss",
    "btu_occupancy",
)


# --------------------------------------------------------------------------- #
# Source-generation helpers
# --------------------------------------------------------------------------- #
def _pow2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


def _mod_expr(var: str, n: int) -> str:
    return f"({var} & {n - 1})" if _pow2(n) else f"({var} % {n})"


def _div_expr(var: str, n: int) -> str:
    return f"({var} >> {n.bit_length() - 1})" if _pow2(n) else f"({var} // {n})"


def _line_expr(var: str, scale: int, line_bytes: int) -> str:
    """``(var * scale) // line_bytes`` with power-of-two folding."""
    if _pow2(scale) and _pow2(line_bytes):
        shift = line_bytes.bit_length() - scale.bit_length()
        if shift > 0:
            return f"({var} >> {shift})"
        if shift == 0:
            return var
        return f"({var} << {-shift})"
    return f"(({var} * {scale}) // {line_bytes})"


class _Emitter:
    """Indented source accumulator; ``s()`` lines vanish in warm-up kernels."""

    def __init__(self, collect_stats: bool) -> None:
        self.lines: List[str] = []
        self.collect_stats = collect_stats

    def w(self, depth: int, *emitted: str) -> None:
        pad = "    " * depth
        for line in emitted:
            self.lines.append(pad + line)

    def s(self, depth: int, *emitted: str) -> None:
        if self.collect_stats:
            self.w(depth, *emitted)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def kernel_source(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> str:
    """Render the specialized kernel source for one (spec × config) pair.

    ``icache_resident`` / ``dcache_resident`` may only be set when the batch
    layer holds the corresponding no-eviction proof *and* the point starts
    from warmed state; the generated code then contains no cache model at
    all for that hierarchy.
    """
    cassandra = spec.kind == "cassandra"
    lite = spec.lite
    traced = cassandra and not lite
    gate_mask = spec.gate_mask
    allow_fwd = spec.allow_store_forwarding
    # Only trace-replaying (non-lite Cassandra) kernels have observable
    # flush behaviour: everyone else's residency list is always empty.
    flush = flush_active and traced
    if btu_elide and (not traced or flush):
        raise ValueError("btu_elide requires a traced kernel without flushes")

    l1i, l1d, l2, l3 = config.l1i, config.l1d, config.l2, config.l3
    rob = config.rob_size
    rob_index = f"index & {rob - 1}" if _pow2(rob) else f"index % {rob}"
    pht_mask = (1 << config.pht_bits) - 1
    hist_mask = (1 << config.global_history_bits) - 1
    # The memory/gate section only concerns loads and gated instructions:
    # store bookkeeping is post-commit and store counts are static, so the
    # umbrella test is F_LOAD plus the policy's gate bits.
    mg_mask = 1 | gate_mask

    e = _Emitter(collect_stats)
    w, s = e.w, e.s

    w(0, "def kernel(trace, state, rows, crypto_pcs, plan_cls, plan_stp, btu_flush_interval):")
    # ------------------------------ prologue ------------------------------ #
    if not icache_resident:
        w(1, "l1i = state.l1i", "l1i_index = l1i.index")
    if not dcache_resident:
        w(
            1,
            "l1d = state.l1d",
            "l1d_index = l1d.index",
            "l2_sets = state.l2",
            "l3_sets = state.l3",
            "l2_get = l2_sets.get",
            "l3_get = l3_sets.get",
        )
    w(
        1,
        "mem_col = trace.mem",
        "pcs_col = trace.pcs",
        "npcs_col = trace.next_pcs",
        "bcs_col = trace.bclass",
        "pht = state.pht",
        "history = state.history",
        "btb = state.btb",
        "btb_get = btb.get",
        "rsb = state.rsb",
        "loops = state.loops",
        "loops_get = loops.get",
    )
    # The BTU checkpoint table (``btu_committed``) is never read by a
    # measured or warm-up pass — checkpoints only serve squash recovery and
    # eviction write-back inspection, neither of which is observable here —
    # so kernels do not maintain it at all.
    if cassandra:
        w(1, "crypto_pcs_len = len(crypto_pcs)")
        if not lite:
            w(1, "stp_get = plan_stp.get")
    if traced:
        w(
            1,
            "btu_pos = state.btu_pos",
            "btu_targets = state.btu_targets",
            "btu_eids = state.btu_eids",
            "btu_long = state.btu_long",
        )
        if not btu_elide:
            w(1, "btu_resident = state.btu_resident")
    w(
        1,
        # One extra slot: dst == -1 writes reg_ready[-1] (never read).
        "reg_ready = [0] * (trace.num_regs + 1)",
        f"commit_ring = [0] * {rob}",
        "store_inflight = {}",
        "si_get = store_inflight.get",
        # defaultdict: a missed probe reads 0 via C-level __missing__, which
        # is cheaper than a bound .get call (absent and zero are equivalent).
        "issue_busy = __defaultdict_int()",
        "fetch_cycle = 0",
        "fetched_this_cycle = 0",
        "fetch_not_before = 0",
        "last_commit_cycle = 0",
        "committed_this_cycle = 0",
        "window_resolve_cycle = 0",
        "index = 0",
    )
    if flush:
        w(1, "next_btu_flush = btu_flush_interval")
    dynamic_zero = []
    if not icache_resident:
        dynamic_zero.append("l1i_miss = 0")
    if not dcache_resident:
        dynamic_zero.append("l1d_miss = 0")
    if allow_fwd:
        dynamic_zero.append("n_forwards = 0")
    else:
        dynamic_zero.append("n_stl_blocked = 0")
    if gate_mask:
        dynamic_zero.append("n_delayed = delay_cycles = 0")
    dynamic_zero.append("squash_cycles = fetch_stall_cycles = 0")
    dynamic_zero.append("n_cond_mis = n_rsb_mis = n_ind_mis = 0")
    if cassandra:
        dynamic_zero.append("n_integrity = 0")
    if traced:
        dynamic_zero.append("n_btu_misses = n_btu_prefetches = 0")
    s(1, *dynamic_zero)
    w(1, "rows_head, rows_tail = rows")

    def emit_fetch(depth: int) -> None:
        if icache_resident:
            # No miss is possible: the fetch stage is pure width bookkeeping.
            w(
                depth,
                "if fetch_not_before > fetch_cycle:",
                "    fetch_cycle = fetch_not_before",
                "    fetched_this_cycle = 1",
                f"elif fetched_this_cycle >= {config.fetch_width}:",
                "    fetch_cycle += 1",
                "    fetched_this_cycle = 1",
                "else:",
                "    fetched_this_cycle += 1",
            )
            return
        # InstructionCache uses 4-byte instruction slots.
        w(
            depth,
            "pc = pcs_col[index]",
            "candidate = fetch_cycle if fetch_cycle > fetch_not_before else fetch_not_before",
            f"line = {_line_expr('pc', 4, l1i.line_bytes)}",
            f"seg_end = {_mod_expr('line', l1i.num_sets)} * {l1i.associativity} + {l1i.associativity}",
            f"tag = {_div_expr('line', l1i.num_sets)}",
            "try:",
            f"    i = l1i_index(tag, seg_end - {l1i.associativity}, seg_end)",
            "    del l1i[i]",
            "    l1i.insert(seg_end - 1, tag)",
            "except ValueError:",
        )
        s(depth + 1, "l1i_miss += 1")
        w(
            depth,
            f"    del l1i[seg_end - {l1i.associativity}]",
            "    l1i.insert(seg_end - 1, tag)",
            f"    candidate += {l2.latency}",
            "if candidate > fetch_cycle:",
            "    fetch_cycle = candidate",
            "    fetched_this_cycle = 0",
            f"if fetched_this_cycle >= {config.fetch_width}:",
            "    fetch_cycle += 1",
            "    fetched_this_cycle = 0",
            "fetched_this_cycle += 1",
        )

    def emit_dispatch(depth: int, rob_active: bool) -> None:
        # ``ready`` starts as the dispatch cycle (fetch + frontend depth,
        # bounded by ROB occupancy).  The head loop covers the first
        # ``rob_size`` instructions, where the bound cannot apply and the
        # ring index is just ``index``; the tail reads the bound
        # unconditionally through a shared ring slot.
        w(depth, f"ready = fetch_cycle + {config.frontend_depth}")
        if rob_active:
            w(
                depth,
                f"ri = {rob_index}",
                "bound = commit_ring[ri]",
                "if bound > ready:",
                "    ready = bound",
            )

    def emit_operands(depth: int) -> None:
        w(
            depth,
            "if s0 >= 0:",
            "    t = reg_ready[s0]",
            "    if t > ready:",
            "        ready = t",
            "    if s1 >= 0:",
            "        t = reg_ready[s1]",
            "        if t > ready:",
            "            ready = t",
            "        if s2 >= 0:",
            "            t = reg_ready[s2]",
            "            if t > ready:",
            "                ready = t",
        )

    # ------------------------ cache-model emitters -------------------------- #
    d_line = _line_expr("addr", config.word_bytes, l1d.line_bytes)
    l2_line = _line_expr("addr", config.word_bytes, l2.line_bytes)
    l3_line = _line_expr("addr", config.word_bytes, l3.line_bytes)

    def emit_sparse(depth: int, level: str, cfg, line_src: str, miss: Tuple[str, ...]) -> None:
        """Inline one sparse-dict cache level; ``miss`` lines run on a miss."""
        mod = _mod_expr(f"{level}_line", cfg.num_sets)
        w(
            depth,
            f"{level}_line = {line_src}",
            f"{level}_ways = {level}_get({mod})",
            f"{level}_tag = {_div_expr(f'{level}_line', cfg.num_sets)}",
            f"if {level}_ways is None:",
            f"    {level}_sets[{mod}] = [{level}_tag]",
        )
        w(depth + 1, *miss)
        w(
            depth,
            f"elif {level}_tag in {level}_ways:",
            f"    {level}_ways.remove({level}_tag)",
            f"    {level}_ways.append({level}_tag)",
            "else:",
            f"    {level}_ways.append({level}_tag)",
            f"    if len({level}_ways) > {cfg.associativity}:",
            f"        del {level}_ways[0]",
        )
        w(depth + 1, *miss)

    def emit_l2_l3(depth: int, load: bool) -> None:
        """L2 access whose miss arms charge L3 latency and fall to the L3."""

        def emit_l3(d3: int) -> None:
            miss = (f"exec_latency += {config.memory_latency}",) if load else ()
            emit_sparse(d3, "l3", l3, l3_line, miss)

        mod = _mod_expr("l2_line", l2.num_sets)
        w(
            depth,
            f"l2_line = {l2_line}",
            f"l2_ways = l2_get({mod})",
            f"l2_tag = {_div_expr('l2_line', l2.num_sets)}",
            "if l2_ways is None:",
            f"    l2_sets[{mod}] = [l2_tag]",
        )
        if load:
            w(depth + 1, f"exec_latency += {l3.latency}")
        emit_l3(depth + 1)
        w(
            depth,
            "elif l2_tag in l2_ways:",
            "    l2_ways.remove(l2_tag)",
            "    l2_ways.append(l2_tag)",
            "else:",
            "    l2_ways.append(l2_tag)",
            f"    if len(l2_ways) > {l2.associativity}:",
            "        del l2_ways[0]",
        )
        if load:
            w(depth + 1, f"exec_latency += {l3.latency}")
        emit_l3(depth + 1)

    def emit_l1d(depth: int, load: bool) -> None:
        """One L1D access: residency-proved constant, or the full model."""
        if dcache_resident:
            if load:
                w(depth, f"exec_latency = {l1d.latency}")
            return
        w(
            depth,
            f"line = {d_line}",
            f"seg_end = {_mod_expr('line', l1d.num_sets)} * {l1d.associativity} + {l1d.associativity}",
            f"tag = {_div_expr('line', l1d.num_sets)}",
            "try:",
            f"    i = l1d_index(tag, seg_end - {l1d.associativity}, seg_end)",
            "    del l1d[i]",
            "    l1d.insert(seg_end - 1, tag)",
        )
        if load:
            w(depth + 1, f"exec_latency = {l1d.latency}")
        w(depth, "except ValueError:")
        s(depth + 1, "l1d_miss += 1")
        w(
            depth + 1,
            f"del l1d[seg_end - {l1d.associativity}]",
            "l1d.insert(seg_end - 1, tag)",
        )
        if load:
            w(depth + 1, f"exec_latency = {l1d.latency + l2.latency}")
        emit_l2_l3(depth + 1, load)

    # --------------------------- stage emitters ----------------------------- #
    def emit_mem_gate(depth: int) -> None:
        """Load latency / forwarding / STL blocking and the issue gate."""
        w(depth, f"if fl & {mg_mask}:")
        w(depth + 1, "if fl & 1:")  # F_LOAD
        w(
            depth + 2,
            "addr = mem_col[index]",
            "inflight = si_get(addr)",
            "if inflight is not None and inflight[1] <= dispatch_cycle:",
            "    inflight = None",
        )
        if allow_fwd:
            w(depth + 2, "if inflight is not None:")
            s(depth + 3, "n_forwards += 1")
            w(
                depth + 3,
                "t = inflight[0]",
                "if t > ready:",
                "    ready = t",
                f"exec_latency = {config.store_forward_latency}",
            )
            w(depth + 2, "else:")
            emit_l1d(depth + 3, load=True)
        else:
            w(depth + 2, "if inflight is not None:")
            s(depth + 3, "n_stl_blocked += 1")
            w(
                depth + 3,
                "t = inflight[1]",
                "if t > ready:",
                "    ready = t",
            )
            emit_l1d(depth + 2, load=True)
        if gate_mask:
            w(depth + 1, f"if fl & {gate_mask} and window_resolve_cycle > ready:")
            s(
                depth + 2,
                "n_delayed += 1",
                "delay_cycles += window_resolve_cycle - ready",
            )
            w(depth + 2, "ready = window_resolve_cycle")

    def emit_issue_commit(depth: int, latency: str, ring_slot: str) -> None:
        """Issue bandwidth, register write-back, and commit bandwidth."""
        w(
            depth,
            "issue_cycle = ready",
            "busy = issue_busy[issue_cycle]",
            f"while busy >= {config.issue_width}:",
            "    issue_cycle += 1",
            "    busy = issue_busy[issue_cycle]",
            "issue_busy[issue_cycle] = busy + 1",
            f"complete_cycle = issue_cycle + {latency}",
            "reg_ready[dst] = complete_cycle",
            "commit_cycle = complete_cycle + 1",
            "if commit_cycle > last_commit_cycle:",
            "    last_commit_cycle = commit_cycle",
            "    committed_this_cycle = 1",
            f"elif committed_this_cycle >= {config.commit_width}:",
            "    last_commit_cycle = commit_cycle = last_commit_cycle + 1",
            "    committed_this_cycle = 1",
            "else:",
            "    commit_cycle = last_commit_cycle",
            "    committed_this_cycle += 1",
            f"commit_ring[{ring_slot}] = commit_cycle",
            "index += 1",
        )

    def emit_store(depth: int) -> None:
        """Store install + store-queue update under a single F_STORE test.

        The reference installs the store's line between register write-back
        and commit; nothing in between observes the caches, so merging the
        install with the store-queue update is state-equivalent.
        """
        w(depth, "if fl & 2:")  # F_STORE
        w(depth + 1, "addr = mem_col[i0]")
        emit_l1d(depth + 1, load=False)
        w(
            depth + 1,
            "store_inflight[addr] = (complete_cycle, commit_cycle)",
            f"if len(store_inflight) > {config.sq_size}:",
            "    del store_inflight[next(iter(store_inflight))]",
        )

    def emit_bpu_flow(depth: int) -> None:
        """Inline BPU predict+update (flat state); leaves ``predicted``."""
        w(depth, "taken = fl & 64")  # F_TAKEN
        # B_COND — by far the most frequent class.
        w(
            depth,
            "if bc == 1:",
            f"    pidx = (pc ^ history) & {pht_mask}",
            "    counter = pht[pidx]",
            "    loop = loops_get(pc)",
            "    if loop is not None and loop[2] >= 2 and loop[1] >= 0:",
            "        taken_pred = loop[0] >= loop[1]",
            "    else:",
            "        taken_pred = counter >= 2",
            "    if taken_pred:",
            "        predicted = btb_get(pc, -1)",
            "        if predicted < 0:",
            "            predicted = pc + 1",
            "    else:",
            "        predicted = pc + 1",
            # The reference updates the PHT, then the history, then the loop
            # entry; both taken arms preserve that order, merged so ``taken``
            # is tested once.
            "    if loop is None:",
            "        loop = loops[pc] = [0, -1, 0]",
            "    if taken:",
            "        pht[pidx] = counter + 1 if counter < 3 else 3",
            f"        history = ((history << 1) | 1) & {hist_mask}",
            "        if loop[1] == loop[0]:",
            "            c = loop[2]",
            "            loop[2] = c + 1 if c < 7 else 7",
            "        else:",
            "            loop[2] = 0",
            "            loop[1] = loop[0]",
            "        loop[0] = 0",
            f"        if pc not in btb and len(btb) >= {config.btb_entries}:",
            "            del btb[next(iter(btb))]",
            "        btb[pc] = npc",
            "    else:",
            "        pht[pidx] = counter - 1 if counter > 0 else 0",
            f"        history = (history << 1) & {hist_mask}",
            "        loop[0] += 1",
        )
        s(
            depth,
            "    if predicted != npc:",
            "        n_cond_mis += 1",
        )
        # B_JMP / B_CALL — direct targets, always correct.
        w(
            depth,
            "elif bc == 2:",
            "    predicted = npc",
            "elif bc == 3:",
            f"    if len(rsb) >= {config.rsb_entries}:",
            "        del rsb[0]",
            "    rsb.append(pc + 1)",
            "    predicted = npc",
            # B_RET — pop the RSB.
            "elif bc == 6:",
            "    predicted = rsb.pop() if rsb else pc + 1",
        )
        s(
            depth,
            "    if predicted != npc:",
            "        n_rsb_mis += 1",
        )
        # B_CALLI — BTB lookup, RSB push, then BTB training.
        w(
            depth,
            "elif bc == 4:",
            "    predicted = btb_get(pc, -1)",
            f"    if len(rsb) >= {config.rsb_entries}:",
            "        del rsb[0]",
            "    rsb.append(pc + 1)",
            "    if predicted < 0:",
            "        predicted = pc + 1",
            f"    if pc not in btb and len(btb) >= {config.btb_entries}:",
            "        del btb[next(iter(btb))]",
            "    btb[pc] = npc",
        )
        s(
            depth,
            "    if predicted != npc:",
            "        n_ind_mis += 1",
        )
        # B_JMPI — BTB lookup + training.
        w(
            depth,
            "elif bc == 5:",
            "    predicted = btb_get(pc, -1)",
            "    if predicted < 0:",
            "        predicted = pc + 1",
            f"    if pc not in btb and len(btb) >= {config.btb_entries}:",
            "        del btb[next(iter(btb))]",
            "    btb[pc] = npc",
        )
        s(
            depth,
            "    if predicted != npc:",
            "        n_ind_mis += 1",
        )
        w(
            depth,
            "else:",
            "    predicted = pc + 1",
        )

    def emit_bpu_outcome(depth: int) -> None:
        """Mispredict redirect + speculation-window bookkeeping."""
        w(
            depth,
            "if predicted != npc:",
            f"    redirect = resolve_cycle + {config.mispredict_penalty}",
        )
        s(
            depth,
            "    d = redirect - fetch_cycle",
            "    if d > 0:",
            "        squash_cycles += d",
        )
        w(
            depth,
            "    if redirect > fetch_not_before:",
            "        fetch_not_before = redirect",
            "if resolve_cycle > window_resolve_cycle:",
            "    window_resolve_cycle = resolve_cycle",
        )

    def emit_fetch_stall(depth: int) -> None:
        w(depth, "stall_target = resolve_cycle + 1")
        s(
            depth,
            "d = stall_target - fetch_cycle",
            "if d > 0:",
            "    fetch_stall_cycles += d",
        )
        w(
            depth,
            "if stall_target > fetch_not_before:",
            "    fetch_not_before = stall_target",
        )

    def emit_branch(depth: int) -> None:
        w(depth, "if fl & 4:")  # F_BRANCH
        base = depth + 1
        if icache_resident:
            w(base, "pc = pcs_col[i0]")
        w(
            base,
            "npc = npcs_col[i0]",
            "bc = bcs_col[i0]",
            "resolve_cycle = complete_cycle",
        )
        if not cassandra:
            emit_bpu_flow(base)
            emit_bpu_outcome(base)
            return
        # The fetch-flow class is a static per-PC property, resolved by the
        # batch layer into ``plan_cls``.  The reference also checkpoints
        # crypto branches' BTU state at commit here, but the checkpoint
        # table is unobservable in a measured pass, so kernels omit it.
        w(
            base,
            "cls = plan_cls[pc]",
            "if cls == 0:",
        )
        emit_bpu_flow(base + 1)
        w(base + 1, "if (predicted < crypto_pcs_len and crypto_pcs[predicted]) or crypto_pcs[npc]:")
        s(base + 2, "n_integrity += 2")
        emit_fetch_stall(base + 2)
        w(base + 1, "else:")
        emit_bpu_outcome(base + 2)
        w(base, "elif cls == 1:")
        if not lite:
            w(
                base + 1,
                "stp = stp_get(pc)",
                "if stp is not None and stp != npc:",
                "    raise ReplayMismatchError(",
                '        "single-target hint for PC %d points at %r but "',
                '        "execution went to %d" % (pc, stp, npc)',
                "    )",
            )
        else:
            w(base + 1, "pass")
        if traced:
            if btu_elide:
                # No eviction is possible (distinct traced branches fit the
                # BTU) and no flush is active, so a branch misses exactly
                # once — on its first lookup, recognizable as replay
                # position zero — and the LRU residency list needs no
                # maintenance at all.
                w(
                    base,
                    "elif cls == 2:",
                    "    pos = btu_pos[pc]",
                    "    if pos:",
                    "        extra = 0",
                    "    else:",
                )
                s(base + 2, "n_btu_misses += 1")
                w(base + 2, f"extra = {config.btu.miss_latency}")
            else:
                # Full residency model; evictions drop the LRU entry (the
                # reference also checkpoints the victim, which kernels omit
                # as unobservable).
                w(
                    base,
                    "elif cls == 2:",
                    "    extra = 0",
                    "    if pc in btu_resident:",
                    "        btu_resident.remove(pc)",
                    "        btu_resident.append(pc)",
                    "    else:",
                )
                s(base + 2, "n_btu_misses += 1")
                w(
                    base + 2,
                    f"extra = {config.btu.miss_latency}",
                    f"if len(btu_resident) >= {config.btu.entries}:",
                    "    del btu_resident[0]",
                    "btu_resident.append(pc)",
                )
                w(base + 1, "pos = btu_pos[pc]")
            w(
                base + 1,
                "targets = btu_targets[pc]",
                "tidx = pos % len(targets)",
                "target = targets[tidx]",
                "btu_pos[pc] = pos + 1",
                "if btu_long[pc]:",
                "    eid = btu_eids[pc][tidx]",
                f"    if eid >= {config.btu.elements_per_entry} and {_mod_expr('eid', config.btu.elements_per_entry)} == 0:",
            )
            s(base + 3, "n_btu_prefetches += 1")
            w(
                base + 1,
                f"        extra += {config.btu.prefetch_latency}",
                "if target != npc:",
                "    raise ReplayMismatchError(",
                '        "BTU replay for PC %d produced target %d but the "',
                '        "sequential execution went to %d" % (pc, target, npc)',
                "    )",
                "if extra:",
                "    t = fetch_cycle + extra",
                "    if t > fetch_not_before:",
                "        fetch_not_before = t",
            )
        w(base, "else:")
        emit_fetch_stall(base + 1)

    # -------------------------- instruction body ---------------------------- #
    # The premasked flags word is zero for pure ALU work, which skips the
    # memory, gate, store, and branch stages entirely; the operand-merge and
    # issue/commit blocks are duplicated into both arms so the fast path
    # carries no dead assignments (``dispatch_cycle`` and ``exec_latency``
    # exist only where the memory stage can read them).
    def emit_instruction_body(rob_active: bool) -> None:
        ring_slot = "ri" if rob_active else "index"
        emit_fetch(2)
        emit_dispatch(2, rob_active)
        w(2, "if fl:")
        w(3, "dispatch_cycle = ready")
        emit_operands(3)
        w(3, "exec_latency = lat")
        emit_mem_gate(3)
        w(3, "i0 = index")
        emit_issue_commit(3, "exec_latency", ring_slot)
        emit_store(3)
        emit_branch(3)
        w(2, "else:")
        emit_operands(3)
        emit_issue_commit(3, "lat", ring_slot)
        # The reference also checkpoints every resident branch on a flush;
        # only the residency clear is observable (it re-triggers misses).
        if flush:
            w(
                2,
                "if last_commit_cycle >= next_btu_flush:",
                "    del btu_resident[:]",
                "    next_btu_flush += btu_flush_interval",
            )

    # ``rows`` arrives pre-split at the ROB boundary: the head loop needs no
    # ROB-occupancy bound (nothing has committed ``rob_size`` back yet), the
    # tail reads it unconditionally.  Both unpack pre-zipped 6-tuples of the
    # per-instruction-hot columns; PC / next-PC / address / branch-class
    # columns are indexed on demand in the slow paths.  ``fl`` is the
    # premasked flags word (see :func:`relevant_flag_mask`): zero means
    # "pure ALU work", the loop's fast path.
    w(1, "for dst, s0, s1, s2, fl, lat in rows_head:")
    emit_instruction_body(rob_active=False)
    w(1, "for dst, s0, s1, s2, fl, lat in rows_tail:")
    emit_instruction_body(rob_active=True)

    # ------------------------------ epilogue -------------------------------- #
    w(1, "state.history = history")
    if collect_stats:
        value_of = {
            "cycles": "last_commit_cycle",
            "store_forwards": "n_forwards" if allow_fwd else "0",
            "stl_blocked": "0" if allow_fwd else "n_stl_blocked",
            "delayed_instructions": "n_delayed" if gate_mask else "0",
            "delay_cycles": "delay_cycles" if gate_mask else "0",
            "squash_cycles": "squash_cycles",
            "fetch_stall_cycles": "fetch_stall_cycles",
            "integrity_stall_branches": "n_integrity" if cassandra else "0",
            "btu_misses": "n_btu_misses" if traced else "0",
            "btu_prefetches": "n_btu_prefetches" if traced else "0",
            "bpu_mispredicted": "n_cond_mis + n_rsb_mis + n_ind_mis",
            "l1i_miss": "0" if icache_resident else "l1i_miss",
            "l1d_miss": "0" if dcache_resident else "l1d_miss",
            # Occupancy = branches looked up and never evicted/flushed; in
            # the elided variant that is exactly "replay position advanced".
            "btu_occupancy": (
                "sum(1 for v in btu_pos.values() if v)"
                if traced and btu_elide
                else ("len(btu_resident)" if traced else "0")
            ),
        }
        w(1, "return {")
        for name in DYNAMIC_COUNTERS:
            w(1, f'    "{name}": {value_of[name]},')
        w(1, "}")
    else:
        w(1, "return None")
    return e.text()


# --------------------------------------------------------------------------- #
# Compilation cache
# --------------------------------------------------------------------------- #
_KERNEL_CACHE: Dict[Tuple, Callable] = {}

#: Kernels compiled by this process (monotone; surfaced by the benchmarks).
compile_count = 0


@functools.lru_cache(maxsize=None)
def _config_digest(config: CoreConfig) -> str:
    """``config.digest()`` memoized — the sha256 walk is per-point otherwise."""
    return config.digest()


def get_kernel(
    spec: EnginePolicySpec,
    config: CoreConfig,
    flush_active: bool,
    icache_resident: bool = False,
    dcache_resident: bool = False,
    btu_elide: bool = False,
    collect_stats: bool = True,
) -> Callable:
    """The compiled kernel for ``(spec, config)``; generated at most once.

    ``flush_active`` selects whether the periodic-BTU-flush check is
    compiled in (the interval itself stays a runtime argument, so every
    interval of a sweep shares one kernel); the residency flags select the
    cache-free variants and are only legal under the batch layer's
    no-eviction proofs.
    """
    key = (
        spec,
        _config_digest(config),
        bool(flush_active),
        bool(icache_resident),
        bool(dcache_resident),
        bool(btu_elide),
        bool(collect_stats),
    )
    fn = _KERNEL_CACHE.get(key)
    if fn is None:
        global compile_count
        source = kernel_source(
            spec,
            config,
            flush_active,
            icache_resident,
            dcache_resident,
            btu_elide,
            collect_stats,
        )
        namespace = {
            "ReplayMismatchError": ReplayMismatchError,
            "__defaultdict_int": lambda: collections.defaultdict(int),
        }
        exec(
            compile(source, f"<repro-kernel:{spec.kind}:{_config_digest(config)}>", "exec"),
            namespace,
        )
        fn = namespace["kernel"]
        fn.__repro_source__ = source  # type: ignore[attr-defined]
        _KERNEL_CACHE[key] = fn
        compile_count += 1
    return fn


def clear_kernel_cache() -> None:
    """Drop every compiled kernel (test isolation helper)."""
    _KERNEL_CACHE.clear()
