"""The columnar timing engine.

:func:`run_trace` replays one :class:`~repro.engine.lowering.LoweredTrace`
through the exact cycle-accounting semantics of the object-based reference
loop (:meth:`repro.uarch.core.CoreModel.run_reference`), but over parallel
integer columns with the hot structures inlined:

* the L1I and L1D hit paths are folded into the loop (set lists manipulated
  directly, statistics counted in local integers and written back once);
* per-register readiness is a flat list indexed by the lowered rename
  indices instead of a name-keyed dict;
* the defense policy is pre-lowered to an
  :class:`~repro.uarch.defenses.base.EnginePolicySpec` — issue gating is a
  flag-mask test, store-forwarding allowance is a loop constant, and the
  branch fetch flows are inlined per policy kind, with Cassandra's per-PC
  branch classification resolved lazily into a dict the first time each
  static branch is seen.

The engine is required to be **bit-identical** to the reference loop for
every policy that provides a spec; ``tests/engine/test_parity.py`` asserts
it across the quick suite.  Any behavioural change here must be mirrored in
``CoreModel.run_reference`` and vice versa.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.hints import HintTable
from repro.engine.lowering import (
    F_BRANCH,
    F_CRYPTO,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    LoweredTrace,
)
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.btu import BranchTraceUnit
from repro.uarch.caches import CacheHierarchy, InstructionCache
from repro.uarch.config import CoreConfig
from repro.uarch.defenses.base import EnginePolicySpec
from repro.uarch.defenses.cassandra import ReplayMismatchError
from repro.uarch.stats import PipelineStats

# Cassandra per-PC branch classes (resolved lazily per static branch).
_CLS_NONCRYPTO = 0
_CLS_SINGLE = 1
_CLS_TRACED = 2
_CLS_STALL = 3


def crypto_pc_table(hint_table: Optional[HintTable], max_pc: int) -> bytearray:
    """A flat ``pc -> in-crypto-range`` table for the integrity check."""
    table = bytearray(max_pc + 2)
    if hint_table is not None:
        size = len(table)
        for start, end in hint_table.crypto_ranges:
            start = max(start, 0)
            end = min(end, size)
            for pc in range(start, end):
                table[pc] = 1
    return table


def _classify_cassandra_branch(
    pc: int,
    flags: int,
    crypto_pcs: bytearray,
    hint_table: HintTable,
    btu: BranchTraceUnit,
    lite: bool,
) -> Tuple[int, Optional[int]]:
    """The Section 5.3 fetch-flow selection for one static crypto branch."""
    if not (flags & F_CRYPTO or crypto_pcs[pc]):
        return _CLS_NONCRYPTO, None
    hint = hint_table.lookup(pc)
    if hint is not None and hint.single_target:
        return _CLS_SINGLE, (None if lite else hint.single_target_pc)
    if not lite and hint is not None and hint.has_trace and btu.has_trace(pc):
        return _CLS_TRACED, None
    return _CLS_STALL, None


def run_trace(
    trace: LoweredTrace,
    config: CoreConfig,
    spec: EnginePolicySpec,
    bpu: BranchPredictionUnit,
    caches: CacheHierarchy,
    icache: InstructionCache,
    btu: BranchTraceUnit,
    hint_table: Optional[HintTable],
    stats: PipelineStats,
    btu_flush_interval: Optional[int] = None,
) -> None:
    """Simulate ``trace`` under ``spec``, mutating units and ``stats``.

    State semantics match the reference loop exactly: predictor/cache/BTU
    contents carry over from whatever the units already hold (warm-up), and
    the monotone counters in ``stats`` are incremented while the absolute
    fields (``cycles``, ``instructions``, BPU totals, ``extra``) are
    overwritten.
    """
    # ---------------- config / unit locals ---------------- #
    fetch_width = config.fetch_width
    frontend_depth = config.frontend_depth
    rob_size = config.rob_size
    issue_width = config.issue_width
    commit_width = config.commit_width
    mispredict_penalty = config.mispredict_penalty
    sq_size = config.sq_size
    store_forward_latency = config.store_forward_latency
    word_bytes = config.word_bytes
    lat_table = (
        config.alu_latency,
        config.mul_latency,
        config.div_latency,
        config.store_latency,
        config.branch_resolve_latency,
    )

    # Inlined L1I (accessed once per instruction).
    l1i_sets = icache.cache._sets
    l1i_cfg = config.l1i
    l1i_nsets = l1i_cfg.num_sets
    l1i_assoc = l1i_cfg.associativity
    l1i_line = l1i_cfg.line_bytes
    i_bytes = icache.instruction_bytes
    l1i_miss_latency = config.l2.latency
    l1i_acc = l1i_hit = l1i_miss = 0

    # Inlined L1D hit path; L2/L3 go through the shared Cache objects.
    l1d_sets = caches.l1d._sets
    l1d_cfg = config.l1d
    l1d_nsets = l1d_cfg.num_sets
    l1d_assoc = l1d_cfg.associativity
    l1d_line = l1d_cfg.line_bytes
    l1d_latency = l1d_cfg.latency
    l2_latency = config.l2.latency
    l3_latency = config.l3.latency
    memory_latency = config.memory_latency
    l2_access = caches.l2.access
    l3_access = caches.l3.access
    l1d_acc = l1d_hit = l1d_miss = 0

    bpu_predict = bpu.predict_class
    bpu_update = bpu.update_class
    btu_lookup = btu.lookup
    btu_commit = btu.commit
    btu_flush = btu.flush

    # ---------------- policy locals ---------------- #
    gate_mask = spec.gate_mask
    allow_fwd = spec.allow_store_forwarding
    kind_cassandra = spec.kind == "cassandra"
    lite = spec.lite
    if kind_cassandra and hint_table is None:
        raise ValueError("cassandra-kind engine specs require a hint table")
    crypto_pcs = crypto_pc_table(hint_table, trace.max_pc) if kind_cassandra else b""
    crypto_pcs_len = len(crypto_pcs)
    branch_plan: Dict[int, Tuple[int, Optional[int]]] = {}

    # ---------------- pipeline state ---------------- #
    reg_ready = [0] * trace.num_regs
    commit_cycles: list = []
    cc_append = commit_cycles.append
    store_inflight: Dict[int, Tuple[int, int]] = {}
    issue_busy: Dict[int, int] = {}
    fetch_cycle = 0
    fetched_this_cycle = 0
    fetch_not_before = 0
    last_commit_cycle = 0
    committed_this_cycle = 0
    window_resolve_cycle = 0
    next_btu_flush = btu_flush_interval if btu_flush_interval else None
    index = 0

    # ---------------- statistics locals ---------------- #
    n_loads = n_stores = n_forwards = n_stl_blocked = 0
    n_delayed = delay_cycles = 0
    n_branches = n_crypto_branches = 0
    squash_cycles = fetch_stall_cycles = 0
    n_single_target = n_btu_replayed = n_btu_misses = n_btu_prefetches = 0
    n_fetch_stall_branches = n_integrity = 0

    for pc, npc, dst, s0, s1, s2, addr, fl, lc, bc in zip(*trace.columns()):
        # ---------------------------- FETCH ---------------------------- #
        candidate = fetch_cycle if fetch_cycle > fetch_not_before else fetch_not_before
        line = (pc * i_bytes) // l1i_line
        ways = l1i_sets[line % l1i_nsets]
        tag = line // l1i_nsets
        l1i_acc += 1
        if tag in ways:
            l1i_hit += 1
            ways.remove(tag)
            ways.append(tag)
        else:
            l1i_miss += 1
            ways.append(tag)
            if len(ways) > l1i_assoc:
                del ways[0]
            candidate += l1i_miss_latency
        if candidate > fetch_cycle:
            fetch_cycle = candidate
            fetched_this_cycle = 0
        if fetched_this_cycle >= fetch_width:
            fetch_cycle += 1
            fetched_this_cycle = 0
        fetched_this_cycle += 1
        this_fetch = fetch_cycle

        # ------------------------- DISPATCH ---------------------------- #
        dispatch_cycle = this_fetch + frontend_depth
        if index >= rob_size:
            bound = commit_cycles[index - rob_size]
            if bound > dispatch_cycle:
                dispatch_cycle = bound

        # -------------------------- OPERANDS --------------------------- #
        ready = dispatch_cycle
        if s0 >= 0:
            t = reg_ready[s0]
            if t > ready:
                ready = t
            if s1 >= 0:
                t = reg_ready[s1]
                if t > ready:
                    ready = t
                if s2 >= 0:
                    t = reg_ready[s2]
                    if t > ready:
                        ready = t

        exec_latency = lat_table[lc]
        if fl & F_LOAD:
            n_loads += 1
            inflight = store_inflight.get(addr)
            # A prior store only forwards while it still occupies the
            # store queue (it has not committed before this load reaches
            # the backend); older stores are served by the cache.
            if inflight is not None and inflight[1] <= dispatch_cycle:
                inflight = None
            if inflight is not None and allow_fwd:
                n_forwards += 1
                t = inflight[0]
                if t > ready:
                    ready = t
                exec_latency = store_forward_latency
            else:
                if inflight is not None:
                    n_stl_blocked += 1
                    t = inflight[1]
                    if t > ready:
                        ready = t
                address = addr * word_bytes
                line = address // l1d_line
                ways = l1d_sets[line % l1d_nsets]
                tag = line // l1d_nsets
                l1d_acc += 1
                if tag in ways:
                    l1d_hit += 1
                    ways.remove(tag)
                    ways.append(tag)
                    exec_latency = l1d_latency
                else:
                    l1d_miss += 1
                    ways.append(tag)
                    if len(ways) > l1d_assoc:
                        del ways[0]
                    exec_latency = l1d_latency + l2_latency
                    if not l2_access(address):
                        exec_latency += l3_latency
                        if not l3_access(address):
                            exec_latency += memory_latency
        elif fl & F_STORE:
            n_stores += 1

        # ------------------------ DEFENSE GATE -------------------------- #
        if fl & gate_mask and window_resolve_cycle > ready:
            n_delayed += 1
            delay_cycles += window_resolve_cycle - ready
            ready = window_resolve_cycle

        # --------------------------- ISSUE ------------------------------ #
        issue_cycle = ready
        busy = issue_busy.get(issue_cycle, 0)
        while busy >= issue_width:
            issue_cycle += 1
            busy = issue_busy.get(issue_cycle, 0)
        issue_busy[issue_cycle] = busy + 1

        complete_cycle = issue_cycle + exec_latency

        if dst >= 0:
            reg_ready[dst] = complete_cycle
        if fl & F_STORE:
            # Stores install the line; commit-time latency is hidden by the SQ.
            address = addr * word_bytes
            line = address // l1d_line
            ways = l1d_sets[line % l1d_nsets]
            tag = line // l1d_nsets
            l1d_acc += 1
            if tag in ways:
                l1d_hit += 1
                ways.remove(tag)
                ways.append(tag)
            else:
                l1d_miss += 1
                ways.append(tag)
                if len(ways) > l1d_assoc:
                    del ways[0]
                if not l2_access(address):
                    l3_access(address)

        # --------------------------- COMMIT ----------------------------- #
        commit_cycle = complete_cycle + 1
        if commit_cycle < last_commit_cycle:
            commit_cycle = last_commit_cycle
        if commit_cycle == last_commit_cycle and committed_this_cycle >= commit_width:
            commit_cycle += 1
        if commit_cycle > last_commit_cycle:
            last_commit_cycle = commit_cycle
            committed_this_cycle = 0
        committed_this_cycle += 1
        cc_append(commit_cycle)
        index += 1
        if fl & F_STORE:
            store_inflight[addr] = (complete_cycle, commit_cycle)
            if len(store_inflight) > sq_size:
                del store_inflight[next(iter(store_inflight))]
        if kind_cassandra and fl & F_BRANCH and (fl & F_CRYPTO or crypto_pcs[pc]):
            btu_commit(pc)

        # -------------------------- BRANCHES ---------------------------- #
        if fl & F_BRANCH:
            n_branches += 1
            if fl & F_CRYPTO:
                n_crypto_branches += 1
            resolve_cycle = complete_cycle

            if kind_cassandra:
                plan = branch_plan.get(pc)
                if plan is None:
                    plan = _classify_cassandra_branch(
                        pc, fl, crypto_pcs, hint_table, btu, lite
                    )
                    branch_plan[pc] = plan
                cls, single_target_pc = plan

                if cls == _CLS_NONCRYPTO:
                    predicted = bpu_predict(bc, pc, npc)
                    bpu_update(bc, pc, npc, (fl & F_TAKEN) != 0, predicted)
                    if (predicted < crypto_pcs_len and crypto_pcs[predicted]) or crypto_pcs[npc]:
                        # Speculative redirection into crypto code is
                        # forbidden (Scenarios 5 and 6 of Table 2).  The
                        # reference loop counts this stall twice — once in
                        # the fetch flow, once in branch accounting — and
                        # parity preserves that.
                        n_integrity += 2
                        stall_target = resolve_cycle + 1
                        d = stall_target - this_fetch
                        if d > 0:
                            fetch_stall_cycles += d
                        if stall_target > fetch_not_before:
                            fetch_not_before = stall_target
                    else:
                        if predicted != npc:
                            redirect = resolve_cycle + mispredict_penalty
                            d = redirect - this_fetch
                            if d > 0:
                                squash_cycles += d
                            if redirect > fetch_not_before:
                                fetch_not_before = redirect
                        if resolve_cycle > window_resolve_cycle:
                            window_resolve_cycle = resolve_cycle
                elif cls == _CLS_SINGLE:
                    n_single_target += 1
                    if single_target_pc is not None and single_target_pc != npc:
                        raise ReplayMismatchError(
                            f"single-target hint for PC {pc} points at "
                            f"{single_target_pc} but execution went to {npc}"
                        )
                elif cls == _CLS_TRACED:
                    lookup = btu_lookup(pc)
                    n_btu_replayed += 1
                    if not lookup.hit:
                        n_btu_misses += 1
                    if lookup.prefetched:
                        n_btu_prefetches += 1
                    if lookup.target != npc:
                        raise ReplayMismatchError(
                            f"BTU replay for PC {pc} produced target {lookup.target} "
                            f"but the sequential execution went to {npc}"
                        )
                    extra = lookup.extra_latency
                    if extra:
                        t = this_fetch + extra
                        if t > fetch_not_before:
                            fetch_not_before = t
                else:  # _CLS_STALL: input-dependent branch or missing trace
                    n_fetch_stall_branches += 1
                    stall_target = resolve_cycle + 1
                    d = stall_target - this_fetch
                    if d > 0:
                        fetch_stall_cycles += d
                    if stall_target > fetch_not_before:
                        fetch_not_before = stall_target
            else:
                predicted = bpu_predict(bc, pc, npc)
                bpu_update(bc, pc, npc, (fl & F_TAKEN) != 0, predicted)
                if predicted != npc:
                    redirect = resolve_cycle + mispredict_penalty
                    d = redirect - this_fetch
                    if d > 0:
                        squash_cycles += d
                    if redirect > fetch_not_before:
                        fetch_not_before = redirect
                if resolve_cycle > window_resolve_cycle:
                    window_resolve_cycle = resolve_cycle

        # ----------------------- PERIODIC BTU FLUSH --------------------- #
        if next_btu_flush is not None and last_commit_cycle >= next_btu_flush:
            btu_flush()
            next_btu_flush += btu_flush_interval  # type: ignore[operator]

    # ---------------- statistics write-back ---------------- #
    icache_stats = icache.cache.stats
    icache_stats.accesses += l1i_acc
    icache_stats.hits += l1i_hit
    icache_stats.misses += l1i_miss
    l1d_stats = caches.l1d.stats
    l1d_stats.accesses += l1d_acc
    l1d_stats.hits += l1d_hit
    l1d_stats.misses += l1d_miss

    stats.fetched_instructions += index
    stats.renamed_instructions += index
    stats.issued_instructions += index
    stats.committed_instructions += index
    stats.loads += n_loads
    stats.stores += n_stores
    stats.store_forwards += n_forwards
    stats.stl_blocked += n_stl_blocked
    stats.delayed_instructions += n_delayed
    stats.delay_cycles += delay_cycles
    stats.branches += n_branches
    stats.crypto_branches += n_crypto_branches
    stats.squash_cycles += squash_cycles
    stats.fetch_stall_cycles += fetch_stall_cycles
    stats.single_target_branches += n_single_target
    stats.btu_replayed += n_btu_replayed
    stats.btu_misses += n_btu_misses
    stats.btu_prefetches += n_btu_prefetches
    stats.fetch_stall_branches += n_fetch_stall_branches
    stats.integrity_stall_branches += n_integrity

    stats.instructions = index
    stats.cycles = last_commit_cycle
    stats.bpu_predicted = bpu.stats.lookups
    stats.bpu_mispredicted = bpu.stats.total_mispredictions
    stats.extra["l1d_miss_rate"] = caches.l1d.stats.miss_rate
    stats.extra["l1i_miss_rate"] = icache.cache.stats.miss_rate
    stats.extra["btu_occupancy"] = btu.occupancy()
