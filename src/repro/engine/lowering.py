"""Lowering: from the object dynamic stream to a columnar timing trace.

The sequential executor produces a list of
:class:`~repro.arch.executor.DynamicInstruction` dataclasses.  Walking that
list is what the timing model spends almost all of its time on — every
instruction costs a dozen attribute lookups and property calls before any
cycle arithmetic happens.  :func:`lower_execution` pays that object cost
exactly once per workload, producing a :class:`LoweredTrace`: parallel lists
of plain integers (opcode latency class, renamed register indices, memory
word address, branch class, and a flag bitmask) that the engine loop in
:mod:`repro.engine.engine` iterates with ``zip`` and no per-instruction
dispatch.

The lowering contract (see also the package docstring):

* **Policy- and config-independent.**  A lowered trace encodes only what the
  sequential execution determined: nothing in it depends on a
  ``DefensePolicy`` or a ``CoreConfig``, so one lowering serves every point
  of a sweep.  Latencies are stored as *classes* (``LAT_*``) and resolved
  against a concrete config when the engine runs.
* **Complete.**  Every field of ``DynamicInstruction`` the timing model
  reads has a column or a flag bit here; the engine never touches the
  original objects.
* **Rename-stable.**  Architectural register names are mapped to dense
  indices in first-appearance order, so two lowerings of the same execution
  are identical and ``reg_ready`` tracking becomes a flat list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.arch.executor import DynamicInstruction, ExecutionResult
from repro.isa.instructions import Opcode

#: Bump when the columnar layout changes incompatibly (cache-key material).
LOWERING_FORMAT_VERSION = 1

# Flag bits (the ``flags`` column).
F_LOAD = 1 << 0
F_STORE = 1 << 1
F_BRANCH = 1 << 2
F_CRYPTO = 1 << 3
F_SECRET = 1 << 4
F_LEAK = 1 << 5
F_TAKEN = 1 << 6

# Latency classes (the ``lat_class`` column), resolved against a CoreConfig
# by the engine: [alu, mul, div, store, branch_resolve].
LAT_ALU = 0
LAT_MUL = 1
LAT_DIV = 2
LAT_STORE = 3
LAT_BRANCH = 4

# Branch classes (the ``bclass`` column) consumed by the BPU's index-based
# predict/update protocol.
B_NONE = 0
B_COND = 1
B_JMP = 2
B_CALL = 3
B_CALLI = 4
B_JMPI = 5
B_RET = 6

_BCLASS_OF_OPCODE: Dict[Opcode, int] = {
    Opcode.BEQZ: B_COND,
    Opcode.BNEZ: B_COND,
    Opcode.JMP: B_JMP,
    Opcode.CALL: B_CALL,
    Opcode.CALLI: B_CALLI,
    Opcode.JMPI: B_JMPI,
    Opcode.RET: B_RET,
}


def bclass_of(opcode: Opcode) -> int:
    """The branch class the BPU protocol uses for ``opcode`` (B_NONE if none)."""
    return _BCLASS_OF_OPCODE.get(opcode, B_NONE)


@dataclass
class LoweredTrace:
    """The columnar, policy-independent timing trace of one execution.

    All columns have length :attr:`n`; ``-1`` encodes "absent" for register
    indices and memory addresses.  Columns are plain Python lists of ints —
    the fastest random-access sequence available without native extensions.
    """

    program_name: str
    n: int
    #: Dense register index -> architectural register name.
    reg_names: List[str]
    pcs: List[int]
    next_pcs: List[int]
    dst: List[int]
    src0: List[int]
    src1: List[int]
    src2: List[int]
    mem: List[int]
    flags: List[int]
    lat_class: List[int]
    bclass: List[int]
    #: Largest PC observed in ``pcs``/``next_pcs`` (sizing per-PC tables).
    max_pc: int = 0
    format_version: int = LOWERING_FORMAT_VERSION

    @property
    def num_regs(self) -> int:
        return len(self.reg_names)

    def columns(self) -> Tuple[List[int], ...]:
        """The column tuple the engine zips over, in loop order."""
        return (
            self.pcs,
            self.next_pcs,
            self.dst,
            self.src0,
            self.src1,
            self.src2,
            self.mem,
            self.flags,
            self.lat_class,
            self.bclass,
        )


def lower_dynamic(
    dynamic: Sequence[DynamicInstruction], program_name: str = "program"
) -> LoweredTrace:
    """Lower a dynamic instruction stream into its columnar form."""
    n = len(dynamic)
    reg_index: Dict[str, int] = {}
    reg_names: List[str] = []

    def rename(reg: str) -> int:
        index = reg_index.get(reg)
        if index is None:
            index = len(reg_names)
            reg_index[reg] = index
            reg_names.append(reg)
        return index

    pcs: List[int] = []
    next_pcs: List[int] = []
    dst_col: List[int] = []
    src0: List[int] = []
    src1: List[int] = []
    src2: List[int] = []
    mem: List[int] = []
    flags_col: List[int] = []
    lat_col: List[int] = []
    bclass_col: List[int] = []
    max_pc = 0

    for dyn in dynamic:
        opcode = dyn.opcode
        flags = 0
        mem_address = dyn.mem_address
        if opcode is Opcode.LOAD and mem_address is not None:
            flags |= F_LOAD
        elif opcode is Opcode.STORE and mem_address is not None:
            flags |= F_STORE
        if dyn.is_branch:
            flags |= F_BRANCH
        if dyn.crypto:
            flags |= F_CRYPTO
        if dyn.secret_operand:
            flags |= F_SECRET
        if opcode is Opcode.LEAK:
            flags |= F_LEAK
        if dyn.taken:
            flags |= F_TAKEN

        if opcode is Opcode.MUL:
            lat = LAT_MUL
        elif opcode is Opcode.DIV or opcode is Opcode.MOD:
            lat = LAT_DIV
        elif opcode is Opcode.STORE:
            lat = LAT_STORE
        elif dyn.is_branch:
            lat = LAT_BRANCH
        else:
            lat = LAT_ALU

        srcs = dyn.srcs
        n_srcs = len(srcs)
        pcs.append(dyn.pc)
        next_pcs.append(dyn.next_pc)
        dst_col.append(rename(dyn.dst) if dyn.dst is not None else -1)
        src0.append(rename(srcs[0]) if n_srcs > 0 else -1)
        src1.append(rename(srcs[1]) if n_srcs > 1 else -1)
        src2.append(rename(srcs[2]) if n_srcs > 2 else -1)
        mem.append(mem_address if mem_address is not None else -1)
        flags_col.append(flags)
        lat_col.append(lat)
        bclass_col.append(_BCLASS_OF_OPCODE.get(opcode, B_NONE))
        if dyn.pc > max_pc:
            max_pc = dyn.pc
        if dyn.next_pc > max_pc:
            max_pc = dyn.next_pc

    return LoweredTrace(
        program_name=program_name,
        n=n,
        reg_names=reg_names,
        pcs=pcs,
        next_pcs=next_pcs,
        dst=dst_col,
        src0=src0,
        src1=src1,
        src2=src2,
        mem=mem,
        flags=flags_col,
        lat_class=lat_col,
        bclass=bclass_col,
        max_pc=max_pc,
    )


def lower_execution(result: ExecutionResult) -> LoweredTrace:
    """Lower ``result.dynamic`` once, memoizing the trace on the result.

    The memo lives on the :class:`ExecutionResult` instance itself, so every
    policy / config / flush point that shares the execution also shares the
    lowering — including the legacy per-point :func:`repro.uarch.core.simulate`
    path.
    """
    cached = getattr(result, "_lowered_trace", None)
    if cached is not None and cached.n == len(result.dynamic):
        return cached
    trace = lower_dynamic(result.dynamic, program_name=result.program.name)
    result._lowered_trace = trace  # type: ignore[attr-defined]
    return trace
