"""Lowering: from the object dynamic stream to a columnar timing trace.

The sequential executor produces a list of
:class:`~repro.arch.executor.DynamicInstruction` dataclasses.  Walking that
list is what the timing model spends almost all of its time on — every
instruction costs a dozen attribute lookups and property calls before any
cycle arithmetic happens.  :func:`lower_execution` pays that object cost
exactly once per workload, producing a :class:`LoweredTrace`: parallel lists
of plain integers (opcode latency class, renamed register indices, memory
word address, branch class, and a flag bitmask) that the engine loop in
:mod:`repro.engine.engine` iterates with ``zip`` and no per-instruction
dispatch.

The lowering contract (see also the package docstring):

* **Policy- and config-independent.**  A lowered trace encodes only what the
  sequential execution determined: nothing in it depends on a
  ``DefensePolicy`` or a ``CoreConfig``, so one lowering serves every point
  of a sweep.  Latencies are stored as *classes* (``LAT_*``) and resolved
  against a concrete config when the engine runs.
* **Complete.**  Every field of ``DynamicInstruction`` the timing model
  reads has a column or a flag bit here; the engine never touches the
  original objects.
* **Rename-stable.**  Architectural register names are mapped to dense
  indices in first-appearance order, so two lowerings of the same execution
  are identical and ``reg_ready`` tracking becomes a flat list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.arch.executor import DynamicInstruction, ExecutionResult
from repro.isa.instructions import Opcode

#: Bump when the columnar layout changes incompatibly (cache-key material).
LOWERING_FORMAT_VERSION = 1

# Flag bits (the ``flags`` column).
F_LOAD = 1 << 0
F_STORE = 1 << 1
F_BRANCH = 1 << 2
F_CRYPTO = 1 << 3
F_SECRET = 1 << 4
F_LEAK = 1 << 5
F_TAKEN = 1 << 6

# Latency classes (the ``lat_class`` column), resolved against a CoreConfig
# by the engine: [alu, mul, div, store, branch_resolve].
LAT_ALU = 0
LAT_MUL = 1
LAT_DIV = 2
LAT_STORE = 3
LAT_BRANCH = 4

# Branch classes (the ``bclass`` column) consumed by the BPU's index-based
# predict/update protocol.
B_NONE = 0
B_COND = 1
B_JMP = 2
B_CALL = 3
B_CALLI = 4
B_JMPI = 5
B_RET = 6

_BCLASS_OF_OPCODE: Dict[Opcode, int] = {
    Opcode.BEQZ: B_COND,
    Opcode.BNEZ: B_COND,
    Opcode.JMP: B_JMP,
    Opcode.CALL: B_CALL,
    Opcode.CALLI: B_CALLI,
    Opcode.JMPI: B_JMPI,
    Opcode.RET: B_RET,
}


def bclass_of(opcode: Opcode) -> int:
    """The branch class the BPU protocol uses for ``opcode`` (B_NONE if none)."""
    return _BCLASS_OF_OPCODE.get(opcode, B_NONE)


def _build_opinfo() -> Dict[int, Tuple[bool, bool, bool, int, int]]:
    """Predecode per-opcode facts, keyed by ``id(member)``.

    Enum members are process-lifetime singletons, and ``Enum.__hash__`` is a
    Python-level call — hashing members per dynamic instruction made the
    opcode lookups one of the lowering's dominant costs.  An ``id``-keyed
    dict turns each lookup into a C-level int hash.  Values:
    ``(is_load, is_store, is_leak, static_lat, bclass)`` where
    ``static_lat`` is the latency class fixed by the opcode alone (0 for
    "ALU unless the instruction is a branch").
    """
    info: Dict[int, Tuple[bool, bool, bool, int, int]] = {}
    for op in Opcode:
        if op is Opcode.MUL:
            lat = LAT_MUL
        elif op is Opcode.DIV or op is Opcode.MOD:
            lat = LAT_DIV
        elif op is Opcode.STORE:
            lat = LAT_STORE
        else:
            lat = LAT_ALU
        info[id(op)] = (
            op is Opcode.LOAD,
            op is Opcode.STORE,
            op is Opcode.LEAK,
            lat,
            _BCLASS_OF_OPCODE.get(op, B_NONE),
        )
    return info


@dataclass
class LoweredTrace:
    """The columnar, policy-independent timing trace of one execution.

    All columns have length :attr:`n`; ``-1`` encodes "absent" for register
    indices and memory addresses.  Columns are plain Python lists of ints —
    the fastest random-access sequence available without native extensions.
    """

    program_name: str
    n: int
    #: Dense register index -> architectural register name.
    reg_names: List[str]
    pcs: List[int]
    next_pcs: List[int]
    dst: List[int]
    src0: List[int]
    src1: List[int]
    src2: List[int]
    mem: List[int]
    flags: List[int]
    lat_class: List[int]
    bclass: List[int]
    #: Largest PC observed in ``pcs``/``next_pcs`` (sizing per-PC tables).
    max_pc: int = 0
    format_version: int = LOWERING_FORMAT_VERSION

    @property
    def num_regs(self) -> int:
        return len(self.reg_names)

    def columns(self) -> Tuple[List[int], ...]:
        """The column tuple the engine zips over, in loop order."""
        return (
            self.pcs,
            self.next_pcs,
            self.dst,
            self.src0,
            self.src1,
            self.src2,
            self.mem,
            self.flags,
            self.lat_class,
            self.bclass,
        )

    def to_bytes(self) -> bytes:
        """Serialize the columns to a compact byte payload.

        Used by the fork fan-out: the parent lowers once and ships the
        preserialized payload, so each worker materializes the columns with
        one C-level unpickle instead of re-walking the object stream (or
        re-pickling ``DynamicInstruction`` objects).  The payload is also
        host-portable, which the cross-host sharding direction needs.
        """
        import pickle

        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(payload: bytes) -> "LoweredTrace":
        """Rebuild a trace serialized by :meth:`to_bytes` (version-checked)."""
        import pickle

        trace = pickle.loads(payload)
        if not isinstance(trace, LoweredTrace):
            raise TypeError(f"payload does not hold a LoweredTrace: {type(trace)!r}")
        if trace.format_version != LOWERING_FORMAT_VERSION:
            raise ValueError(
                f"lowered-trace payload has format {trace.format_version}, "
                f"this build expects {LOWERING_FORMAT_VERSION}"
            )
        return trace


_OPINFO = _build_opinfo()


def lower_dynamic(
    dynamic: Sequence[DynamicInstruction], program_name: str = "program"
) -> LoweredTrace:
    """Lower a dynamic instruction stream into its columnar form.

    This is the hot path of cold workload preparation (one walk over every
    dynamic instruction), so the loop is tuned: opcode facts come from the
    ``id``-keyed :func:`_build_opinfo` table, the register rename is inlined,
    and the column appends are pre-bound.  The produced trace is
    bit-identical to the straightforward formulation (the engine parity
    tests would catch any drift).
    """
    n = len(dynamic)
    reg_index: Dict[str, int] = {}
    reg_names: List[str] = []
    rename_get = reg_index.get

    pcs: List[int] = []
    next_pcs: List[int] = []
    dst_col: List[int] = []
    src0: List[int] = []
    src1: List[int] = []
    src2: List[int] = []
    mem: List[int] = []
    flags_col: List[int] = []
    lat_col: List[int] = []
    bclass_col: List[int] = []
    pcs_append = pcs.append
    next_pcs_append = next_pcs.append
    dst_append = dst_col.append
    src0_append = src0.append
    src1_append = src1.append
    src2_append = src2.append
    mem_append = mem.append
    flags_append = flags_col.append
    lat_append = lat_col.append
    bclass_append = bclass_col.append
    opinfo = _OPINFO

    for dyn in dynamic:
        is_load, is_store, is_leak, lat, bclass = opinfo[id(dyn.opcode)]
        mem_address = dyn.mem_address
        is_branch = dyn.is_branch
        flags = 0
        if mem_address is None:
            mem_address = -1
        elif is_load:
            flags = F_LOAD
        elif is_store:
            flags = F_STORE
        if is_branch:
            flags |= F_BRANCH
            if lat == LAT_ALU:
                lat = LAT_BRANCH
        if dyn.crypto:
            flags |= F_CRYPTO
        if dyn.secret_operand:
            flags |= F_SECRET
        if is_leak:
            flags |= F_LEAK
        if dyn.taken:
            flags |= F_TAKEN

        dst = dyn.dst
        if dst is None:
            dst_i = -1
        else:
            dst_i = rename_get(dst)
            if dst_i is None:
                dst_i = len(reg_names)
                reg_index[dst] = dst_i
                reg_names.append(dst)
        srcs = dyn.srcs
        s0 = s1 = s2 = -1
        n_srcs = len(srcs)
        if n_srcs:
            reg = srcs[0]
            s0 = rename_get(reg)
            if s0 is None:
                s0 = len(reg_names)
                reg_index[reg] = s0
                reg_names.append(reg)
            if n_srcs > 1:
                reg = srcs[1]
                s1 = rename_get(reg)
                if s1 is None:
                    s1 = len(reg_names)
                    reg_index[reg] = s1
                    reg_names.append(reg)
                if n_srcs > 2:
                    reg = srcs[2]
                    s2 = rename_get(reg)
                    if s2 is None:
                        s2 = len(reg_names)
                        reg_index[reg] = s2
                        reg_names.append(reg)

        pcs_append(dyn.pc)
        next_pcs_append(dyn.next_pc)
        dst_append(dst_i)
        src0_append(s0)
        src1_append(s1)
        src2_append(s2)
        mem_append(mem_address)
        flags_append(flags)
        lat_append(lat)
        bclass_append(bclass)

    max_pc = max(max(pcs, default=0), max(next_pcs, default=0))
    return LoweredTrace(
        program_name=program_name,
        n=n,
        reg_names=reg_names,
        pcs=pcs,
        next_pcs=next_pcs,
        dst=dst_col,
        src0=src0,
        src1=src1,
        src2=src2,
        mem=mem,
        flags=flags_col,
        lat_class=lat_col,
        bclass=bclass_col,
        max_pc=max_pc,
    )


def lower_execution(result: ExecutionResult) -> LoweredTrace:
    """Lower ``result.dynamic`` once, memoizing the trace on the result.

    The memo lives on the :class:`ExecutionResult` instance itself, so every
    policy / config / flush point that shares the execution also shares the
    lowering — including the legacy per-point :func:`repro.uarch.core.simulate`
    path.
    """
    cached = getattr(result, "_lowered_trace", None)
    if cached is not None and cached.n == len(result.dynamic):
        return cached
    trace = lower_dynamic(result.dynamic, program_name=result.program.name)
    result._lowered_trace = trace  # type: ignore[attr-defined]
    return trace
